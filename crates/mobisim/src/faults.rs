//! Deterministic fault injection for robustness testing.
//!
//! Takes a clean simulated [`Dataset`] and corrupts it the way real GPS
//! feeds are corrupted: dropped fixes, duplicated fixes (including stale
//! retransmissions with perturbed clocks), out-of-order delivery,
//! multipath teleport spikes and truncated uploads. The output is a raw
//! fix stream — corrupted data by definition cannot satisfy
//! [`neat_traj::Trajectory`]'s invariants — meant to be fed through
//! [`neat_traj::sanitize::Sanitizer`].
//!
//! Injection is fully deterministic under a seed: the same dataset,
//! [`FaultConfig`] and seed always produce byte-identical output.
//!
//! Besides the GPS-stream faults, this module also injects *disk*
//! faults: [`FaultFs`] wraps any [`neat_durability::fs::Fs`] and, at a
//! chosen mutating operation, simulates a torn write, a short write, a
//! silent bit flip, a full device or a failed rename — the failure modes
//! the checkpoint layer in `neat_core::checkpoint` must survive.

use neat_durability::fs::{Fs, MemFs};
use neat_rnet::Point;
use neat_traj::sanitize::RawFix;
use neat_traj::Dataset;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::{Arc, Mutex};

/// Per-fault-class rates, each a probability in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultConfig {
    /// Probability that an interior fix is dropped (endpoint fixes are
    /// kept so dropout models gaps, not truncation).
    pub dropout: f64,
    /// Probability that a fix is emitted twice. Half of the copies (in
    /// expectation) carry a slightly earlier timestamp — the stale
    /// retransmission pattern — which makes strict ingestion fail.
    pub duplicate: f64,
    /// Probability that a fix swaps places with its successor.
    pub reorder: f64,
    /// Probability that a fix is displaced 5–20 km (multipath spike).
    pub teleport: f64,
    /// Probability that a whole trajectory is cut down to 0 or 1 fixes
    /// (interrupted upload).
    pub truncate: f64,
}

impl FaultConfig {
    /// `true` when every rate is zero.
    pub fn is_noop(&self) -> bool {
        self.dropout == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.teleport == 0.0
            && self.truncate == 0.0
    }

    /// Parses a comma-separated spec such as
    /// `dropout=0.05,dup=0.02,reorder=0.01,teleport=0.005,truncate=0.01`.
    /// Unmentioned classes default to zero.
    ///
    /// # Errors
    ///
    /// Rejects unknown keys, unparseable values and rates outside
    /// `[0, 1]`, with a message naming the offending part.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut config = FaultConfig::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=rate, got `{part}`"))?;
            let rate: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("bad rate for `{key}`: `{value}`"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate for `{key}` must be in [0, 1], got {rate}"));
            }
            match key.trim() {
                "dropout" | "drop" => config.dropout = rate,
                "duplicate" | "dup" => config.duplicate = rate,
                "reorder" => config.reorder = rate,
                "teleport" => config.teleport = rate,
                "truncate" => config.truncate = rate,
                other => {
                    return Err(format!(
                        "unknown fault class `{other}` \
                         (expected dropout, dup, reorder, teleport or truncate)"
                    ))
                }
            }
        }
        Ok(config)
    }
}

impl fmt::Display for FaultConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dropout={},dup={},reorder={},teleport={},truncate={}",
            self.dropout, self.duplicate, self.reorder, self.teleport, self.truncate
        )
    }
}

impl FromStr for FaultConfig {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        FaultConfig::parse(s)
    }
}

/// What [`inject_faults`] actually did, for reporting and assertions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Interior fixes dropped.
    pub dropped: usize,
    /// Fixes duplicated with an unchanged timestamp.
    pub duplicated: usize,
    /// Fixes duplicated with a slightly earlier timestamp.
    pub stale_duplicated: usize,
    /// Adjacent fix pairs swapped out of time order.
    pub reordered: usize,
    /// Fixes displaced by a teleport spike.
    pub teleported: usize,
    /// Trajectories truncated to fewer than two fixes.
    pub truncated: usize,
    /// Ids of trajectories that received at least one fault.
    pub affected: Vec<u64>,
}

impl FaultLog {
    /// Total number of individual fault events.
    pub fn total_faults(&self) -> usize {
        self.dropped
            + self.duplicated
            + self.stale_duplicated
            + self.reordered
            + self.teleported
            + self.truncated
    }

    /// One-line human-readable digest.
    pub fn digest(&self) -> String {
        format!(
            "{} faults over {} trajectories: {} dropped, {} duplicated ({} stale), \
             {} reordered, {} teleported, {} truncated",
            self.total_faults(),
            self.affected.len(),
            self.dropped,
            self.duplicated + self.stale_duplicated,
            self.stale_duplicated,
            self.reordered,
            self.teleported,
            self.truncated,
        )
    }
}

/// Corrupts `dataset` according to `config`, deterministically under
/// `seed`. Returns the corrupted raw fix stream (grouped by trajectory,
/// in dataset order) and a log of the injected faults.
pub fn inject_faults(
    dataset: &Dataset,
    config: &FaultConfig,
    seed: u64,
) -> (Vec<RawFix>, FaultLog) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA17_1E57);
    let mut out = Vec::with_capacity(dataset.total_points());
    let mut log = FaultLog::default();

    for tr in dataset.trajectories() {
        let trid = tr.id().value();
        let mut fixes: Vec<RawFix> = tr
            .points()
            .iter()
            .map(|p| RawFix::new(trid, p.segment, p.position, p.time))
            .collect();
        let before = log.total_faults();

        // Truncated upload: the whole trajectory collapses to 0–1 fixes.
        if config.truncate > 0.0 && rng.gen_bool(config.truncate) {
            fixes.truncate(rng.gen_range(0..2usize));
            log.truncated += 1;
        } else {
            // Dropout: interior fixes vanish (gaps, not truncation).
            if config.dropout > 0.0 && fixes.len() > 2 {
                let mut kept = Vec::with_capacity(fixes.len());
                for (i, fix) in fixes.iter().enumerate() {
                    if i > 0 && i + 1 < fixes.len() && rng.gen_bool(config.dropout) {
                        log.dropped += 1;
                    } else {
                        kept.push(*fix);
                    }
                }
                fixes = kept;
            }

            // Teleport spikes: a fix jumps 5–20 km off course.
            if config.teleport > 0.0 {
                for fix in &mut fixes {
                    if rng.gen_bool(config.teleport) {
                        let radius = rng.gen_range(5_000.0..20_000.0);
                        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
                        fix.position =
                            fix.position + Point::new(radius * angle.cos(), radius * angle.sin());
                        log.teleported += 1;
                    }
                }
            }

            // Duplicates: the fix is emitted twice; about half the copies
            // are stale retransmissions with a slightly earlier clock.
            if config.duplicate > 0.0 {
                let mut with_dups = Vec::with_capacity(fixes.len());
                for fix in fixes {
                    with_dups.push(fix);
                    if rng.gen_bool(config.duplicate) {
                        let mut copy = fix;
                        if rng.gen_bool(0.5) {
                            copy.time -= rng.gen_range(0.2..1.5);
                            log.stale_duplicated += 1;
                        } else {
                            log.duplicated += 1;
                        }
                        with_dups.push(copy);
                    }
                }
                fixes = with_dups;
            }

            // Out-of-order delivery: adjacent pairs swap places.
            if config.reorder > 0.0 && fixes.len() >= 2 {
                let mut i = 0;
                while i + 1 < fixes.len() {
                    if fixes[i].time < fixes[i + 1].time && rng.gen_bool(config.reorder) {
                        fixes.swap(i, i + 1);
                        log.reordered += 1;
                        i += 2; // don't immediately swap the pair back
                    } else {
                        i += 1;
                    }
                }
            }
        }

        if log.total_faults() > before {
            log.affected.push(trid);
        }
        out.extend(fixes);
    }
    (out, log)
}

/// The disk fault [`FaultFs`] injects when its armed operation index is
/// reached.
///
/// The first two model a *crash* (the process dies mid-operation; every
/// later operation on the handle fails), the last three model faults a
/// live process observes and must degrade gracefully under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// Power loss before the syscall took effect: the operation is not
    /// applied at all, and the process is dead afterwards.
    Lost,
    /// Torn/short write: only the first `keep` bytes reach the medium
    /// (clamped to the payload length), then the process dies. With
    /// `keep == 0` this is the classic short write of nothing.
    Torn {
        /// Bytes that survive.
        keep: usize,
    },
    /// Silent media corruption: the operation is applied in full and
    /// reports success, but one payload byte is flipped. The process
    /// lives on, unaware — recovery must *detect* this via checksums.
    BitFlip {
        /// Payload offset to corrupt (taken modulo the length).
        offset: usize,
        /// XOR mask; `0` is promoted to `0x01` so the byte always
        /// changes.
        mask: u8,
    },
    /// The device is full: the operation is not applied, the caller
    /// sees `StorageFull`, and the handle keeps working afterwards.
    NoSpace,
    /// `rename(2)` fails (quota, cross-device, permission): nothing
    /// moves, the caller sees the error, the handle keeps working. When
    /// the armed operation is not a rename this behaves like
    /// [`DiskFault::NoSpace`].
    RenameFail,
}

impl DiskFault {
    /// `true` for faults after which the simulated process is dead.
    fn is_fatal(self) -> bool {
        matches!(self, DiskFault::Lost | DiskFault::Torn { .. })
    }
}

#[derive(Debug)]
struct FaultFsState {
    /// Mutating operations observed so far.
    ops: u64,
    /// Index of the mutating operation to fault (0-based).
    arm_at: Option<u64>,
    fault: DiskFault,
    /// Set once a fatal fault fired; every later call errors.
    dead: bool,
    /// Whether the armed fault has fired (fatal or not).
    fired: bool,
}

/// A fault-injecting [`Fs`] over shared [`MemFs`] storage.
///
/// Counts every *mutating* operation (`write`, `append`, `rename`,
/// `remove_file`); when the count reaches the armed index the configured
/// [`DiskFault`] fires. Because [`MemFs`] clones share storage, a chaos
/// harness "kills the process" by abandoning the `FaultFs` handle and
/// "restarts" by reopening the surviving bytes via [`FaultFs::storage`].
///
/// Reads are never faulted (media read errors are a different failure
/// class), but once a fatal fault fired *all* operations error — a dead
/// process cannot observe the disk.
#[derive(Debug, Clone)]
pub struct FaultFs {
    inner: MemFs,
    state: Arc<Mutex<FaultFsState>>,
}

impl FaultFs {
    /// Wraps `inner` with no fault armed — used to probe how many
    /// mutating operations a workload performs.
    pub fn unarmed(inner: MemFs) -> Self {
        FaultFs {
            inner,
            state: Arc::new(Mutex::new(FaultFsState {
                ops: 0,
                arm_at: None,
                fault: DiskFault::Lost,
                dead: false,
                fired: false,
            })),
        }
    }

    /// Wraps `inner` so that the `arm_at`-th mutating operation
    /// (0-based) suffers `fault`.
    pub fn armed(inner: MemFs, arm_at: u64, fault: DiskFault) -> Self {
        FaultFs {
            inner,
            state: Arc::new(Mutex::new(FaultFsState {
                ops: 0,
                arm_at: Some(arm_at),
                fault,
                dead: false,
                fired: false,
            })),
        }
    }

    fn state(&self) -> std::sync::MutexGuard<'_, FaultFsState> {
        self.state.lock().expect("FaultFs mutex poisoned") // lint:allow(L1,L6) reason=fault-injection state is a multi-step simulation, so poison must propagate rather than ride through the sanctioned Lock::enter policy
    }

    /// Mutating operations observed so far.
    pub fn mutating_ops(&self) -> u64 {
        self.state().ops
    }

    /// `true` once a fatal fault fired (the simulated process is dead).
    pub fn crashed(&self) -> bool {
        self.state().dead
    }

    /// `true` once the armed fault fired, fatal or not.
    pub fn fault_fired(&self) -> bool {
        self.state().fired
    }

    /// The surviving storage: a handle sharing the same byte map,
    /// unaffected by this wrapper's crash state — what a restarted
    /// process finds on disk.
    pub fn storage(&self) -> MemFs {
        self.inner.clone()
    }

    /// Decides the fate of the current mutating operation and advances
    /// the counter. Returns the fault to apply now, if any.
    fn step(&self) -> io::Result<Option<DiskFault>> {
        let mut s = self.state();
        if s.dead {
            return Err(io::Error::other(
                "simulated crash: process already dead (FaultFs)",
            ));
        }
        let fire = s.arm_at == Some(s.ops);
        s.ops += 1;
        if !fire {
            return Ok(None);
        }
        s.fired = true;
        if s.fault.is_fatal() {
            s.dead = true;
        }
        Ok(Some(s.fault))
    }

    fn ensure_alive(&self) -> io::Result<()> {
        if self.state().dead {
            return Err(io::Error::other(
                "simulated crash: process already dead (FaultFs)",
            ));
        }
        Ok(())
    }

    fn crash_error() -> io::Error {
        io::Error::other("simulated crash (FaultFs fault injected)")
    }

    fn no_space_error() -> io::Error {
        io::Error::new(
            io::ErrorKind::StorageFull,
            "no space left on device (simulated)",
        )
    }

    /// Applies a byte-payload fault for `write`/`append`.
    fn faulted_payload(fault: DiskFault, bytes: &[u8]) -> Option<Vec<u8>> {
        match fault {
            DiskFault::Lost => None,
            DiskFault::Torn { keep } => Some(bytes[..keep.min(bytes.len())].to_vec()),
            DiskFault::BitFlip { offset, mask } => {
                let mut out = bytes.to_vec();
                if !out.is_empty() {
                    let i = offset % out.len();
                    out[i] ^= if mask == 0 { 0x01 } else { mask };
                }
                Some(out)
            }
            DiskFault::NoSpace | DiskFault::RenameFail => None,
        }
    }

    fn apply_payload_op(
        &self,
        bytes: &[u8],
        apply: impl Fn(&[u8]) -> io::Result<()>,
    ) -> io::Result<()> {
        match self.step()? {
            None => apply(bytes),
            Some(fault) => {
                if let Some(payload) = Self::faulted_payload(fault, bytes) {
                    apply(&payload)?;
                }
                match fault {
                    // Silent corruption: the caller is told all is well.
                    DiskFault::BitFlip { .. } => Ok(()),
                    DiskFault::NoSpace | DiskFault::RenameFail => Err(Self::no_space_error()),
                    DiskFault::Lost | DiskFault::Torn { .. } => Err(Self::crash_error()),
                }
            }
        }
    }
}

impl Fs for FaultFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.ensure_alive()?;
        self.inner.read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.apply_payload_op(bytes, |b| self.inner.write(path, b))
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.apply_payload_op(bytes, |b| self.inner.append(path, b))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.step()? {
            None | Some(DiskFault::BitFlip { .. }) => self.inner.rename(from, to),
            Some(DiskFault::Lost | DiskFault::Torn { .. }) => Err(Self::crash_error()),
            Some(DiskFault::RenameFail) => Err(io::Error::other(
                "rename failed (simulated cross-device link)",
            )),
            Some(DiskFault::NoSpace) => Err(Self::no_space_error()),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.step()? {
            None | Some(DiskFault::BitFlip { .. }) => self.inner.remove_file(path),
            Some(DiskFault::Lost | DiskFault::Torn { .. }) => Err(Self::crash_error()),
            Some(DiskFault::NoSpace | DiskFault::RenameFail) => Err(Self::no_space_error()),
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.ensure_alive()?;
        self.inner.create_dir_all(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.ensure_alive()?;
        self.inner.list(dir)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.ensure_alive()?;
        self.inner.sync_dir(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        !self.state().dead && self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::{RoadLocation, SegmentId};
    use neat_traj::{Trajectory, TrajectoryId};

    fn clean_dataset(n_traj: usize, n_points: usize) -> Dataset {
        let mut d = Dataset::new("clean");
        for id in 0..n_traj as u64 {
            let pts = (0..n_points)
                .map(|i| {
                    RoadLocation::new(
                        SegmentId::new(i % 3),
                        Point::new(i as f64 * 20.0, id as f64 * 5.0),
                        i as f64 * 4.0,
                    )
                })
                .collect();
            d.push(Trajectory::new(TrajectoryId::new(id), pts).unwrap());
        }
        d
    }

    #[test]
    fn parse_accepts_full_and_partial_specs() {
        let c =
            FaultConfig::parse("dropout=0.05,dup=0.02,reorder=0.01,teleport=0.005,truncate=0.01")
                .unwrap();
        assert_eq!(c.dropout, 0.05);
        assert_eq!(c.duplicate, 0.02);
        assert_eq!(c.reorder, 0.01);
        assert_eq!(c.teleport, 0.005);
        assert_eq!(c.truncate, 0.01);
        let partial = FaultConfig::parse("dup=0.1").unwrap();
        assert_eq!(partial.duplicate, 0.1);
        assert_eq!(partial.dropout, 0.0);
        assert!(FaultConfig::parse("").unwrap().is_noop());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultConfig::parse("dropout").is_err());
        assert!(FaultConfig::parse("warp=0.1").is_err());
        assert!(FaultConfig::parse("dropout=abc").is_err());
        assert!(FaultConfig::parse("dropout=1.5").is_err());
        assert!(FaultConfig::parse("dropout=-0.1").is_err());
    }

    #[test]
    fn config_display_roundtrips_through_parse() {
        let c = FaultConfig::parse("dropout=0.05,dup=0.02,teleport=0.01").unwrap();
        assert_eq!(FaultConfig::parse(&c.to_string()).unwrap(), c);
    }

    #[test]
    fn noop_config_passes_data_through_unchanged() {
        let d = clean_dataset(4, 10);
        let (fixes, log) = inject_faults(&d, &FaultConfig::default(), 7);
        assert_eq!(log.total_faults(), 0);
        assert!(log.affected.is_empty());
        assert_eq!(fixes, neat_traj::sanitize::dataset_fixes(&d));
    }

    #[test]
    fn injection_is_deterministic_under_a_seed() {
        let d = clean_dataset(10, 20);
        let c = FaultConfig::parse("dropout=0.1,dup=0.1,reorder=0.1,teleport=0.05,truncate=0.05")
            .unwrap();
        let (fixes_a, log_a) = inject_faults(&d, &c, 42);
        let (fixes_b, log_b) = inject_faults(&d, &c, 42);
        assert_eq!(fixes_a, fixes_b);
        assert_eq!(log_a, log_b);
        let (fixes_c, _) = inject_faults(&d, &c, 43);
        assert_ne!(fixes_a, fixes_c, "different seeds should differ");
    }

    #[test]
    fn each_fault_class_fires_and_is_logged() {
        let d = clean_dataset(20, 30);
        for (spec, check) in [
            (
                "dropout=0.3",
                &(|l: &FaultLog| l.dropped > 0) as &dyn Fn(&FaultLog) -> bool,
            ),
            ("dup=0.3", &|l| l.duplicated + l.stale_duplicated > 0),
            ("reorder=0.3", &|l| l.reordered > 0),
            ("teleport=0.3", &|l| l.teleported > 0),
            ("truncate=0.3", &|l| l.truncated > 0),
        ] {
            let c = FaultConfig::parse(spec).unwrap();
            let (_, log) = inject_faults(&d, &c, 1);
            assert!(check(&log), "{spec} produced no faults: {}", log.digest());
            assert!(!log.affected.is_empty(), "{spec}");
        }
    }

    #[test]
    fn dropout_preserves_endpoints() {
        let d = clean_dataset(5, 15);
        let c = FaultConfig::parse("dropout=0.9").unwrap();
        let (fixes, _) = inject_faults(&d, &c, 3);
        for tr in d.trajectories() {
            let trid = tr.id().value();
            let mine: Vec<&RawFix> = fixes.iter().filter(|f| f.trid == trid).collect();
            assert!(mine.len() >= 2);
            assert_eq!(mine[0].time, tr.first().time);
            assert_eq!(mine.last().unwrap().time, tr.last().time);
        }
    }

    #[test]
    fn stale_duplicates_break_time_order() {
        // With a high duplicate rate over enough fixes, at least one
        // stale copy must appear, making the stream non-monotonic.
        let d = clean_dataset(5, 40);
        let c = FaultConfig::parse("dup=0.5").unwrap();
        let (fixes, log) = inject_faults(&d, &c, 11);
        assert!(log.stale_duplicated > 0);
        let has_inversion = fixes
            .windows(2)
            .any(|w| w[0].trid == w[1].trid && w[1].time < w[0].time);
        assert!(has_inversion);
    }

    #[test]
    fn truncated_trajectories_fall_below_two_fixes() {
        let d = clean_dataset(10, 10);
        let c = FaultConfig::parse("truncate=1.0").unwrap();
        let (fixes, log) = inject_faults(&d, &c, 9);
        assert_eq!(log.truncated, 10);
        for tr in d.trajectories() {
            let trid = tr.id().value();
            assert!(fixes.iter().filter(|f| f.trid == trid).count() < 2);
        }
    }

    #[test]
    fn unarmed_faultfs_counts_ops_and_passes_through() {
        let mem = MemFs::new();
        let fs = FaultFs::unarmed(mem.clone());
        fs.write(Path::new("/d/a"), b"one").unwrap();
        fs.append(Path::new("/d/a"), b"two").unwrap();
        fs.rename(Path::new("/d/a"), Path::new("/d/b")).unwrap();
        fs.remove_file(Path::new("/d/b")).unwrap();
        assert_eq!(fs.mutating_ops(), 4);
        assert!(!fs.crashed());
        assert!(!fs.fault_fired());
        assert!(mem.list(Path::new("/d")).unwrap().is_empty());
    }

    #[test]
    fn lost_write_kills_the_process_and_leaves_no_bytes() {
        let mem = MemFs::new();
        let fs = FaultFs::armed(mem.clone(), 1, DiskFault::Lost);
        fs.write(Path::new("/d/a"), b"survives").unwrap();
        let err = fs.write(Path::new("/d/b"), b"lost").unwrap_err();
        assert!(err.to_string().contains("simulated crash"));
        assert!(fs.crashed());
        // Dead process: every further op fails, reads included.
        assert!(fs.read(Path::new("/d/a")).is_err());
        assert!(fs.write(Path::new("/d/c"), b"x").is_err());
        // The surviving storage has the first file only.
        assert_eq!(mem.read(Path::new("/d/a")).unwrap(), b"survives");
        assert!(!mem.exists(Path::new("/d/b")));
    }

    #[test]
    fn torn_write_keeps_a_prefix() {
        let mem = MemFs::new();
        let fs = FaultFs::armed(mem.clone(), 0, DiskFault::Torn { keep: 3 });
        assert!(fs.write(Path::new("/d/a"), b"0123456789").is_err());
        assert!(fs.crashed());
        assert_eq!(mem.read(Path::new("/d/a")).unwrap(), b"012");
    }

    #[test]
    fn bit_flip_is_silent_and_changes_exactly_one_byte() {
        let mem = MemFs::new();
        let fs = FaultFs::armed(
            mem.clone(),
            0,
            DiskFault::BitFlip {
                offset: 12,
                mask: 0,
            },
        );
        fs.write(Path::new("/d/a"), b"0123456789").unwrap(); // reports success
        assert!(!fs.crashed());
        assert!(fs.fault_fired());
        let stored = mem.read(Path::new("/d/a")).unwrap();
        let diffs: Vec<usize> = stored
            .iter()
            .zip(b"0123456789")
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diffs, vec![12 % 10]);
        // The handle keeps working afterwards.
        fs.write(Path::new("/d/b"), b"later").unwrap();
    }

    #[test]
    fn no_space_is_reported_and_recoverable() {
        let mem = MemFs::new();
        let fs = FaultFs::armed(mem.clone(), 0, DiskFault::NoSpace);
        let err = fs.write(Path::new("/d/a"), b"data").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(!fs.crashed());
        assert!(!mem.exists(Path::new("/d/a")));
        // Retry on the same handle succeeds (space was freed).
        fs.write(Path::new("/d/a"), b"data").unwrap();
        assert_eq!(mem.read(Path::new("/d/a")).unwrap(), b"data");
    }

    #[test]
    fn rename_failure_leaves_source_in_place() {
        let mem = MemFs::new();
        let fs = FaultFs::armed(mem.clone(), 1, DiskFault::RenameFail);
        fs.write(Path::new("/d/a.tmp"), b"payload").unwrap();
        let err = fs
            .rename(Path::new("/d/a.tmp"), Path::new("/d/a"))
            .unwrap_err();
        assert!(err.to_string().contains("rename failed"));
        assert!(!fs.crashed());
        assert!(mem.exists(Path::new("/d/a.tmp")));
        assert!(!mem.exists(Path::new("/d/a")));
        // The retry goes through.
        fs.rename(Path::new("/d/a.tmp"), Path::new("/d/a")).unwrap();
        assert_eq!(mem.read(Path::new("/d/a")).unwrap(), b"payload");
    }

    #[test]
    fn teleported_fix_is_far_from_its_origin() {
        let d = clean_dataset(3, 10);
        let c = FaultConfig::parse("teleport=1.0").unwrap();
        let (fixes, log) = inject_faults(&d, &c, 5);
        assert_eq!(log.teleported, 30);
        let originals = neat_traj::sanitize::dataset_fixes(&d);
        for (orig, faulted) in originals.iter().zip(&fixes) {
            let moved = orig.position.distance(faulted.position);
            assert!((5_000.0..20_000.0).contains(&moved), "moved {moved}");
        }
    }
}
