//! GPS-noise injection: turns map-matched traces into raw traces.
//!
//! The map matcher (crate `neat-mapmatch`) needs noisy, unmatched input to
//! be exercised realistically. [`to_raw_traces`] strips segment ids from a
//! simulated dataset and perturbs each position with isotropic Gaussian
//! noise (Box–Muller over the seeded RNG, keeping the workspace free of
//! extra distribution crates).

use neat_rnet::location::RawSample;
use neat_traj::Dataset;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// A raw (unmatched) trace: the samples of one trajectory without segment
/// associations, as a GPS receiver would log them.
pub type RawTrace = Vec<RawSample>;

/// Invalid noise parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseError {
    /// The standard deviation was negative or not a number.
    InvalidStd(f64),
}

impl fmt::Display for NoiseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoiseError::InvalidStd(v) => {
                write!(f, "noise std must be a non-negative number, got {v}")
            }
        }
    }
}

impl std::error::Error for NoiseError {}

/// Draws one standard-normal variate via Box–Muller.
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Converts a matched dataset into raw traces with Gaussian position noise
/// of standard deviation `noise_std_m` metres per axis.
///
/// Deterministic for a given `(dataset, noise_std_m, seed)`.
///
/// # Errors
///
/// Returns [`NoiseError::InvalidStd`] when `noise_std_m` is negative or
/// NaN.
pub fn to_raw_traces(
    dataset: &Dataset,
    noise_std_m: f64,
    seed: u64,
) -> Result<Vec<RawTrace>, NoiseError> {
    if noise_std_m < 0.0 || noise_std_m.is_nan() {
        return Err(NoiseError::InvalidStd(noise_std_m));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Ok(dataset
        .trajectories()
        .iter()
        .map(|tr| {
            tr.points()
                .iter()
                .map(|p| {
                    let dx = standard_normal(&mut rng) * noise_std_m;
                    let dy = standard_normal(&mut rng) * noise_std_m;
                    RawSample::new(
                        neat_rnet::Point::new(p.position.x + dx, p.position.y + dy),
                        p.time,
                    )
                })
                .collect()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_dataset, SimConfig};
    use neat_rnet::netgen::{generate_grid_network, GridNetworkConfig};

    fn dataset() -> Dataset {
        let net = generate_grid_network(&GridNetworkConfig::small_test(8, 8), 2);
        generate_dataset(
            &net,
            &SimConfig {
                num_objects: 5,
                ..SimConfig::default()
            },
            3,
            "n",
        )
    }

    #[test]
    fn trace_shape_matches_dataset() {
        let d = dataset();
        let raw = to_raw_traces(&d, 5.0, 1).unwrap();
        assert_eq!(raw.len(), d.len());
        for (trace, tr) in raw.iter().zip(d.trajectories()) {
            assert_eq!(trace.len(), tr.len());
            for (s, p) in trace.iter().zip(tr.points()) {
                assert_eq!(s.time, p.time);
            }
        }
    }

    #[test]
    fn zero_noise_is_identity() {
        let d = dataset();
        let raw = to_raw_traces(&d, 0.0, 1).unwrap();
        for (trace, tr) in raw.iter().zip(d.trajectories()) {
            for (s, p) in trace.iter().zip(tr.points()) {
                assert_eq!(s.position, p.position);
            }
        }
    }

    #[test]
    fn noise_magnitude_is_plausible() {
        let d = dataset();
        let std = 10.0;
        let raw = to_raw_traces(&d, std, 7).unwrap();
        let mut sum_sq = 0.0;
        let mut n = 0usize;
        for (trace, tr) in raw.iter().zip(d.trajectories()) {
            for (s, p) in trace.iter().zip(tr.points()) {
                sum_sq += s.position.distance_sq(p.position);
                n += 1;
            }
        }
        // E[dx²+dy²] = 2σ²; allow a generous band.
        let mean_sq = sum_sq / n as f64;
        assert!(
            mean_sq > 0.5 * 2.0 * std * std && mean_sq < 2.0 * 2.0 * std * std,
            "mean squared displacement {mean_sq}"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let d = dataset();
        assert_eq!(
            to_raw_traces(&d, 5.0, 9).unwrap(),
            to_raw_traces(&d, 5.0, 9).unwrap()
        );
        assert_ne!(
            to_raw_traces(&d, 5.0, 9).unwrap(),
            to_raw_traces(&d, 5.0, 10).unwrap()
        );
    }

    #[test]
    fn invalid_noise_is_a_structured_error() {
        let d = dataset();
        assert_eq!(
            to_raw_traces(&d, -1.0, 0).unwrap_err(),
            NoiseError::InvalidStd(-1.0)
        );
        assert!(to_raw_traces(&d, f64::NAN, 0).is_err());
        let msg = to_raw_traces(&d, -1.0, 0).unwrap_err().to_string();
        assert!(msg.contains("non-negative"));
    }
}
