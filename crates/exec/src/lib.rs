//! Deterministic parallel execution for the NEAT pipeline.
//!
//! The clustering phases are sequential loops over independent work
//! items (trajectories, candidate merges, flow pairs) punctuated by
//! cooperative [`Control`] check points. Naive parallelism breaks two
//! guarantees the repo holds sacred: the *result* must be bit-identical
//! to the sequential run for any thread count, and a budget or fused
//! cancellation must interrupt at exactly the op index it would have
//! interrupted the sequential run at.
//!
//! [`Executor`] restores both with **speculative rounds + index-ordered
//! replay**:
//!
//! 1. Workers claim items of the current round from a shared counter
//!    and run each against a fresh [recorder control](Control::recorder)
//!    — unlimited budget, an observer cancel token (manual-cancel flag
//!    only, no fuse) — recording the item's result and its exact
//!    `(ops, settled)` check-point activity.
//! 2. After the round, a single fold thread walks the records **in item
//!    order** and bulk-applies each item's activity to the real control
//!    with [`Control::try_charge`]. A charge that would cross any limit
//!    (op/settled budget, fuse, a deadline-stride clock consultation)
//!    mutates nothing; the fold re-runs that item *live* against the
//!    real control, so the interrupt latches at exactly the sequential
//!    op index, and every later item is discarded.
//!
//! Because items are pure functions of their index (workers share no
//! mutable state through `f` beyond their private context), the folded
//! prefix equals the sequential prefix item by item — at worst one
//! round of speculative work is thrown away. With `threads == 1` (the
//! default everywhere) the executor *is* the sequential loop: it runs
//! items live against the real control with zero overhead, which keeps
//! the reference semantics executable and testable.
//!
//! The thread count is always injected (config or CLI); per neat-lint
//! L5 this crate never consults `available_parallelism()` — resolving
//! `0 = auto` is the binary's job.

use neat_runctl::{Charge, Control, Interrupt, Lock};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

/// Result of a controlled map: the completed prefix plus the interrupt
/// that stopped it, if any.
///
/// `halted == Some(why)` means items `0..items.len()` completed and the
/// item at index `items.len()` observed `why`; the remainder never ran
/// (or ran speculatively and was discarded).
#[derive(Debug)]
pub struct TryMap<T> {
    /// Results of the completed prefix, in item order.
    pub items: Vec<T>,
    /// The interrupt that stopped the map early, if any.
    pub halted: Option<Interrupt>,
}

/// One speculative record: the item's outcome plus the check-point
/// activity its recorder control observed.
struct Rec<T> {
    out: Result<T, Interrupt>,
    ops: u64,
    settled: u64,
}

/// A deterministic parallel mapper with an injected thread count.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    threads: usize,
    chunk: usize,
}

/// Default number of items each worker claims per speculative round.
/// A larger chunk amortises round synchronisation; a smaller one bounds
/// the work discarded when a budget fires mid-round.
const DEFAULT_CHUNK: usize = 32;

impl Executor {
    /// An executor running `threads` workers (0 and 1 both mean the
    /// sequential reference path).
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
            chunk: DEFAULT_CHUNK,
        }
    }

    /// Overrides the per-worker round chunk (clamped to at least 1).
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// The injected worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when `n` items would actually fan out across workers.
    pub fn is_parallel_for(&self, n: usize) -> bool {
        self.threads > 1 && n >= 2 * self.threads
    }

    /// Maps `f` over `0..n` under `ctl`, stopping at the first item
    /// that observes an interrupt — bit-identical to the sequential
    /// loop for any thread count, including the interrupt's op index.
    ///
    /// `make_ctx` builds one private mutable context per worker (plus
    /// one for live replays on the fold thread): scratch state such as a
    /// shortest-path engine. `f` must be a pure function of
    /// `(index, context scratch)` — it may read shared caches whose
    /// *values* are deterministic, but all check-point traffic must go
    /// through the passed control.
    pub fn try_map_ctl<C, T, F>(
        &self,
        n: usize,
        ctl: &Control,
        mut make_ctx: impl FnMut() -> C,
        f: F,
    ) -> TryMap<T>
    where
        C: Send,
        T: Send,
        F: Fn(usize, &mut C, &Control) -> Result<T, Interrupt> + Sync,
    {
        if !self.is_parallel_for(n) {
            let mut ctx = make_ctx();
            return run_sequential(n, ctl, &mut ctx, &f);
        }
        let threads = self.threads;
        let round_len = threads * self.chunk;
        let worker_ctxs: Vec<C> = (0..threads).map(|_| make_ctx()).collect();
        let mut replay_ctx = make_ctx();

        let counter = AtomicUsize::new(0);
        let round_end = AtomicUsize::new(0);
        let done = AtomicBool::new(false);
        let barrier = Barrier::new(threads + 1);
        // One result bin per worker, merged in item order after each round.
        type Bin<T> = Mutex<Vec<(usize, Rec<T>)>>;
        let slots: Vec<Bin<T>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();

        let mut items = Vec::with_capacity(n);
        let mut halted = None;

        let scope_result = crossbeam::thread::scope(|s| {
            for (w, mut ctx) in worker_ctxs.into_iter().enumerate() {
                let (counter, round_end, done, barrier) = (&counter, &round_end, &done, &barrier);
                let (slots, f, ctl) = (&slots, &f, ctl);
                s.spawn(move |_| loop {
                    barrier.wait();
                    if done.load(Ordering::SeqCst) {
                        break;
                    }
                    let end = round_end.load(Ordering::SeqCst);
                    loop {
                        let i = counter.fetch_add(1, Ordering::SeqCst);
                        if i >= end {
                            break;
                        }
                        let rec_ctl = ctl.recorder();
                        let out = f(i, &mut ctx, &rec_ctl);
                        let stop = out.is_err();
                        slots[w].enter().push((
                            i,
                            Rec {
                                out,
                                ops: rec_ctl.ops(),
                                settled: rec_ctl.settled(),
                            },
                        ));
                        if stop {
                            // A recorder only fails on a manual cancel;
                            // the run is over, stop claiming work.
                            break;
                        }
                    }
                    barrier.wait();
                });
            }

            let mut start = 0;
            while start < n && halted.is_none() {
                let end = (start + round_len).min(n);
                counter.store(start, Ordering::SeqCst);
                round_end.store(end, Ordering::SeqCst);
                barrier.wait(); // release workers into the round
                barrier.wait(); // all records are in

                let mut round: Vec<Option<Rec<T>>> = (start..end).map(|_| None).collect();
                for slot in &slots {
                    for (i, rec) in slot.enter().drain(..) {
                        round[i - start] = Some(rec);
                    }
                }
                for (off, slot) in round.into_iter().enumerate() {
                    let i = start + off;
                    let committed = match slot {
                        Some(Rec {
                            out: Ok(v),
                            ops,
                            settled,
                        }) => match ctl.try_charge(ops, settled) {
                            Charge::Committed => {
                                items.push(v);
                                true
                            }
                            Charge::Replay => false,
                        },
                        // Locally interrupted or never ran: decide live.
                        _ => false,
                    };
                    if !committed {
                        match f(i, &mut replay_ctx, ctl) {
                            Ok(v) => items.push(v),
                            Err(why) => {
                                halted = Some(why);
                                break;
                            }
                        }
                    }
                }
                start = end;
            }
            done.store(true, Ordering::SeqCst);
            barrier.wait(); // release workers to exit
        });
        // lint:allow(L1) reason=scope only fails when a worker panicked, which the panic-free library contract already forbids
        scope_result.expect("executor worker panicked");
        TryMap { items, halted }
    }

    /// Maps `f` over `0..n` with no control: every item runs, results
    /// come back in item order. Parallel for large-enough `n`,
    /// otherwise a plain loop.
    pub fn map_ctx<C, T, F>(&self, n: usize, mut make_ctx: impl FnMut() -> C, f: F) -> Vec<T>
    where
        C: Send,
        T: Send,
        F: Fn(usize, &mut C) -> T + Sync,
    {
        if !self.is_parallel_for(n) {
            let mut ctx = make_ctx();
            return (0..n).map(|i| f(i, &mut ctx)).collect();
        }
        let threads = self.threads;
        let chunk = self.chunk;
        let worker_ctxs: Vec<C> = (0..threads).map(|_| make_ctx()).collect();
        let counter = AtomicUsize::new(0);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();

        let gathered = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = worker_ctxs
                .into_iter()
                .map(|mut ctx| {
                    let (counter, f) = (&counter, &f);
                    s.spawn(move |_| {
                        let mut local = Vec::new();
                        // Claim `chunk` items per atomic bump: uncontrolled
                        // maps have no round barrier, so larger claims cost
                        // nothing in discarded work.
                        loop {
                            let start = counter.fetch_add(chunk, Ordering::SeqCst);
                            if start >= n {
                                break;
                            }
                            for i in start..(start + chunk).min(n) {
                                local.push((i, f(i, &mut ctx)));
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| {
                    // lint:allow(L1) reason=join only fails when the worker panicked, which the panic-free library contract already forbids
                    h.join().expect("executor worker panicked")
                })
                .collect::<Vec<_>>()
        });
        // lint:allow(L1) reason=scope only fails when a worker panicked, which the panic-free library contract already forbids
        for (i, v) in gathered.expect("executor worker panicked") {
            out[i] = Some(v);
        }
        out.into_iter().flatten().collect()
    }

    /// Context-free convenience wrapper over [`Executor::map_ctx`].
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_ctx(n, || (), |i, ()| f(i))
    }

    /// Maps `f` over contiguous chunk ranges of `0..n` with no control:
    /// workers claim whole chunks and produce **one result per chunk**,
    /// returned in chunk order.
    ///
    /// Chunk boundaries are fixed by the executor's chunk size alone
    /// (`[0, chunk)`, `[chunk, 2*chunk)`, …) — independent of the thread
    /// count — so a fold over the returned results visits per-item state
    /// in exactly index order at any parallelism. This is the batching
    /// primitive for phases that want one shared output buffer per chunk
    /// instead of one allocation per item.
    pub fn map_chunks<C, T, F>(&self, n: usize, mut make_ctx: impl FnMut() -> C, f: F) -> Vec<T>
    where
        C: Send,
        T: Send,
        F: Fn(std::ops::Range<usize>, &mut C) -> T + Sync,
    {
        let chunk = self.chunk;
        let n_chunks = n.div_ceil(chunk);
        let range_of = |c: usize| c * chunk..((c + 1) * chunk).min(n);
        if !self.is_parallel_for(n) {
            let mut ctx = make_ctx();
            return (0..n_chunks).map(|c| f(range_of(c), &mut ctx)).collect();
        }
        let threads = self.threads;
        let worker_ctxs: Vec<C> = (0..threads).map(|_| make_ctx()).collect();
        let counter = AtomicUsize::new(0);
        let mut out: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();

        let gathered = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = worker_ctxs
                .into_iter()
                .map(|mut ctx| {
                    let (counter, f, range_of) = (&counter, &f, &range_of);
                    s.spawn(move |_| {
                        let mut local = Vec::new();
                        loop {
                            let c = counter.fetch_add(1, Ordering::SeqCst);
                            if c >= n_chunks {
                                break;
                            }
                            local.push((c, f(range_of(c), &mut ctx)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| {
                    // lint:allow(L1) reason=join only fails when the worker panicked, which the panic-free library contract already forbids
                    h.join().expect("executor worker panicked")
                })
                .collect::<Vec<_>>()
        });
        // lint:allow(L1) reason=scope only fails when a worker panicked, which the panic-free library contract already forbids
        for (c, v) in gathered.expect("executor worker panicked") {
            out[c] = Some(v);
        }
        out.into_iter().flatten().collect()
    }
}

/// The sequential reference loop the parallel path must reproduce.
fn run_sequential<C, T>(
    n: usize,
    ctl: &Control,
    ctx: &mut C,
    f: &(impl Fn(usize, &mut C, &Control) -> Result<T, Interrupt> + ?Sized),
) -> TryMap<T> {
    let mut items = Vec::with_capacity(n);
    for i in 0..n {
        match f(i, ctx, ctl) {
            Ok(v) => items.push(v),
            Err(why) => {
                return TryMap {
                    items,
                    halted: Some(why),
                };
            }
        }
    }
    TryMap {
        items,
        halted: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_runctl::{CancelToken, RunBudget};

    /// Runs the same item function under every thread count and asserts
    /// identical prefixes, halt causes and final control counters.
    fn assert_matches_sequential<T: PartialEq + std::fmt::Debug + Send>(
        n: usize,
        budget: impl Fn() -> (RunBudget, CancelToken),
        f: impl Fn(usize, &mut u64, &Control) -> Result<T, Interrupt> + Sync,
    ) {
        let (b, t) = budget();
        let seq_ctl = Control::new(b, t);
        let mut scratch = 0u64;
        let seq = run_sequential(n, &seq_ctl, &mut scratch, &f);
        for threads in [2usize, 3, 8] {
            for chunk in [1usize, 2, 7, 32] {
                let (b, t) = budget();
                let ctl = Control::new(b, t);
                let par =
                    Executor::new(threads)
                        .with_chunk(chunk)
                        .try_map_ctl(n, &ctl, || 0u64, &f);
                assert_eq!(par.items, seq.items, "threads={threads} chunk={chunk}");
                assert_eq!(par.halted, seq.halted, "threads={threads} chunk={chunk}");
                assert_eq!(ctl.ops(), seq_ctl.ops(), "threads={threads} chunk={chunk}");
                assert_eq!(
                    ctl.settled(),
                    seq_ctl.settled(),
                    "threads={threads} chunk={chunk}"
                );
                assert_eq!(
                    ctl.interrupt(),
                    seq_ctl.interrupt(),
                    "threads={threads} chunk={chunk}"
                );
            }
        }
    }

    /// One check per item plus `i % 3` settlements: variable cost.
    fn item(i: usize, _ctx: &mut u64, c: &Control) -> Result<u64, Interrupt> {
        c.check()?;
        for _ in 0..i % 3 {
            c.check_settled()?;
        }
        Ok((i as u64) * 10)
    }

    #[test]
    fn unlimited_matches_sequential() {
        assert_matches_sequential(100, || (RunBudget::unlimited(), CancelToken::new()), item);
    }

    #[test]
    fn op_budget_halts_at_identical_prefix() {
        for max_ops in [0u64, 1, 7, 50, 120, 1_000] {
            assert_matches_sequential(
                100,
                || {
                    (
                        RunBudget::unlimited().with_max_ops(max_ops),
                        CancelToken::new(),
                    )
                },
                item,
            );
        }
    }

    #[test]
    fn settled_budget_halts_at_identical_prefix() {
        for max in [0u64, 1, 5, 33, 66] {
            assert_matches_sequential(
                100,
                || {
                    (
                        RunBudget::unlimited().with_max_settled_nodes(max),
                        CancelToken::new(),
                    )
                },
                item,
            );
        }
    }

    #[test]
    fn fused_cancellation_trips_at_identical_poll() {
        for polls in [0u64, 1, 2, 17, 64, 150] {
            assert_matches_sequential(
                100,
                || (RunBudget::unlimited(), CancelToken::armed_after(polls)),
                item,
            );
        }
    }

    #[test]
    fn every_arming_of_a_dense_matrix_matches() {
        // Exhaustive cancel/budget matrix over a small item set.
        for limit in 0..60u64 {
            assert_matches_sequential(
                12,
                || {
                    (
                        RunBudget::unlimited().with_max_ops(limit),
                        CancelToken::new(),
                    )
                },
                item,
            );
            assert_matches_sequential(
                12,
                || (RunBudget::unlimited(), CancelToken::armed_after(limit)),
                item,
            );
        }
    }

    #[test]
    fn zero_items_and_tiny_inputs_take_the_sequential_path() {
        let ctl = Control::unlimited();
        let r = Executor::new(8).try_map_ctl(0, &ctl, || (), |_, (), _| Ok::<u8, _>(1));
        assert!(r.items.is_empty() && r.halted.is_none());
        let r = Executor::new(8).try_map_ctl(
            3,
            &ctl,
            || (),
            |i, (), c| {
                c.check()?;
                Ok(i)
            },
        );
        assert_eq!(r.items, vec![0, 1, 2]);
    }

    #[test]
    fn map_preserves_order_under_parallelism() {
        let exec = Executor::new(4).with_chunk(3);
        let out = exec.map(1_000, |i| i * i);
        assert_eq!(out, (0..1_000).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_chunks_covers_every_index_in_chunk_order() {
        for threads in [1usize, 2, 4, 8] {
            for chunk in [1usize, 3, 7, 32] {
                let exec = Executor::new(threads).with_chunk(chunk);
                let ranges = exec.map_chunks(100, || (), |r, ()| r);
                let flat: Vec<usize> = ranges.into_iter().flatten().collect();
                assert_eq!(
                    flat,
                    (0..100).collect::<Vec<_>>(),
                    "threads={threads} chunk={chunk}"
                );
            }
        }
        // Boundaries are a function of the chunk size only.
        let a = Executor::new(2)
            .with_chunk(7)
            .map_chunks(50, || (), |r, ()| r);
        let b = Executor::new(8)
            .with_chunk(7)
            .map_chunks(50, || (), |r, ()| r);
        assert_eq!(a, b);
        assert!(Executor::new(4).map_chunks(0, || (), |r, ()| r).is_empty());
    }

    #[test]
    fn map_ctx_hands_each_worker_its_own_context() {
        let exec = Executor::new(4);
        // Contexts are private per worker, so unsynchronised mutation
        // is safe and every item comes back in order.
        let out = exec.map_ctx(
            500,
            || 0usize,
            |i, seen| {
                *seen += 1;
                i + *seen - *seen
            },
        );
        assert_eq!(out, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn manual_cancel_halts_with_cancelled() {
        let token = CancelToken::new();
        token.cancel();
        let ctl = Control::new(RunBudget::unlimited(), token);
        let r = Executor::new(4).try_map_ctl(100, &ctl, || 0u64, item);
        assert!(r.items.is_empty());
        assert_eq!(r.halted, Some(Interrupt::Cancelled));
    }

    #[test]
    fn replayed_prefix_matches_under_cluster_cap_interplay() {
        // Items that succeed but whose charges land exactly on budget
        // boundaries (regression guard for off-by-one in try_charge).
        for max_ops in 95..=105u64 {
            assert_matches_sequential(
                100,
                || {
                    (
                        RunBudget::unlimited().with_max_ops(max_ops),
                        CancelToken::new(),
                    )
                },
                |i, _ctx, c| {
                    c.check()?;
                    Ok(i)
                },
            );
        }
    }
}
