//! `neat-lint` CLI.
//!
//! ```text
//! cargo xtask lint [--format human|json] [--baseline PATH] [--root PATH]
//! cargo xtask lint --write-baseline      # snapshot current debt
//! ```
//!
//! Exit codes: 0 clean (or fully baselined), 1 new violations, 2 usage
//! or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask_lint::{run_with_manifest, Baseline};

const USAGE: &str = "\
neat-lint: static analysis for the NEAT workspace (rules L1-L9)

USAGE:
    cargo xtask lint [OPTIONS]
    cargo run -p xtask-lint -- [OPTIONS]

OPTIONS:
    --format <human|json>   output format (default: human)
    --baseline <PATH>       baseline file (default: <root>/lint-baseline.toml)
    --write-baseline        rewrite the baseline to cover current violations
    --locks <PATH>          lock-order manifest (default: <root>/lint-locks.toml)
    --root <PATH>           workspace root (default: auto-detected)
    -h, --help              show this help
";

#[derive(Debug, PartialEq)]
enum Format {
    Human,
    Json,
}

struct Options {
    format: Format,
    baseline_path: Option<PathBuf>,
    locks_path: Option<PathBuf>,
    write_baseline: bool,
    root: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Human,
        baseline_path: None,
        locks_path: None,
        write_baseline: false,
        root: None,
    };
    let mut it = args.iter().peekable();
    // Tolerate a leading `lint` subcommand so the `cargo xtask` alias
    // can be invoked as `cargo xtask lint`.
    if it.peek().is_some_and(|a| a.as_str() == "lint") {
        it.next();
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let v = it.next().ok_or("--format needs a value")?;
                opts.format = match v.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a path")?;
                opts.baseline_path = Some(PathBuf::from(v));
            }
            "--locks" => {
                let v = it.next().ok_or("--locks needs a path")?;
                opts.locks_path = Some(PathBuf::from(v));
            }
            "--write-baseline" => opts.write_baseline = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                opts.root = Some(PathBuf::from(v));
            }
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// Workspace root: `--root`, else the manifest dir's grandparent
/// (`crates/xtask-lint` → repo root), else the current directory.
fn find_root(opts: &Options) -> PathBuf {
    if let Some(root) = &opts.root {
        return root.clone();
    }
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    if let Some(root) = manifest.parent().and_then(|p| p.parent()) {
        if root.join("Cargo.toml").is_file() {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let root = find_root(&opts);
    let baseline_path = opts
        .baseline_path
        .clone()
        .unwrap_or_else(|| root.join("lint-baseline.toml"));

    let baseline = if opts.write_baseline {
        // Writing: start from scratch so stale entries drop out.
        Baseline::default()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: {}: {e}", baseline_path.display());
                    return ExitCode::from(2);
                }
            },
            Err(_) => Baseline::default(), // no baseline file: everything is new
        }
    };

    let locks_path = opts
        .locks_path
        .clone()
        .unwrap_or_else(|| xtask_lint::runner::default_manifest_path(&root));
    let manifest = match xtask_lint::runner::load_manifest(&locks_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match run_with_manifest(&root, &baseline, &manifest) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.write_baseline {
        let snapshot = Baseline::from_violations(&report.violations);
        if let Err(e) = std::fs::write(&baseline_path, snapshot.render()) {
            eprintln!("error: write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} covering {} violation(s) across {} file(s)",
            baseline_path.display(),
            report.violations.len(),
            snapshot
                .entries
                .keys()
                .map(|(_, f)| f)
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        );
        return ExitCode::SUCCESS;
    }

    match opts.format {
        Format::Json => print!("{}", report.to_json()),
        Format::Human => {
            for v in &report.fresh {
                println!("{}", v.render());
            }
            if report.fresh.is_empty() {
                println!(
                    "neat-lint: clean — {} file(s) scanned, {} waived by lint:allow, \
                     {} baselined",
                    report.files_scanned, report.waived, report.baselined
                );
            } else {
                let per_rule: Vec<String> = report
                    .fresh_by_rule()
                    .into_iter()
                    .map(|(r, n)| format!("{r}: {n}"))
                    .collect();
                println!(
                    "\nneat-lint: {} new violation(s) [{}] — {} file(s) scanned, \
                     {} waived, {} baselined",
                    report.fresh.len(),
                    per_rule.join(", "),
                    report.files_scanned,
                    report.waived,
                    report.baselined
                );
            }
        }
    }

    if report.fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
