//! Concurrency rules L6–L9.
//!
//! These rules mechanize the conventions the parallel/streaming stack
//! (PRs 3–6) relies on but `rustc` cannot see:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `L6` | lock discipline: acquisitions follow the `lint-locks.toml` rank order; no nested/double acquisition; no guard held across `Fs`/journal/spool I/O; raw `.lock()` only inside the sanctioned poison-policy helper |
//! | `L7` | atomics discipline: no bare `Ordering::Relaxed` outside designated counter modules |
//! | `L8` | unwind safety: every `catch_unwind`/`AssertUnwindSafe` site names its invariant-restoration path via `lint:allow(L8) reason=…` |
//! | `L9` | parallel-fold purity: closures passed to `exec::map`/`map_ctx`/`try_map_ctl` don't mutate shared state outside the sanctioned `ShardedMap`/recorder/`Control` APIs |
//!
//! All four run only on library-crate files (`rules::is_library_code`),
//! over the `#[cfg(test)]`-stripped token stream, using the structural
//! layer ([`crate::structure`]) for function bodies and guard regions.
//!
//! ## Guard regions
//!
//! L6 approximates a guard's lifetime from the acquisition expression's
//! shape: a *chained* acquisition (`m.enter().push(x)`,
//! `for r in slot.enter().drain(..) { … }`) produces a temporary guard
//! that lives to the end of its statement — which, via
//! [`crate::structure::statement_end`], includes a loop body when the
//! guard sits in the loop header. An acquisition whose guard is bound
//! (`let g = m.enter();`, `match m.lock() { … }`) is held to the end of
//! the enclosing block. Guards returned across function boundaries
//! (e.g. a private `fn shard(&self) -> MutexGuard<…>`) are *not*
//! tracked — the manifest's `leaf` flag plus the helper-returning
//! function's own body checks are the guard rails there.

use crate::lexer::{TokKind, Token};
use crate::locks::LockManifest;
use crate::rules::Violation;
use crate::structure::{
    enclosing_block_end, fn_bodies, in_use_statement, matching_paren, statement_end, FnBody,
};

/// The one sanctioned raw-`.lock()` site: the poison-policy helper that
/// every other library acquisition goes through (`Lock::enter`).
pub const LOCK_HELPER_SITES: [&str; 1] = ["crates/runctl/src/sync.rs"];

/// Modules whose atomics are plain statistics counters — values that
/// feed no control decision and tolerate relaxed ordering. Only here
/// may `Ordering::Relaxed` appear un-annotated.
pub const L7_COUNTER_MODULES: [&str; 2] =
    ["crates/durability/src/retry.rs", "crates/bench/src/log.rs"];

/// Call names that perform storage I/O (the `Fs` trait surface plus the
/// journal/spool/checkpoint layers). Holding a lock guard across any of
/// these couples lock hold time to disk latency and, worse, lets an I/O
/// error path unwind with the guard held.
const IO_CALLS: [&str; 7] = [
    "write_atomic",
    "write_atomic_std",
    "sync_all",
    "fsync",
    "log_batch",
    "save_checkpoint",
    "replay",
];

/// Receiver names that denote storage handles: any method call on one
/// of these inside a guard region is treated as I/O.
const IO_RECEIVERS: [&str; 4] = ["fs", "store", "journal", "spool"];

/// Mutating/escaping operations banned inside parallel-fold closures.
/// Method position only, so a local `fn store(…)` never matches.
const L9_BANNED_METHODS: [&str; 10] = [
    "lock",
    "enter",
    "borrow_mut",
    "fetch_add",
    "fetch_sub",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "store",
    "swap",
];

/// A `Mutex`/`RwLock` declaration found in a library file. The runner
/// checks each against the manifest (workspace-level coverage).
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Binding/field/type-alias name the lock is declared under.
    pub name: String,
    /// 1-based line of the `Mutex`/`RwLock` token.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// `true` when a `lint:allow(L6)` annotation covers the declaration
    /// (set by the caller after annotation matching).
    pub waived: bool,
}

/// Per-file concurrency site index, fed to the runner's workspace-level
/// manifest coverage / staleness checks.
#[derive(Debug, Clone, Default)]
pub struct ConcurrencySummary {
    /// Lock declarations in this file.
    pub declared_locks: Vec<LockDecl>,
    /// Receiver names of lock acquisitions in this file (manifest
    /// entries matching one of these are not stale).
    pub receivers: Vec<String>,
}

fn stdio_receiver(name: &str) -> bool {
    matches!(name, "stdout" | "stderr" | "stdin")
}

/// What a `.lock()`/`.enter()` call is invoked on.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Receiver {
    /// A plain binding or field name (`slots[w].enter()` → `slots`).
    Named(String),
    /// A call result (`stdout().lock()` → `stdout`).
    Call(String),
    /// Anything else (unresolvable expression).
    Opaque,
}

impl Receiver {
    fn display(&self) -> String {
        match self {
            Receiver::Named(n) => n.clone(),
            Receiver::Call(n) => format!("{n}()"),
            Receiver::Opaque => "<expr>".into(),
        }
    }
}

/// Walks back from the `.` before a method name to the receiver.
fn receiver_of(tokens: &[Token], dot_idx: usize) -> Receiver {
    if dot_idx == 0 {
        return Receiver::Opaque;
    }
    let mut j = dot_idx - 1;
    // Skip a trailing index expression: `slots[w]` → `slots`.
    while tokens[j].is_punct(']') {
        let mut depth = 0i64;
        loop {
            if tokens[j].is_punct(']') {
                depth += 1;
            } else if tokens[j].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return Receiver::Opaque;
            }
            j -= 1;
        }
        if j == 0 {
            return Receiver::Opaque;
        }
        j -= 1;
    }
    if tokens[j].is_punct(')') {
        // Call result: find the callee name before the matching `(`.
        let mut depth = 0i64;
        loop {
            if tokens[j].is_punct(')') {
                depth += 1;
            } else if tokens[j].is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return Receiver::Opaque;
            }
            j -= 1;
        }
        if j == 0 {
            return Receiver::Opaque;
        }
        return match &tokens[j - 1] {
            t if t.kind == TokKind::Ident => Receiver::Call(t.text.clone()),
            _ => Receiver::Opaque,
        };
    }
    if tokens[j].kind == TokKind::Ident {
        return Receiver::Named(tokens[j].text.clone());
    }
    Receiver::Opaque
}

/// One lock acquisition site inside a function body.
#[derive(Debug, Clone)]
struct Acquisition {
    /// Token index of the method name (`lock`/`enter`/`read`/`write`).
    idx: usize,
    /// Token index of the call's closing `)`.
    close: usize,
    receiver: Receiver,
    /// `"lock"`, `"enter"`, `"read"` or `"write"`.
    via: &'static str,
}

/// Scans `range` for zero-argument `.lock()`/`.enter()`/`.read()`/
/// `.write()` calls. `read`/`write` count only when the receiver
/// resolves in the manifest (plain `file.read()` is not a lock).
fn collect_acquisitions(
    tokens: &[Token],
    lo: usize,
    hi: usize,
    krate: &str,
    manifest: &LockManifest,
) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for i in lo..hi.min(tokens.len()) {
        let t = &tokens[i];
        let via = match t.text.as_str() {
            "lock" => "lock",
            "enter" => "enter",
            "read" => "read",
            "write" => "write",
            _ => continue,
        };
        if t.kind != TokKind::Ident
            || i == 0
            || !tokens[i - 1].is_punct('.')
            || !tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        let Some(close) = matching_paren(tokens, i + 1) else {
            continue;
        };
        if close != i + 2 {
            continue; // has arguments: fs.write(path, bytes) etc.
        }
        let receiver = receiver_of(tokens, i - 1);
        if let Receiver::Call(name) = &receiver {
            if stdio_receiver(name) {
                continue; // OS stdio locks are not our locks
            }
        }
        if matches!(via, "read" | "write") {
            let resolves = matches!(&receiver, Receiver::Named(n)
                if manifest.resolve(krate, n).is_some());
            if !resolves {
                continue;
            }
        }
        out.push(Acquisition {
            idx: i,
            close,
            receiver,
            via,
        });
    }
    out
}

/// Index (into `bodies`) of the innermost body containing token `idx`.
fn innermost_body(bodies: &[FnBody], idx: usize) -> Option<usize> {
    bodies
        .iter()
        .enumerate()
        .filter(|(_, b)| b.open < idx && idx < b.close)
        .min_by_key(|(_, b)| b.close - b.open)
        .map(|(i, _)| i)
}

/// End of the guard region for acquisition `a` inside `body`.
fn guard_region_end(tokens: &[Token], body: &FnBody, a: &Acquisition) -> usize {
    let chained = tokens
        .get(a.close + 1)
        .is_some_and(|n| n.is_punct('.') || n.is_punct('?'));
    if chained {
        statement_end(tokens, a.close + 1, body.close)
    } else {
        enclosing_block_end(tokens, body.open, body.close, a.idx)
    }
}

fn violation(path: &str, t: &Token, message: String, help: &str) -> Violation {
    Violation {
        rule: "L6",
        file: path.to_string(),
        line: t.line,
        col: t.col,
        message,
        help: help.to_string(),
    }
}

// ---------------------------------------------------------------------------
// L6 — lock discipline
// ---------------------------------------------------------------------------

/// Runs L6 over one file and returns its site index for the runner.
pub fn rule_l6(
    path: &str,
    krate: &str,
    tokens: &[Token],
    manifest: &LockManifest,
    out: &mut Vec<Violation>,
) -> ConcurrencySummary {
    let mut summary = ConcurrencySummary::default();
    collect_lock_decls(tokens, &mut summary);

    let helper_site = LOCK_HELPER_SITES.contains(&path);
    let bodies = fn_bodies(tokens);
    let acquisitions = collect_acquisitions(tokens, 0, tokens.len(), krate, manifest);
    for a in &acquisitions {
        summary.receivers.push(a.receiver.display());
        // Raw `.lock()` bypasses the poison policy everywhere except in
        // the helper that *implements* the policy.
        if a.via == "lock" && !helper_site {
            out.push(violation(
                path,
                &tokens[a.idx],
                format!(
                    "raw `.lock()` on `{}` bypasses the `Lock::enter` poison policy",
                    a.receiver.display()
                ),
                "acquire through `runctl::sync::Lock::enter`, or annotate the local poison \
                 policy with `// lint:allow(L6) reason=<policy>`",
            ));
        }
        // Every acquisition must resolve in the manifest (once one
        // exists) so the rank order below is total.
        if !helper_site && !manifest.is_empty() && resolve(manifest, krate, &a.receiver).is_none() {
            out.push(violation(
                path,
                &tokens[a.idx],
                format!(
                    "lock `{}` is not declared in lint-locks.toml",
                    a.receiver.display()
                ),
                "add a [[lock]] entry with a rank (and aliases for local binding names)",
            ));
        }
    }

    // Region analysis, per innermost function body.
    for (bi, body) in bodies.iter().enumerate() {
        let own: Vec<&Acquisition> = acquisitions
            .iter()
            .filter(|a| innermost_body(&bodies, a.idx) == Some(bi))
            .collect();
        for (ai, a) in own.iter().enumerate() {
            let end = guard_region_end(tokens, body, a);
            let a_entry = resolve(manifest, krate, &a.receiver);
            for b in own.iter().skip(ai + 1).filter(|b| b.idx <= end) {
                let b_entry = resolve(manifest, krate, &b.receiver);
                let bt = &tokens[b.idx];
                let same_named =
                    matches!(&a.receiver, Receiver::Named(_)) && a.receiver == b.receiver;
                if same_named || (a_entry.is_some() && ptr_eq(a_entry, b_entry)) {
                    out.push(violation(
                        path,
                        bt,
                        format!(
                            "`{}` acquired again while its own guard may still be held",
                            b.receiver.display()
                        ),
                        "reuse the existing guard; a second acquisition self-deadlocks",
                    ));
                } else if a_entry.is_some_and(|e| e.leaf) {
                    out.push(violation(
                        path,
                        bt,
                        format!(
                            "`{}` acquired while leaf lock `{}` is held",
                            b.receiver.display(),
                            a.receiver.display()
                        ),
                        "leaf locks admit no nesting — drop the guard first",
                    ));
                } else if let (Some(ae), Some(be)) = (a_entry, b_entry) {
                    if be.rank <= ae.rank {
                        out.push(violation(
                            path,
                            bt,
                            format!(
                                "lock order violation: `{}` (rank {}) acquired while `{}` \
                                 (rank {}) is held",
                                b.receiver.display(),
                                be.rank,
                                a.receiver.display(),
                                ae.rank
                            ),
                            "acquire in strictly increasing rank order (see lint-locks.toml)",
                        ));
                    }
                } else if manifest.is_empty() {
                    out.push(violation(
                        path,
                        bt,
                        format!(
                            "nested lock acquisition: `{}` under `{}`",
                            b.receiver.display(),
                            a.receiver.display()
                        ),
                        "declare both locks in lint-locks.toml so their order can be ranked",
                    ));
                }
            }
            // Storage I/O inside the guard region.
            for j in a.close + 1..=end.min(tokens.len() - 1) {
                let t = &tokens[j];
                if t.kind != TokKind::Ident {
                    continue;
                }
                let io_call = IO_CALLS.contains(&t.text.as_str())
                    && tokens.get(j + 1).is_some_and(|n| n.is_punct('('));
                let io_recv = IO_RECEIVERS.contains(&t.text.as_str())
                    && tokens.get(j + 1).is_some_and(|n| n.is_punct('.'))
                    && tokens.get(j + 2).is_some_and(|m| m.kind == TokKind::Ident)
                    && tokens.get(j + 3).is_some_and(|n| n.is_punct('('));
                if io_call || io_recv {
                    out.push(violation(
                        path,
                        t,
                        format!(
                            "guard of `{}` held across storage I/O (`{}`)",
                            a.receiver.display(),
                            t.text
                        ),
                        "copy what the I/O needs out of the guarded region, drop the guard, \
                         then write",
                    ));
                }
            }
        }
    }
    summary
}

fn resolve<'m>(
    manifest: &'m LockManifest,
    krate: &str,
    receiver: &Receiver,
) -> Option<&'m crate::locks::LockEntry> {
    match receiver {
        Receiver::Named(n) => manifest.resolve(krate, n),
        _ => None,
    }
}

fn ptr_eq(a: Option<&crate::locks::LockEntry>, b: Option<&crate::locks::LockEntry>) -> bool {
    matches!((a, b), (Some(x), Some(y)) if std::ptr::eq(x, y))
}

/// Finds `Mutex`/`RwLock` declarations: `name: [Arc<][Vec<]Mutex<…>`,
/// `type Name<…> = Mutex<…>`, and `let name = Mutex::new(…)`. Borrowed
/// parameter positions (`m: &Mutex<T>`) and bare mentions (imports,
/// generic impls) are not declarations.
fn collect_lock_decls(tokens: &[Token], summary: &mut ConcurrencySummary) {
    for (m, t) in tokens.iter().enumerate() {
        if !(t.is_ident("Mutex") || t.is_ident("RwLock")) {
            continue;
        }
        let type_pos = tokens.get(m + 1).is_some_and(|n| n.is_punct('<'));
        let ctor_pos = tokens.get(m + 1).is_some_and(|n| n.is_punct(':'))
            && tokens.get(m + 2).is_some_and(|n| n.is_punct(':'))
            && tokens.get(m + 3).is_some_and(|n| n.is_ident("new"));
        if !type_pos && !ctor_pos {
            continue;
        }
        // A reference to a lock is not a declaration, and neither is an
        // impl target (`impl Lock<T> for Mutex<T>`).
        if m >= 1 && (tokens[m - 1].is_punct('&') || tokens[m - 1].is_ident("for")) {
            continue;
        }
        // Walk back (bounded) looking for `name :` (single colon) or a
        // `type Name` / `let name` binder before an `=`.
        let mut name: Option<(String, bool)> = None; // (name, via_colon)
        let lo = m.saturating_sub(16);
        let mut j = m;
        while j > lo {
            j -= 1;
            let p = &tokens[j];
            if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') || p.is_punct(',') {
                break;
            }
            let single_colon = p.is_punct(':')
                && !tokens.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && j >= 1
                && !tokens[j - 1].is_punct(':');
            if single_colon && tokens[j - 1].kind == TokKind::Ident {
                name = Some((tokens[j - 1].text.clone(), true));
                break;
            }
            if (p.is_ident("type") || p.is_ident("let") || p.is_ident("static"))
                && tokens.get(j + 1).is_some_and(|n| n.kind == TokKind::Ident)
            {
                name = Some((tokens[j + 1].text.clone(), false));
                break;
            }
        }
        if let Some((n, _)) = name {
            summary.declared_locks.push(LockDecl {
                name: n,
                line: t.line,
                col: t.col,
                waived: false,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// L7 — atomics discipline
// ---------------------------------------------------------------------------

pub fn rule_l7(path: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    if L7_COUNTER_MODULES.contains(&path) {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        // `Ordering :: Relaxed` — the `std::cmp::Ordering` variants
        // (Less/Equal/Greater) never match, so comparator code is safe.
        if t.is_ident("Relaxed")
            && i >= 2
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
        {
            out.push(Violation {
                rule: "L7",
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: "`Ordering::Relaxed` outside a designated counter module".into(),
                help: "use SeqCst/Acquire/Release (AcqRel), move the counter into a counter \
                       module, or justify with `// lint:allow(L7) reason=<why relaxed is safe>`"
                    .into(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// L8 — unwind safety
// ---------------------------------------------------------------------------

pub fn rule_l8(path: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        let (message, help): (String, &str) = if t.is_ident("catch_unwind") {
            (
                "`catch_unwind` must name its invariant-restoration path".into(),
                "annotate with `// lint:allow(L8) reason=<which recovery routine restores \
                 state invariants after the unwind>`",
            )
        } else if t.is_ident("AssertUnwindSafe") {
            (
                "`AssertUnwindSafe` asserts shared state stays coherent across an unwind".into(),
                "annotate with `// lint:allow(L8) reason=<why state reachable across the \
                 boundary cannot be observed torn>`",
            )
        } else {
            continue;
        };
        if in_use_statement(tokens, i) {
            continue;
        }
        out.push(Violation {
            rule: "L8",
            file: path.to_string(),
            line: t.line,
            col: t.col,
            message,
            help: help.to_string(),
        });
    }
}

// ---------------------------------------------------------------------------
// L9 — parallel-fold purity
// ---------------------------------------------------------------------------

pub fn rule_l9(path: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        let is_fold = (t.is_ident("try_map_ctl") || t.is_ident("map_ctx"))
            || (t.is_ident("map")
                && matches!(receiver_of(tokens, i.wrapping_sub(1)), Receiver::Named(n)
                    if n == "exec" || n == "executor"));
        if !is_fold
            || i == 0
            || !tokens[i - 1].is_punct('.')
            || !tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        let Some(close) = matching_paren(tokens, i + 1) else {
            continue;
        };
        for j in i + 2..close {
            let b = &tokens[j];
            if b.kind != TokKind::Ident {
                continue;
            }
            if b.is_ident("unsafe") {
                out.push(l9_violation(path, b, "an `unsafe` block"));
                continue;
            }
            let banned_method = L9_BANNED_METHODS.contains(&b.text.as_str())
                && j >= 1
                && tokens[j - 1].is_punct('.')
                && tokens.get(j + 1).is_some_and(|n| n.is_punct('('));
            if banned_method {
                out.push(l9_violation(path, b, &format!("`.{}()`", b.text)));
            }
        }
    }
}

fn l9_violation(path: &str, t: &Token, what: &str) -> Violation {
    Violation {
        rule: "L9",
        file: path.to_string(),
        line: t.line,
        col: t.col,
        message: format!(
            "parallel-fold closure touches shared mutable state via {what}; the fold must \
             stay pure for bit-identical replay"
        ),
        help: "route shared effects through the sanctioned APIs (ShardedMap \
               compute-under-shard, the recorder, Control::check), or hoist the mutation \
               out of the fold"
            .into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const LIB: &str = "crates/neat/src/model.rs";

    fn manifest(text: &str) -> LockManifest {
        LockManifest::parse(text).unwrap()
    }

    fn l6(src: &str, m: &LockManifest) -> Vec<String> {
        let (tokens, _) = lex(src);
        let mut out = Vec::new();
        rule_l6(LIB, "neat", &tokens, m, &mut out);
        out.into_iter().map(|v| v.message).collect()
    }

    const TWO_LOCKS: &str = r#"
[[lock]]
crate = "neat"
name = "low"
rank = 10
[[lock]]
crate = "neat"
name = "high"
rank = 20
[[lock]]
crate = "neat"
name = "tip"
rank = 30
leaf = true
"#;

    #[test]
    fn raw_lock_flagged_enter_not() {
        let m = manifest(TWO_LOCKS);
        let msgs = l6("fn f() { low.lock().push(1); }", &m);
        assert!(msgs.iter().any(|m| m.contains("raw `.lock()`")), "{msgs:?}");
        let msgs = l6("fn f() { low.enter().push(1); }", &m);
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn stdio_locks_ignored() {
        let m = manifest(TWO_LOCKS);
        let msgs = l6("fn f() { let o = std::io::stdout().lock(); }", &m);
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn undeclared_lock_flagged() {
        let m = manifest(TWO_LOCKS);
        let msgs = l6("fn f() { rogue.enter().push(1); }", &m);
        assert!(msgs.iter().any(|m| m.contains("not declared")), "{msgs:?}");
    }

    #[test]
    fn rank_order_enforced() {
        let m = manifest(TWO_LOCKS);
        // Ascending is fine…
        let ok = l6("fn f() { let a = low.enter(); let b = high.enter(); }", &m);
        assert!(ok.is_empty(), "{ok:?}");
        // …descending is not.
        let bad = l6("fn f() { let a = high.enter(); let b = low.enter(); }", &m);
        assert!(bad.iter().any(|m| m.contains("lock order")), "{bad:?}");
    }

    #[test]
    fn double_acquisition_and_leaf_nesting() {
        let m = manifest(TWO_LOCKS);
        let dbl = l6("fn f() { let a = low.enter(); let b = low.enter(); }", &m);
        assert!(dbl.iter().any(|m| m.contains("acquired again")), "{dbl:?}");
        let leaf = l6("fn f() { let a = tip.enter(); let b = high.enter(); }", &m);
        assert!(leaf.iter().any(|m| m.contains("leaf")), "{leaf:?}");
    }

    #[test]
    fn chained_guard_is_statement_scoped() {
        let m = manifest(TWO_LOCKS);
        // The temporary guard from the chained call dies at the `;`, so
        // the second acquisition does not nest.
        let msgs = l6("fn f() { high.enter().push(1); low.enter().push(2); }", &m);
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn guard_across_io_flagged() {
        let m = manifest(TWO_LOCKS);
        let msgs = l6("fn f() { let g = low.enter(); fs.write(p, b); }", &m);
        assert!(
            msgs.iter().any(|m| m.contains("held across storage I/O")),
            "{msgs:?}"
        );
        // Dropping the guard first is fine.
        let ok = l6("fn f() { { let g = low.enter(); } fs.write(p, b); }", &m);
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn decls_collected_with_names() {
        let src = "struct S { files: Arc<Mutex<B>>, n: u32 }\n\
                   type Bin<T> = Mutex<Vec<T>>;\n\
                   fn f(m: &Mutex<u8>) { let g = Mutex::new(0); }";
        let (tokens, _) = lex(src);
        let mut out = Vec::new();
        let s = rule_l6(LIB, "neat", &tokens, &LockManifest::default(), &mut out);
        let names: Vec<_> = s.declared_locks.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["files", "Bin", "g"], "no decl for &Mutex param");
    }

    #[test]
    fn l7_relaxed_outside_counter_modules() {
        let (tokens, _) = lex("fn f() { c.fetch_add(1, Ordering::Relaxed); }");
        let mut out = Vec::new();
        rule_l7(LIB, &tokens, &mut out);
        assert_eq!(out.len(), 1);
        // cmp::Ordering variants and strong atomic orderings never match.
        let (tokens, _) = lex("fn f() { if o == Ordering::Less { } x.load(Ordering::SeqCst); }");
        let mut out = Vec::new();
        rule_l7(LIB, &tokens, &mut out);
        assert!(out.is_empty());
        // Counter modules are exempt.
        let (tokens, _) = lex("fn f() { c.load(Ordering::Relaxed); }");
        let mut out = Vec::new();
        rule_l7("crates/bench/src/log.rs", &tokens, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn l8_flags_call_sites_not_imports() {
        let src = "use std::panic::{catch_unwind, AssertUnwindSafe};\n\
                   fn f() { let r = catch_unwind(AssertUnwindSafe(|| g())); }";
        let (tokens, _) = lex(src);
        let mut out = Vec::new();
        rule_l8(LIB, &tokens, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|v| v.line == 2));
    }

    #[test]
    fn l9_bans_shared_mutation_in_folds() {
        let bad = "fn f() { exec.map(n, |i| { total.fetch_add(1, o); i }); }";
        let (tokens, _) = lex(bad);
        let mut out = Vec::new();
        rule_l9(LIB, &tokens, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");

        // Plain iterator `.map` is not a parallel fold.
        let ok = "fn f() { let v: Vec<u32> = xs.iter().map(|i| c.fetch_add(1, o)).collect(); }";
        let (tokens, _) = lex(ok);
        let mut out = Vec::new();
        rule_l9(LIB, &tokens, &mut out);
        assert!(out.is_empty(), "{out:?}");

        // Sanctioned APIs (Control::check, ShardedMap get_or_insert_with)
        // don't trip the detector.
        let ok = "fn f() { exec.try_map_ctl(n, c, || (), |i, s, cc| { cc.check()?; \
                  Ok(memo.get_or_insert_with(k, || heavy(i))) }); }";
        let (tokens, _) = lex(ok);
        let mut out = Vec::new();
        rule_l9(LIB, &tokens, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
