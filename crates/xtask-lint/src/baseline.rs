//! Count-based violation baseline.
//!
//! `lint-baseline.toml` records, per `(rule, file)`, how many violations
//! existed when the baseline was written. A run fails only when a count
//! *exceeds* its baseline entry, so pre-existing debt can be burned down
//! incrementally while new debt is rejected immediately. Counts (not
//! line numbers) make the baseline robust to unrelated line drift.
//!
//! The format is a strict TOML subset so the tool stays dependency-free:
//!
//! ```toml
//! # neat-lint baseline — regenerate with `cargo xtask lint --write-baseline`
//! [[violation]]
//! rule = "L1"
//! file = "crates/neat/src/phase2.rs"
//! count = 3
//! ```

use std::collections::BTreeMap;

use crate::rules::Violation;

/// Baseline: `(rule, file) -> allowed count`, ordered for stable output.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    pub entries: BTreeMap<(String, String), usize>,
}

impl Baseline {
    /// Parses the TOML-subset baseline format. Returns `Err` with a
    /// line-numbered message on anything outside the subset.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        let mut cur: Option<(Option<String>, Option<String>, Option<usize>)> = None;

        fn flush(
            cur: &mut Option<(Option<String>, Option<String>, Option<usize>)>,
            entries: &mut BTreeMap<(String, String), usize>,
        ) -> Result<(), String> {
            if let Some((rule, file, count)) = cur.take() {
                match (rule, file, count) {
                    (Some(r), Some(f), Some(c)) => {
                        entries.insert((r, f), c);
                        Ok(())
                    }
                    _ => Err("incomplete [[violation]] entry: need rule, file and count".into()),
                }
            } else {
                Ok(())
            }
        }

        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[violation]]" {
                flush(&mut cur, &mut entries).map_err(|e| format!("line {lineno}: {e}"))?;
                cur = Some((None, None, None));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {lineno}: expected `key = value`, got `{line}`"
                ));
            };
            let Some(entry) = cur.as_mut() else {
                return Err(format!(
                    "line {lineno}: `{}` outside a [[violation]] table",
                    key.trim()
                ));
            };
            let value = value.trim();
            match key.trim() {
                "rule" => entry.0 = Some(unquote(value, lineno)?),
                "file" => entry.1 = Some(unquote(value, lineno)?),
                "count" => {
                    entry.2 = Some(
                        value
                            .parse::<usize>()
                            .map_err(|_| format!("line {lineno}: count must be an integer"))?,
                    )
                }
                other => return Err(format!("line {lineno}: unknown key `{other}`")),
            }
        }
        let mut out = Self { entries };
        flush(&mut cur, &mut out.entries).map_err(|e| format!("at end of file: {e}"))?;
        Ok(out)
    }

    /// Serializes in the same subset format, sorted by (rule, file).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# neat-lint baseline — allowed pre-existing violation counts.\n\
             # Regenerate with `cargo xtask lint --write-baseline`; only shrink it.\n",
        );
        for ((rule, file), count) in &self.entries {
            out.push_str(&format!(
                "\n[[violation]]\nrule = \"{rule}\"\nfile = \"{file}\"\ncount = {count}\n"
            ));
        }
        out
    }

    /// Builds a baseline that exactly covers `violations`.
    pub fn from_violations(violations: &[Violation]) -> Self {
        let mut entries: BTreeMap<(String, String), usize> = BTreeMap::new();
        for v in violations {
            *entries
                .entry((v.rule.to_string(), v.file.clone()))
                .or_insert(0) += 1;
        }
        Self { entries }
    }

    /// Splits `violations` into (new, baselined). For each `(rule, file)`
    /// bucket the first `allowed` violations (in position order) are
    /// considered baselined; any excess is new.
    pub fn apply(&self, violations: &[Violation]) -> (Vec<Violation>, usize) {
        let mut used: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut fresh = Vec::new();
        let mut covered = 0usize;
        for v in violations {
            let key = (v.rule.to_string(), v.file.clone());
            let allowed = self.entries.get(&key).copied().unwrap_or(0);
            let seen = used.entry(key).or_insert(0);
            if *seen < allowed {
                *seen += 1;
                covered += 1;
            } else {
                fresh.push(v.clone());
            }
        }
        (fresh, covered)
    }
}

fn unquote(value: &str, lineno: usize) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("line {lineno}: expected a double-quoted string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn viol(rule: &'static str, file: &str, line: u32) -> Violation {
        Violation {
            rule,
            file: file.into(),
            line,
            col: 1,
            message: String::new(),
            help: String::new(),
        }
    }

    #[test]
    fn roundtrip() {
        let b = Baseline::from_violations(&[
            viol("L1", "a.rs", 1),
            viol("L1", "a.rs", 9),
            viol("L5", "b.rs", 3),
        ]);
        let parsed = Baseline::parse(&b.render()).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.entries[&("L1".into(), "a.rs".into())], 2);
    }

    #[test]
    fn apply_splits_new_from_baselined() {
        let b = Baseline::from_violations(&[viol("L1", "a.rs", 1)]);
        let now = [
            viol("L1", "a.rs", 1),
            viol("L1", "a.rs", 2),
            viol("L3", "a.rs", 5),
        ];
        let (fresh, covered) = b.apply(&now);
        assert_eq!(covered, 1);
        assert_eq!(fresh.len(), 2);
        assert_eq!(fresh[0].line, 2);
        assert_eq!(fresh[1].rule, "L3");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("rule = \"L1\"").is_err());
        assert!(Baseline::parse("[[violation]]\nrule = L1").is_err());
        assert!(Baseline::parse("[[violation]]\nrule = \"L1\"").is_err());
        assert!(Baseline::parse("[[violation]]\nrule = \"L1\"\nfile = \"a\"\ncount = x").is_err());
    }

    #[test]
    fn empty_baseline_marks_everything_new() {
        let (fresh, covered) = Baseline::default().apply(&[viol("L2", "p.rs", 7)]);
        assert_eq!((fresh.len(), covered), (1, 0));
    }
}
