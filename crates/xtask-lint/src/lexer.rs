//! A minimal hand-rolled Rust lexer.
//!
//! `neat-lint` needs just enough lexical structure to match token
//! sequences like `. unwrap ( )` or `partial_cmp ( … ) . unwrap` without
//! false positives from comments and string literals. The lexer therefore
//! produces a flat token stream (identifiers, punctuation, literals,
//! lifetimes) with line/column positions, and collects comments
//! separately so `// lint:allow(...)` annotations can be parsed.
//!
//! It is *not* a full Rust lexer: tokens it does not care to distinguish
//! (e.g. the many numeric literal forms) are folded into [`TokKind`]
//! buckets. It does handle the constructs that would otherwise corrupt a
//! naive scan: nested block comments, string/char/byte/raw-string
//! literals, and the lifetime-vs-char-literal ambiguity.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `unwrap`, `HashMap`, …).
    Ident,
    /// Single punctuation character (`.`, `(`, `!`, …).
    Punct,
    /// String/char/numeric literal (text preserved for float detection).
    Literal,
    /// Lifetime (`'a`); kept distinct so `'a` is never a char literal.
    Lifetime,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// The token kind.
    pub kind: TokKind,
    /// Source text of the token.
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Token {
    /// `true` when the token is punctuation equal to `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// `true` when the token is an identifier equal to `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// `true` for numeric literals containing a fractional part or a
    /// float suffix (`1.5`, `2.0e3`, `1f64`).
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokKind::Literal {
            return false;
        }
        let t = &self.text;
        t.starts_with(|c: char| c.is_ascii_digit())
            && (t.contains('.') || t.ends_with("f32") || t.ends_with("f64"))
    }
}

/// A comment with the line it starts on (`//` and `/* */` alike).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including its delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream plus the comments encountered.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let mut cur = Cursor::new(src);
    let mut tokens = Vec::new();
    let mut comments = Vec::new();

    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    text.push(cur.bump().unwrap_or(b' ') as char);
                }
                comments.push(Comment { text, line });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                let mut text = String::new();
                let mut depth = 0usize;
                loop {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            text.push(cur.bump().unwrap_or(b' ') as char);
                            text.push(cur.bump().unwrap_or(b' ') as char);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            text.push(cur.bump().unwrap_or(b' ') as char);
                            text.push(cur.bump().unwrap_or(b' ') as char);
                            if depth == 0 {
                                break;
                            }
                        }
                        (Some(_), _) => {
                            let c = cur.bump().unwrap_or(b' ');
                            if c.is_ascii() {
                                text.push(c as char);
                            }
                        }
                        (None, _) => break, // unterminated; tolerate
                    }
                }
                comments.push(Comment { text, line });
            }
            b'"' => {
                let text = lex_string(&mut cur);
                tokens.push(Token {
                    kind: TokKind::Literal,
                    text,
                    line,
                    col,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_literal(&cur) => {
                let text = lex_raw_or_byte(&mut cur);
                tokens.push(Token {
                    kind: TokKind::Literal,
                    text,
                    line,
                    col,
                });
            }
            b'\'' => {
                // Lifetime `'a` (identifier after the quote, no closing
                // quote right after) vs char literal `'x'` / `'\n'`.
                let next = cur.peek_at(1);
                let after = cur.peek_at(2);
                let is_lifetime = matches!(next, Some(n) if is_ident_start(n) && n != b'\\')
                    && after != Some(b'\'');
                if is_lifetime {
                    let mut text = String::from("'");
                    cur.bump();
                    while let Some(c) = cur.peek() {
                        if is_ident_continue(c) {
                            text.push(cur.bump().unwrap_or(b' ') as char);
                        } else {
                            break;
                        }
                    }
                    tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text,
                        line,
                        col,
                    });
                } else {
                    let text = lex_char(&mut cur);
                    tokens.push(Token {
                        kind: TokKind::Literal,
                        text,
                        line,
                        col,
                    });
                }
            }
            _ if is_ident_start(b) => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if is_ident_continue(c) {
                        text.push(cur.bump().unwrap_or(b' ') as char);
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            _ if b.is_ascii_digit() => {
                let text = lex_number(&mut cur);
                tokens.push(Token {
                    kind: TokKind::Literal,
                    text,
                    line,
                    col,
                });
            }
            _ => {
                cur.bump();
                tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    (tokens, comments)
}

fn starts_raw_or_byte_literal(cur: &Cursor<'_>) -> bool {
    // r"...", r#"..."#, b"...", br"...", b'x'
    let b0 = cur.peek();
    let b1 = cur.peek_at(1);
    let b2 = cur.peek_at(2);
    match (b0, b1) {
        (Some(b'r'), Some(b'"' | b'#')) => true,
        (Some(b'b'), Some(b'"' | b'\'')) => true,
        (Some(b'b'), Some(b'r')) if matches!(b2, Some(b'"' | b'#')) => true,
        _ => false,
    }
}

fn lex_raw_or_byte(cur: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    // Consume the prefix letters.
    while matches!(cur.peek(), Some(b'r' | b'b')) {
        text.push(cur.bump().unwrap_or(b' ') as char);
    }
    if cur.peek() == Some(b'\'') {
        // Byte char literal b'x'.
        text.push_str(&lex_char(cur));
        return text;
    }
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        text.push(cur.bump().unwrap_or(b' ') as char);
    }
    if cur.peek() == Some(b'"') {
        text.push(cur.bump().unwrap_or(b' ') as char);
        if hashes == 0 && text.starts_with('b') && !text.contains('r') {
            // Plain byte string: escapes apply.
            text.push_str(&lex_string_body(cur));
            return text;
        }
        // Raw string: scan for `"` followed by `hashes` hashes.
        loop {
            match cur.bump() {
                None => break,
                Some(b'"') => {
                    text.push('"');
                    let mut seen = 0usize;
                    while seen < hashes && cur.peek() == Some(b'#') {
                        seen += 1;
                        text.push(cur.bump().unwrap_or(b' ') as char);
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(c) => {
                    if c.is_ascii() {
                        text.push(c as char);
                    }
                }
            }
        }
    }
    text
}

fn lex_string(cur: &mut Cursor<'_>) -> String {
    let mut text = String::from("\"");
    cur.bump(); // opening quote
    text.push_str(&lex_string_body(cur));
    text
}

/// Consumes a string body after the opening quote, including the closing
/// quote, honouring backslash escapes.
fn lex_string_body(cur: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    loop {
        match cur.bump() {
            None => break,
            Some(b'\\') => {
                text.push('\\');
                if let Some(e) = cur.bump() {
                    if e.is_ascii() {
                        text.push(e as char);
                    }
                }
            }
            Some(b'"') => {
                text.push('"');
                break;
            }
            Some(c) => {
                if c.is_ascii() {
                    text.push(c as char);
                }
            }
        }
    }
    text
}

fn lex_char(cur: &mut Cursor<'_>) -> String {
    let mut text = String::from("'");
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None => break,
            Some(b'\\') => {
                text.push('\\');
                if let Some(e) = cur.bump() {
                    if e.is_ascii() {
                        text.push(e as char);
                    }
                }
            }
            Some(b'\'') => {
                text.push('\'');
                break;
            }
            Some(c) => {
                if c.is_ascii() {
                    text.push(c as char);
                }
            }
        }
    }
    text
}

fn lex_number(cur: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    // Integer part (also covers 0x/0b/0o since we take alphanumerics).
    while let Some(c) = cur.peek() {
        if c.is_ascii_alphanumeric() || c == b'_' {
            text.push(cur.bump().unwrap_or(b' ') as char);
        } else {
            break;
        }
    }
    // Fraction — but not the `..` range operator.
    if cur.peek() == Some(b'.') && matches!(cur.peek_at(1), Some(d) if d.is_ascii_digit()) {
        text.push(cur.bump().unwrap_or(b' ') as char);
        while let Some(c) = cur.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                text.push(cur.bump().unwrap_or(b' ') as char);
            } else {
                break;
            }
        }
    } else if cur.peek() == Some(b'.')
        && cur.peek_at(1) != Some(b'.')
        && !matches!(cur.peek_at(1), Some(c) if is_ident_start(c))
    {
        // Trailing-dot float like `1.` (not `1..x` or `1.method()`).
        text.push(cur.bump().unwrap_or(b' ') as char);
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).0.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_punct() {
        assert_eq!(texts("a.unwrap()"), vec!["a", ".", "unwrap", "(", ")"]);
    }

    #[test]
    fn comments_are_collected_not_tokenized() {
        let (toks, comments) = lex("x // lint:allow(L1) reason=ok\ny");
        assert_eq!(toks.len(), 2);
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains("lint:allow"));
        assert_eq!(comments[0].line, 1);
    }

    #[test]
    fn nested_block_comments() {
        let (toks, comments) = lex("a /* x /* y */ z */ b");
        assert_eq!(toks.len(), 2);
        assert_eq!(comments.len(), 1);
    }

    #[test]
    fn strings_hide_their_content() {
        let (toks, _) = lex(r#"let s = "no.unwrap() here";"#);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn raw_strings() {
        let (toks, _) = lex(r##"let s = r#"a "quoted" .unwrap()"# ; done"##);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal && t.text.starts_with('\''))
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn float_literals_detected() {
        let (toks, _) = lex("let x = 1.5 + 2 + 3f64; let r = 0..4;");
        let floats: Vec<_> = toks.iter().filter(|t| t.is_float_literal()).collect();
        assert_eq!(floats.len(), 2, "{floats:?}");
        // The range endpoints are plain ints.
        assert!(toks.iter().any(|t| t.text == "0"));
        assert!(toks.iter().any(|t| t.text == "4"));
    }

    #[test]
    fn line_and_column_positions() {
        let (toks, _) = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
