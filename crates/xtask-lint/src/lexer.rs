//! A minimal hand-rolled Rust lexer.
//!
//! `neat-lint` needs just enough lexical structure to match token
//! sequences like `. unwrap ( )` or `partial_cmp ( … ) . unwrap` without
//! false positives from comments and string literals. The lexer therefore
//! produces a flat token stream (identifiers, punctuation, literals,
//! lifetimes) with line/column positions *and byte spans*, and collects
//! comments separately so `// lint:allow(...)` annotations can be parsed.
//!
//! It is *not* a full Rust lexer: tokens it does not care to distinguish
//! (e.g. the many numeric literal forms) are folded into [`TokKind`]
//! buckets. It does handle the constructs that would otherwise corrupt a
//! naive scan: nested block comments, string/char/byte/raw-string
//! literals, raw identifiers (`r#match`), and the
//! lifetime-vs-char-literal ambiguity.
//!
//! Every token and comment carries `[lo, hi)` byte offsets into the
//! source, and `text == src[lo..hi]` — the round-trip property the
//! structural layer (per-function bodies, guard regions) relies on and
//! the lexer proptest enforces. Between consecutive spans there is only
//! whitespace; a literal containing braces or quotes can therefore never
//! desync bracket matching.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `unwrap`, `HashMap`, …).
    Ident,
    /// Single punctuation character (`.`, `(`, `!`, …).
    Punct,
    /// String/char/numeric literal (text preserved for float detection).
    Literal,
    /// Lifetime (`'a`); kept distinct so `'a` is never a char literal.
    Lifetime,
}

/// One lexed token with its source position (1-based line and column)
/// and byte span (`src[lo..hi]`).
#[derive(Debug, Clone)]
pub struct Token {
    /// The token kind.
    pub kind: TokKind,
    /// Source text of the token (exactly `src[lo..hi]`).
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Byte offset of the token's first byte.
    pub lo: usize,
    /// Byte offset one past the token's last byte.
    pub hi: usize,
}

impl Token {
    /// `true` when the token is punctuation equal to `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// `true` when the token is an identifier equal to `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// `true` for numeric literals containing a fractional part or a
    /// float suffix (`1.5`, `2.0e3`, `1f64`).
    pub fn is_float_literal(&self) -> bool {
        if self.kind != TokKind::Literal {
            return false;
        }
        let t = &self.text;
        t.starts_with(|c: char| c.is_ascii_digit())
            && (t.contains('.') || t.ends_with("f32") || t.ends_with("f64"))
    }
}

/// A comment with the line it starts on (`//` and `/* */` alike).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including its delimiters (exactly `src[lo..hi]`).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Byte offset of the comment's first byte.
    pub lo: usize,
    /// Byte offset one past the comment's last byte.
    pub hi: usize,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if !is_utf8_continuation(b) {
            // Count characters, not bytes, so columns stay meaningful in
            // lines containing multi-byte text.
            self.col += 1;
        }
        Some(b)
    }
}

fn is_utf8_continuation(b: u8) -> bool {
    (b & 0xC0) == 0x80
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// `src[lo..hi]` as an owned string. All consumption loops end on ASCII
/// delimiters or whole multi-byte sequences, so the span is a valid char
/// boundary pair; the lossy fallback only guards against pathological
/// inputs the proptest may invent.
fn slice(src: &str, lo: usize, hi: usize) -> String {
    match src.get(lo..hi) {
        Some(s) => s.to_string(),
        None => String::from_utf8_lossy(&src.as_bytes()[lo..hi]).into_owned(),
    }
}

/// Lexes `src` into a token stream plus the comments encountered.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let mut cur = Cursor::new(src);
    let mut tokens = Vec::new();
    let mut comments = Vec::new();

    while let Some(b) = cur.peek() {
        let (line, col, lo) = (cur.line, cur.col, cur.pos);
        let push = |kind: TokKind, cur: &Cursor<'_>, tokens: &mut Vec<Token>| {
            tokens.push(Token {
                kind,
                text: slice(src, lo, cur.pos),
                line,
                col,
                lo,
                hi: cur.pos,
            });
        };
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                comments.push(Comment {
                    text: slice(src, lo, cur.pos),
                    line,
                    lo,
                    hi: cur.pos,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                let mut depth = 0usize;
                loop {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth = depth.saturating_sub(1);
                            cur.bump();
                            cur.bump();
                            if depth == 0 {
                                break;
                            }
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break, // unterminated; tolerate
                    }
                }
                comments.push(Comment {
                    text: slice(src, lo, cur.pos),
                    line,
                    lo,
                    hi: cur.pos,
                });
            }
            b'"' => {
                cur.bump(); // opening quote
                lex_string_body(&mut cur);
                push(TokKind::Literal, &cur, &mut tokens);
            }
            // Raw identifier `r#match`: the `#` is part of the name, not
            // a raw-string opener (`r#"` has a quote after the hash).
            b'r' if cur.peek_at(1) == Some(b'#')
                && matches!(cur.peek_at(2), Some(c) if is_ident_start(c)) =>
            {
                cur.bump(); // r
                cur.bump(); // #
                while matches!(cur.peek(), Some(c) if is_ident_continue(c)) {
                    cur.bump();
                }
                push(TokKind::Ident, &cur, &mut tokens);
            }
            b'r' | b'b' if starts_raw_or_byte_literal(&cur) => {
                lex_raw_or_byte(&mut cur);
                push(TokKind::Literal, &cur, &mut tokens);
            }
            b'\'' => {
                // Lifetime `'a` (identifier after the quote, no closing
                // quote right after) vs char literal `'x'` / `'\n'`.
                let next = cur.peek_at(1);
                let after = cur.peek_at(2);
                let is_lifetime = matches!(next, Some(n) if is_ident_start(n) && n != b'\\')
                    && after != Some(b'\'');
                if is_lifetime {
                    cur.bump();
                    while matches!(cur.peek(), Some(c) if is_ident_continue(c)) {
                        cur.bump();
                    }
                    push(TokKind::Lifetime, &cur, &mut tokens);
                } else {
                    lex_char(&mut cur);
                    push(TokKind::Literal, &cur, &mut tokens);
                }
            }
            _ if is_ident_start(b) => {
                while matches!(cur.peek(), Some(c) if is_ident_continue(c)) {
                    cur.bump();
                }
                push(TokKind::Ident, &cur, &mut tokens);
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut cur);
                push(TokKind::Literal, &cur, &mut tokens);
            }
            _ => {
                cur.bump();
                push(TokKind::Punct, &cur, &mut tokens);
            }
        }
    }
    (tokens, comments)
}

fn starts_raw_or_byte_literal(cur: &Cursor<'_>) -> bool {
    // r"...", r#"..."#, b"...", br"...", b'x'
    let b0 = cur.peek();
    let b1 = cur.peek_at(1);
    let b2 = cur.peek_at(2);
    match (b0, b1) {
        (Some(b'r'), Some(b'"' | b'#')) => true,
        (Some(b'b'), Some(b'"' | b'\'')) => true,
        (Some(b'b'), Some(b'r')) if matches!(b2, Some(b'"' | b'#')) => true,
        _ => false,
    }
}

fn lex_raw_or_byte(cur: &mut Cursor<'_>) {
    // Consume the prefix letters.
    let mut saw_r = false;
    while matches!(cur.peek(), Some(b'r' | b'b')) {
        saw_r |= cur.peek() == Some(b'r');
        cur.bump();
    }
    if cur.peek() == Some(b'\'') {
        // Byte char literal b'x' (possibly b'{' or b'\'').
        lex_char(cur);
        return;
    }
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek() == Some(b'"') {
        cur.bump();
        if hashes == 0 && !saw_r {
            // Plain byte string: escapes apply.
            lex_string_body(cur);
            return;
        }
        // Raw string: scan for `"` followed by `hashes` hashes.
        loop {
            match cur.bump() {
                None => break,
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && cur.peek() == Some(b'#') {
                        seen += 1;
                        cur.bump();
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
    }
}

/// Consumes a string body after the opening quote, including the closing
/// quote, honouring backslash escapes.
fn lex_string_body(cur: &mut Cursor<'_>) {
    loop {
        match cur.bump() {
            None => break,
            Some(b'\\') => {
                cur.bump();
            }
            Some(b'"') => break,
            Some(_) => {}
        }
    }
}

fn lex_char(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    loop {
        match cur.bump() {
            None => break,
            Some(b'\\') => {
                cur.bump();
            }
            Some(b'\'') => break,
            Some(_) => {}
        }
    }
}

fn lex_number(cur: &mut Cursor<'_>) {
    // Integer part (also covers 0x/0b/0o since we take alphanumerics).
    while matches!(cur.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
        cur.bump();
    }
    // Fraction — but not the `..` range operator.
    if cur.peek() == Some(b'.') && matches!(cur.peek_at(1), Some(d) if d.is_ascii_digit()) {
        cur.bump();
        while matches!(cur.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            cur.bump();
        }
    } else if cur.peek() == Some(b'.')
        && cur.peek_at(1) != Some(b'.')
        && !matches!(cur.peek_at(1), Some(c) if is_ident_start(c))
    {
        // Trailing-dot float like `1.` (not `1..x` or `1.method()`).
        cur.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).0.into_iter().map(|t| t.text).collect()
    }

    /// Spans are sorted, disjoint, reproduce the text, and the gaps
    /// between them hold only whitespace — the invariant the proptest
    /// in `tests/lexer_roundtrip.rs` fuzzes at scale.
    fn assert_round_trip(src: &str) {
        let (toks, comments) = lex(src);
        let mut spans: Vec<(usize, usize, &str)> = toks
            .iter()
            .map(|t| (t.lo, t.hi, t.text.as_str()))
            .chain(comments.iter().map(|c| (c.lo, c.hi, c.text.as_str())))
            .collect();
        spans.sort_by_key(|s| s.0);
        let mut prev = 0usize;
        for (lo, hi, text) in spans {
            assert!(lo >= prev, "overlapping spans in {src:?}");
            assert!(
                src[prev..lo].chars().all(char::is_whitespace),
                "non-whitespace gap {:?} in {src:?}",
                &src[prev..lo]
            );
            assert_eq!(&src[lo..hi], text, "span/text mismatch in {src:?}");
            prev = hi;
        }
        assert!(
            src[prev..].chars().all(char::is_whitespace),
            "trailing non-whitespace {:?} in {src:?}",
            &src[prev..]
        );
    }

    #[test]
    fn idents_and_punct() {
        assert_eq!(texts("a.unwrap()"), vec!["a", ".", "unwrap", "(", ")"]);
    }

    #[test]
    fn comments_are_collected_not_tokenized() {
        let (toks, comments) = lex("x // lint:allow(L1) reason=ok\ny");
        assert_eq!(toks.len(), 2);
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains("lint:allow"));
        assert_eq!(comments[0].line, 1);
    }

    #[test]
    fn nested_block_comments() {
        let (toks, comments) = lex("a /* x /* y */ z */ b");
        assert_eq!(toks.len(), 2);
        assert_eq!(comments.len(), 1);
        assert_round_trip("a /* x /* y */ z */ b");
    }

    #[test]
    fn strings_hide_their_content() {
        let (toks, _) = lex(r#"let s = "no.unwrap() here";"#);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn raw_strings() {
        let src = r##"let s = r#"a "quoted" .unwrap()"# ; done"##;
        let (toks, _) = lex(src);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(toks.iter().any(|t| t.is_ident("done")));
        assert_round_trip(src);
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let (toks, _) = lex("let r#match = r#fn + 1;");
        assert!(toks.iter().any(|t| t.is_ident("r#match")));
        assert!(toks.iter().any(|t| t.is_ident("r#fn")));
        // No stray Literal token from a mis-lexed raw-string prefix.
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text == "r#"));
        assert_round_trip("let r#match = r#fn + 1;");
    }

    #[test]
    fn brace_bearing_literals_do_not_desync_brackets() {
        // Braces inside char/byte/raw-string literals must not count as
        // block delimiters: the `{`/`}` Punct tokens must balance.
        let src = "fn f() { let a = '{'; let b = b'}'; let c = r#\"{ \"x\" }\"#; }";
        let (toks, _) = lex(src);
        let opens = toks.iter().filter(|t| t.is_punct('{')).count();
        let closes = toks.iter().filter(|t| t.is_punct('}')).count();
        assert_eq!((opens, closes), (1, 1), "{toks:?}");
        assert_round_trip(src);
    }

    #[test]
    fn non_ascii_text_survives() {
        let src = "let größe = \"déjà\"; // ünïcode";
        let (toks, comments) = lex(src);
        assert!(toks.iter().any(|t| t.is_ident("größe")));
        assert!(comments[0].text.contains("ünïcode"));
        assert_round_trip(src);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let (toks, _) = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal && t.text.starts_with('\''))
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn float_literals_detected() {
        let (toks, _) = lex("let x = 1.5 + 2 + 3f64; let r = 0..4;");
        let floats: Vec<_> = toks.iter().filter(|t| t.is_float_literal()).collect();
        assert_eq!(floats.len(), 2, "{floats:?}");
        // The range endpoints are plain ints.
        assert!(toks.iter().any(|t| t.text == "0"));
        assert!(toks.iter().any(|t| t.text == "4"));
    }

    #[test]
    fn line_and_column_positions() {
        let (toks, _) = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!((toks[0].lo, toks[0].hi), (0, 2));
        assert_eq!((toks[1].lo, toks[1].hi), (5, 7));
    }
}
