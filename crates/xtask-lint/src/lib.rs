//! `neat-lint`: workspace-aware static analysis for the NEAT reproduction.
//!
//! The NEAT pipeline's headline property is determinism — Phase 3 is a
//! *deterministic* DBSCAN adaptation over flow clusters — and the repo's
//! robustness story (PR 1) hinges on library code not panicking. Both
//! invariants are invisible to `rustc` and only partially visible to
//! clippy, so this crate mechanizes them as five token-level rules:
//!
//! * [`rules`] — the `L1`–`L5` detectors and the `lint:allow` annotation
//!   grammar,
//! * [`lexer`] — a dependency-free Rust lexer feeding them,
//! * [`baseline`] — count-based debt tracking (`lint-baseline.toml`),
//! * [`runner`] — workspace walking and report/JSON assembly.
//!
//! Run as `cargo xtask lint` (see `.cargo/config.toml`) or
//! `cargo run -p xtask-lint`.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod runner;

pub use baseline::Baseline;
pub use rules::{analyze_source, FileAnalysis, Violation, RULES};
pub use runner::{collect_rs_files, rel_display, run, LintReport};
