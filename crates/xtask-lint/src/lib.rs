//! `neat-lint`: workspace-aware static analysis for the NEAT reproduction.
//!
//! The NEAT pipeline's headline property is determinism — Phase 3 is a
//! *deterministic* DBSCAN adaptation over flow clusters — and the repo's
//! robustness story (PR 1) hinges on library code not panicking. Since
//! PR 5 the guarantees also include bit-identical parallel output and
//! exactly-once crash recovery, which rest on lock/atomic/unwind
//! conventions `rustc` cannot check. This crate mechanizes all of them:
//!
//! * [`rules`] — the `L1`–`L5` detectors, the `lint:allow` annotation
//!   grammar, and the per-file analysis entry points,
//! * [`concurrency`] — the `L6`–`L9` concurrency/determinism rules,
//! * [`structure`] — the lightweight structural layer (function bodies,
//!   guard regions) those rules need,
//! * [`locks`] — the lock-order manifest (`lint-locks.toml`),
//! * [`lexer`] — a dependency-free, span-accurate Rust lexer,
//! * [`baseline`] — count-based debt tracking (`lint-baseline.toml`),
//! * [`runner`] — workspace walking, manifest coverage, report/JSON
//!   assembly.
//!
//! Run as `cargo xtask lint` (see `.cargo/config.toml`) or
//! `cargo run -p xtask-lint`.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod baseline;
pub mod concurrency;
pub mod lexer;
pub mod locks;
pub mod rules;
pub mod runner;
pub mod structure;

pub use baseline::Baseline;
pub use locks::{LockEntry, LockManifest};
pub use rules::{analyze_source, analyze_source_with, FileAnalysis, Violation, RULES};
pub use runner::{collect_rs_files, rel_display, run, run_with_manifest, LintReport};
