//! The `neat-lint` rule set.
//!
//! Nine repo-specific rules, each mechanizing an invariant that the NEAT
//! reproduction needs but `rustc`/`clippy` cannot express:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `L1` | no `unwrap()`/`expect()`/`panic!`/`todo!`/`unimplemented!` in library crates |
//! | `L2` | no hash-order iteration flowing into ordered output in the NEAT phases |
//! | `L3` | no NaN-unsafe comparisons (`partial_cmp(..).unwrap()`, float `==` in comparators) |
//! | `L4` | no lossy `as` casts of ID-carrying integers |
//! | `L5` | no I/O, wall-clock or thread-count dependence in algorithm crates |
//! | `L6` | lock discipline against the `lint-locks.toml` rank manifest |
//! | `L7` | no bare `Ordering::Relaxed` outside designated counter modules |
//! | `L8` | every `catch_unwind` site names its invariant-restoration path |
//! | `L9` | parallel-fold closures stay pure of shared mutation |
//!
//! L1–L5 are token-pattern rules defined in this module; L6–L9 live in
//! [`crate::concurrency`] and use the structural layer
//! ([`crate::structure`]) on top of the same token stream.
//!
//! A violating line can be waived with an annotation comment:
//!
//! ```text
//! // lint:allow(L1) reason=pool slots are Some by construction
//! ```
//!
//! The annotation covers its own line and the next line; the reason must
//! be non-empty. A malformed annotation is itself reported (rule `L0`).

use crate::concurrency::{self, ConcurrencySummary};
use crate::lexer::{lex, Comment, TokKind, Token};
use crate::locks::LockManifest;
use crate::structure::{matching_bracket, matching_paren};

/// A single diagnostic produced by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (`"L1"` … `"L5"`, or `"L0"` for bad annotations).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub help: String,
}

impl Violation {
    /// Rustc-style rendering: `file:line:col: error[L1]: message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: error[{}]: {}\n    help: {}",
            self.file, self.line, self.col, self.rule, self.message, self.help
        )
    }
}

/// All rule identifiers, in report order.
pub const RULES: [&str; 10] = ["L0", "L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9"];

/// Library crates subject to `L1` (panic-freedom). Binaries under
/// `src/bin/` are CLI surface and exempt.
const LIBRARY_CRATES: [&str; 12] = [
    "rnet",
    "traj",
    "mapmatch",
    "mobisim",
    "neat",
    "traclus",
    "viz",
    "bench",
    "durability",
    "runctl",
    "exec",
    "neatsvc",
];

/// Algorithm crates subject to `L5` (determinism hygiene).
const ALGORITHM_CRATES: [&str; 8] = [
    "neat", "traclus", "rnet", "traj", "mapmatch", "runctl", "exec", "neatsvc",
];

/// The one sanctioned wall-clock site: the [`Clock`] injection boundary.
/// `Instant`/`SystemTime` are allowed here and nowhere else in the
/// algorithm crates — everything downstream sees time only through the
/// injected trait object.
const CLOCK_INJECTION_SITES: [&str; 1] = ["crates/runctl/src/clock.rs"];

/// `neat` modules subject to `L2` (hash-order iteration).
const PHASE_MODULES: [&str; 5] = [
    "crates/neat/src/phase1.rs",
    "crates/neat/src/phase2.rs",
    "crates/neat/src/phase3.rs",
    "crates/neat/src/incremental.rs",
    "crates/neat/src/pipeline.rs",
];

/// Identifier names treated as ID-carrying for `L4`'s cast heuristic.
const ID_LIKE_NAMES: [&str; 8] = ["id", "sid", "nid", "tid", "idx", "index", "node", "seg"];

/// Narrow integer targets: casting an ID-carrying value to one of these
/// can silently truncate.
const NARROW_INTS: [&str; 3] = ["u8", "u16", "u32"];

fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

fn in_src_bin(path: &str) -> bool {
    path.contains("/src/bin/") || path.starts_with("src/bin/")
}

/// `true` when `path` is library code subject to `L1`.
pub fn is_library_code(path: &str) -> bool {
    !in_src_bin(path) && crate_of(path).is_some_and(|c| LIBRARY_CRATES.contains(&c))
}

/// `true` when `path` is algorithm code subject to `L5`.
pub fn is_algorithm_code(path: &str) -> bool {
    crate_of(path).is_some_and(|c| ALGORITHM_CRATES.contains(&c))
}

/// `true` when `path` is one of the NEAT phase modules subject to `L2`.
pub fn is_phase_module(path: &str) -> bool {
    PHASE_MODULES.contains(&path)
}

/// `true` when `path` is the clock-injection boundary where `L5` permits
/// wall-clock types.
pub fn is_clock_injection_site(path: &str) -> bool {
    CLOCK_INJECTION_SITES.contains(&path)
}

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Annotations {
    /// (line, rules allowed on that line and the next).
    allows: Vec<(u32, Vec<String>)>,
    /// Malformed annotations: (line, col, problem).
    malformed: Vec<(u32, String)>,
}

fn parse_annotations(comments: &[Comment]) -> Annotations {
    let mut out = Annotations::default();
    for c in comments {
        // Anchored at the start of the comment (after `//`/`//!`/`/*`
        // markers) so prose *mentions* of lint:allow are not parsed.
        let trimmed = c
            .text
            .trim_start_matches(|ch: char| matches!(ch, '/' | '!' | '*') || ch.is_whitespace());
        let Some(rest) = trimmed.strip_prefix("lint:allow") else {
            continue;
        };
        let Some(open) = rest.find('(') else {
            out.malformed
                .push((c.line, "missing `(` after lint:allow".into()));
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.malformed
                .push((c.line, "missing `)` in lint:allow".into()));
            continue;
        };
        if close < open {
            out.malformed
                .push((c.line, "malformed lint:allow rule list".into()));
            continue;
        }
        let rules: Vec<String> = rest[open + 1..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            out.malformed
                .push((c.line, "lint:allow names no rules".into()));
            continue;
        }
        if let Some(bad) = rules.iter().find(|r| !RULES.contains(&r.as_str())) {
            out.malformed
                .push((c.line, format!("unknown rule `{bad}` in lint:allow")));
            continue;
        }
        let after = &rest[close + 1..];
        let reason = after
            .trim_start()
            .strip_prefix("reason=")
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            out.malformed.push((
                c.line,
                "lint:allow requires a non-empty `reason=<why>`".into(),
            ));
            continue;
        }
        out.allows.push((c.line, rules));
    }
    out
}

impl Annotations {
    /// `true` when `rule` is waived on `line` (annotation on the same
    /// line or the line directly above).
    fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|(aline, rules)| {
            (line == *aline || line == *aline + 1) && rules.iter().any(|r| r == rule)
        })
    }
}

// ---------------------------------------------------------------------------
// #[cfg(test)] stripping
// ---------------------------------------------------------------------------

/// Removes tokens belonging to `#[cfg(test)]` items (the attribute, any
/// stacked attributes after it, and the annotated item through its `;` or
/// balanced `{ … }` body). Test-only code may panic freely.
fn strip_cfg_test(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#')
            && i + 1 < tokens.len()
            && tokens[i + 1].is_punct('[')
            && attr_is_cfg_test(tokens, i + 1)
        {
            i = skip_attributed_item(tokens, i);
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

/// Checks whether the attribute whose `[` is at `open` is `cfg(…test…)`.
fn attr_is_cfg_test(tokens: &[Token], open: usize) -> bool {
    let Some(close) = matching_bracket(tokens, open, '[', ']') else {
        return false;
    };
    let inner = &tokens[open + 1..close];
    inner.first().is_some_and(|t| t.is_ident("cfg")) && inner.iter().any(|t| t.is_ident("test"))
}

/// Skips an attribute at `hash` (its `#`), any further attributes, and
/// the item they annotate. Returns the index just past the item.
fn skip_attributed_item(tokens: &[Token], hash: usize) -> usize {
    let mut i = hash;
    // Skip stacked attributes.
    while i + 1 < tokens.len() && tokens[i].is_punct('#') && tokens[i + 1].is_punct('[') {
        match matching_bracket(tokens, i + 1, '[', ']') {
            Some(close) => i = close + 1,
            None => return tokens.len(),
        }
    }
    // Skip the item: ends at `;` with all brackets balanced, or at the
    // `}` closing the first top-level `{`.
    let mut depth = 0i64;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokKind::Punct {
            match t.text.as_bytes().first() {
                Some(b'(' | b'[' | b'{') => depth += 1,
                Some(b')' | b']' | b'}') => {
                    depth -= 1;
                    if depth == 0 && t.is_punct('}') {
                        return i + 1;
                    }
                }
                Some(b';') if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    tokens.len()
}

// ---------------------------------------------------------------------------
// Analysis entry point
// ---------------------------------------------------------------------------

/// Result of analyzing one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Violations not waived by annotations.
    pub violations: Vec<Violation>,
    /// Number of violations waived by `lint:allow` annotations.
    pub waived: usize,
    /// Lock/atomic site index for the runner's workspace-level manifest
    /// coverage checks (empty outside library crates). `waived` is set
    /// on declarations covered by a `lint:allow(L6)` annotation.
    pub concurrency: ConcurrencySummary,
}

/// Analyzes `src` as if it lived at workspace-relative `path`, with no
/// lock manifest (L6's manifest-dependent checks are skipped; its
/// file-local checks — raw `.lock()`, nesting, guard-across-I/O — still
/// run).
pub fn analyze_source(path: &str, src: &str) -> FileAnalysis {
    analyze_source_with(path, src, &LockManifest::default())
}

/// Analyzes `src` as if it lived at workspace-relative `path`.
///
/// `path` determines which rules apply (library crate → `L1`/`L6`–`L9`,
/// algorithm crate → `L5`, phase module → `L2`; `L3`/`L4` apply
/// everywhere).
pub fn analyze_source_with(path: &str, src: &str, manifest: &LockManifest) -> FileAnalysis {
    let (raw_tokens, comments) = lex(src);
    let annotations = parse_annotations(&comments);
    let tokens = strip_cfg_test(&raw_tokens);

    let mut found: Vec<Violation> = Vec::new();
    for (line, problem) in &annotations.malformed {
        found.push(Violation {
            rule: "L0",
            file: path.to_string(),
            line: *line,
            col: 1,
            message: problem.clone(),
            help: "write `// lint:allow(<RULE>[,<RULE>]) reason=<non-empty why>`".into(),
        });
    }
    let mut summary = ConcurrencySummary::default();
    if is_library_code(path) {
        rule_l1(path, &tokens, &mut found);
        let krate = crate_of(path).unwrap_or("");
        summary = concurrency::rule_l6(path, krate, &tokens, manifest, &mut found);
        concurrency::rule_l7(path, &tokens, &mut found);
        concurrency::rule_l8(path, &tokens, &mut found);
        concurrency::rule_l9(path, &tokens, &mut found);
    }
    if is_phase_module(path) {
        rule_l2(path, &tokens, &mut found);
    }
    rule_l3(path, &tokens, &mut found);
    rule_l4(path, &tokens, &mut found);
    if is_algorithm_code(path) {
        rule_l5(path, &tokens, &mut found);
    }

    let mut out = FileAnalysis::default();
    for d in &mut summary.declared_locks {
        d.waived = annotations.is_allowed("L6", d.line);
    }
    out.concurrency = summary;
    for v in found {
        // L0 cannot be waived: a broken annotation must be fixed.
        if v.rule != "L0" && annotations.is_allowed(v.rule, v.line) {
            out.waived += 1;
        } else {
            out.violations.push(v);
        }
    }
    out.violations
        .sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

// ---------------------------------------------------------------------------
// L1 — panic-freedom in library crates
// ---------------------------------------------------------------------------

fn rule_l1(path: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        // `.unwrap()` / `.expect(` — method position only, so local
        // functions named `unwrap` or `Option::unwrap_or` never match.
        if i >= 1
            && tokens[i - 1].is_punct('.')
            && (t.is_ident("unwrap") || t.is_ident("expect"))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            out.push(Violation {
                rule: "L1",
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: format!("`.{}()` in library code can panic", t.text),
                help: "return a Result, restructure to make the case impossible, or add \
                       `// lint:allow(L1) reason=<invariant>`"
                    .into(),
            });
        }
        // `panic!` / `todo!` / `unimplemented!`.
        if (t.is_ident("panic") || t.is_ident("todo") || t.is_ident("unimplemented"))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(Violation {
                rule: "L1",
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: format!("`{}!` in library code aborts the caller", t.text),
                help: "return an error instead, or add `// lint:allow(L1) reason=<invariant>`"
                    .into(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// L2 — hash-order iteration in the NEAT phases
// ---------------------------------------------------------------------------

/// Iteration adapters whose order reflects the hash function.
const HASH_ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

/// How many following tokens to scan for an order-restoring `sort*` call
/// before flagging a hash iteration.
const SORT_LOOKAHEAD: usize = 120;

fn rule_l2(path: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    let hash_names = collect_hash_typed_names(tokens);
    let flag = |out: &mut Vec<Violation>, t: &Token, what: &str| {
        out.push(Violation {
            rule: "L2",
            file: path.to_string(),
            line: t.line,
            col: t.col,
            message: format!("{what} iterates in hash order inside a NEAT phase"),
            help: "use BTreeMap/BTreeSet, or sort the results (`sort_unstable_by_key`) \
                   before they reach ordered output"
                .into(),
        });
    };

    for i in 0..tokens.len() {
        let t = &tokens[i];
        // `name.iter()` / `name.keys()` / … on a hash-typed binding.
        if t.kind == TokKind::Ident
            && hash_names.contains(&t.text)
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && tokens
                .get(i + 2)
                .is_some_and(|m| HASH_ITER_METHODS.iter().any(|h| m.is_ident(h)))
            && tokens.get(i + 3).is_some_and(|n| n.is_punct('('))
            && !sorted_soon_after(tokens, i)
        {
            let method = &tokens[i + 2].text;
            flag(out, &tokens[i + 2], &format!("`{}.{method}()`", t.text));
        }
        // `for x in <expr mentioning a hash binding> {`.
        if t.is_ident("for") {
            if let Some(in_idx) = (i..tokens.len().min(i + 24)).find(|&j| tokens[j].is_ident("in"))
            {
                let body_open = (in_idx..tokens.len()).find(|&j| tokens[j].is_punct('{'));
                if let Some(open) = body_open {
                    let header = &tokens[in_idx + 1..open];
                    let mentions_hash = header.iter().any(|h| {
                        h.kind == TokKind::Ident
                            && (hash_names.contains(&h.text)
                                || h.is_ident("HashMap")
                                || h.is_ident("HashSet"))
                    });
                    // Direct `for … in map` has no chaining; an explicit
                    // `.sorted()`-style rescue is impossible, so no
                    // lookahead suppression here — but a sort-producing
                    // adapter chain in the header suppresses.
                    let header_sorts = header
                        .iter()
                        .any(|h| h.kind == TokKind::Ident && h.text.starts_with("sort"));
                    if mentions_hash && !header_sorts {
                        flag(out, t, "`for` loop");
                    }
                }
            }
        }
    }
}

/// Collects identifiers bound or declared with a `HashMap`/`HashSet`
/// type: `let x: HashMap<…> = …`, struct fields, fn params, and
/// `let x = HashMap::new()`.
fn collect_hash_typed_names(tokens: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].kind != TokKind::Ident {
            continue;
        }
        // `name : <type tokens containing HashMap|HashSet>`. The scan
        // stops at the end of *this* binding's type — `=`, `;`, `{`, or
        // a `,`/`)` outside generic angle brackets — so a later fn
        // parameter's hash type is not attributed to this name.
        if tokens.get(i + 1).is_some_and(|c| c.is_punct(':'))
            && !tokens.get(i + 2).is_some_and(|c| c.is_punct(':'))
        {
            let mut angle_depth = 0i64;
            for t in tokens.iter().skip(i + 2).take(24) {
                if t.is_punct('<') {
                    angle_depth += 1;
                } else if t.is_punct('>') {
                    angle_depth -= 1;
                }
                if t.is_punct('=')
                    || t.is_punct(';')
                    || t.is_punct('{')
                    || (angle_depth <= 0 && (t.is_punct(',') || t.is_punct(')')))
                {
                    break;
                }
                if t.is_ident("HashMap") || t.is_ident("HashSet") {
                    names.push(tokens[i].text.clone());
                    break;
                }
            }
        }
        // `name = HashMap::new()` / `name = HashSet::new()`
        if tokens.get(i + 1).is_some_and(|c| c.is_punct('='))
            && tokens
                .get(i + 2)
                .is_some_and(|t| t.is_ident("HashMap") || t.is_ident("HashSet"))
        {
            names.push(tokens[i].text.clone());
        }
    }
    names.sort();
    names.dedup();
    names
}

/// `true` when a `sort*` identifier appears within the lookahead window —
/// the iteration's order is re-established before use.
fn sorted_soon_after(tokens: &[Token], from: usize) -> bool {
    tokens
        .iter()
        .skip(from)
        .take(SORT_LOOKAHEAD)
        .any(|t| t.kind == TokKind::Ident && t.text.starts_with("sort"))
}

// ---------------------------------------------------------------------------
// L3 — NaN-unsafe comparisons
// ---------------------------------------------------------------------------

/// Sort/ordering adaptors whose comparator closures must be total.
const COMPARATOR_HOSTS: [&str; 6] = [
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
    "partition_point",
];

fn rule_l3(path: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        // `partial_cmp(…).unwrap()` / `.expect(…)`.
        if t.is_ident("partial_cmp") && tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            if let Some(close) = matching_paren(tokens, i + 1) {
                if tokens.get(close + 1).is_some_and(|n| n.is_punct('.'))
                    && tokens
                        .get(close + 2)
                        .is_some_and(|m| m.is_ident("unwrap") || m.is_ident("expect"))
                {
                    out.push(Violation {
                        rule: "L3",
                        file: path.to_string(),
                        line: t.line,
                        col: t.col,
                        message: "`partial_cmp(..).unwrap()` panics on NaN".into(),
                        help: "use `f64::total_cmp` (totally ordered, NaN-safe)".into(),
                    });
                }
            }
        }
        // Float `==` / `!=` inside a comparator closure.
        if t.kind == TokKind::Ident
            && COMPARATOR_HOSTS.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            if let Some(close) = matching_paren(tokens, i + 1) {
                let body = &tokens[i + 2..close];
                for (k, b) in body.iter().enumerate() {
                    let is_eq = b.is_punct('=')
                        && body.get(k + 1).is_some_and(|n| n.is_punct('='))
                        && !body.get(k.wrapping_sub(1)).is_some_and(|p| {
                            p.is_punct('=') || p.is_punct('!') || p.is_punct('<') || p.is_punct('>')
                        });
                    if is_eq {
                        let float_near = body
                            .get(k.wrapping_sub(1))
                            .is_some_and(Token::is_float_literal)
                            || body.get(k + 2).is_some_and(Token::is_float_literal);
                        if float_near {
                            out.push(Violation {
                                rule: "L3",
                                file: path.to_string(),
                                line: b.line,
                                col: b.col,
                                message: "float `==` inside a sort comparator is not a total order"
                                    .into(),
                                help: "compare with `total_cmp` or an integer key".into(),
                            });
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// L4 — lossy ID casts
// ---------------------------------------------------------------------------

fn rule_l4(path: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if !t.is_ident("as") {
            continue;
        }
        let Some(target) = tokens.get(i + 1) else {
            continue;
        };
        if !NARROW_INTS.iter().any(|n| target.is_ident(n)) {
            continue;
        }
        // `<expr>.index() as uN` — an ID's dense index is being narrowed.
        let id_index_cast = i >= 4
            && tokens[i - 1].is_punct(')')
            && tokens[i - 2].is_punct('(')
            && tokens[i - 3].is_ident("index")
            && tokens[i - 4].is_punct('.');
        // `<id-like ident> as uN`.
        let id_name_cast = i >= 1
            && tokens[i - 1].kind == TokKind::Ident
            && ID_LIKE_NAMES.contains(&tokens[i - 1].text.as_str());
        if id_index_cast || id_name_cast {
            out.push(Violation {
                rule: "L4",
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "lossy `as {}` cast of an ID-carrying integer can silently truncate",
                    target.text
                ),
                help: "use `try_into()` with an explicit error, keep the wide type, or \
                       annotate the enforced bound with `// lint:allow(L4) reason=<bound>`"
                    .into(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// L5 — determinism hygiene in algorithm crates
// ---------------------------------------------------------------------------

fn rule_l5(path: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        let mac_print = (t.is_ident("println")
            || t.is_ident("eprintln")
            || t.is_ident("print")
            || t.is_ident("eprint"))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if mac_print {
            out.push(Violation {
                rule: "L5",
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: format!("`{}!` writes to stdio from an algorithm crate", t.text),
                help: "route output through the CLI layer or the bench Report/log facade".into(),
            });
            continue;
        }
        if (t.is_ident("Instant") || t.is_ident("SystemTime")) && !is_clock_injection_site(path) {
            out.push(Violation {
                rule: "L5",
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` makes algorithm output depend on wall-clock time",
                    t.text
                ),
                help: "measure time in the caller/bench layer, or annotate instrumentation \
                       that never feeds clustering decisions"
                    .into(),
            });
        }
        if t.is_ident("available_parallelism") || t.is_ident("num_cpus") {
            out.push(Violation {
                rule: "L5",
                file: path.to_string(),
                line: t.line,
                col: t.col,
                message: "thread-count-dependent logic breaks run-to-run reproducibility".into(),
                help: "take the thread count as explicit configuration".into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/neat/src/model.rs";
    const PHASE: &str = "crates/neat/src/phase2.rs";

    fn rules_of(path: &str, src: &str) -> Vec<&'static str> {
        analyze_source(path, src)
            .violations
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn l1_flags_unwrap_in_library() {
        assert_eq!(rules_of(LIB, "fn f() { x.unwrap(); }"), vec!["L1"]);
        assert_eq!(rules_of(LIB, "fn f() { panic!(\"no\"); }"), vec!["L1"]);
    }

    #[test]
    fn l1_skips_bins_and_foreign_paths() {
        assert!(rules_of("crates/bench/src/bin/fig3.rs", "fn f() { x.unwrap(); }").is_empty());
        assert!(rules_of("src/cli.rs", "fn f() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn l1_skips_cfg_test_modules() {
        let src = "#[cfg(test)]\nmod tests { fn f() { x.unwrap(); panic!(); } }\n";
        assert!(rules_of(LIB, src).is_empty());
    }

    #[test]
    fn l1_annotation_waives_with_reason() {
        let src = "fn f() { x.unwrap(); // lint:allow(L1) reason=index checked above\n }";
        let a = analyze_source(LIB, src);
        assert!(a.violations.is_empty());
        assert_eq!(a.waived, 1);
    }

    #[test]
    fn empty_reason_is_malformed_and_does_not_waive() {
        let src = "fn f() { x.unwrap(); // lint:allow(L1) reason=\n }";
        let rules = rules_of(LIB, src);
        assert!(rules.contains(&"L0"));
        assert!(rules.contains(&"L1"));
    }

    #[test]
    fn l2_flags_hash_iteration_in_phase_modules() {
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); for (k, v) in m.iter() { out.push(k); } }";
        let rules = rules_of(PHASE, src);
        assert!(rules.contains(&"L2"), "{rules:?}");
        // Same code outside a phase module is not L2's business.
        assert!(!rules_of(LIB, src).contains(&"L2"));
    }

    #[test]
    fn l2_fn_param_type_scan_stops_at_comma() {
        // `pool` is a Vec; the HashMap belongs to the *next* parameter.
        let src = "fn f(pool: &mut [Option<u32>], by_segment: &HashMap<u32, usize>) { \
                   for x in pool.iter() { use_it(x); } }";
        assert!(
            !rules_of(PHASE, src).contains(&"L2"),
            "Vec iteration is order-stable"
        );
    }

    #[test]
    fn l2_sort_after_iteration_suppresses() {
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); \
                   let mut v: Vec<u32> = m.keys().copied().collect(); v.sort_unstable(); }";
        assert!(!rules_of(PHASE, src).contains(&"L2"));
    }

    #[test]
    fn l3_flags_partial_cmp_unwrap_everywhere() {
        let src = "fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        assert_eq!(rules_of("src/cli.rs", src), vec!["L3"]);
    }

    #[test]
    fn l3_total_cmp_is_fine() {
        let src = "fn f() { v.sort_by(|a, b| a.total_cmp(b)); }";
        assert!(rules_of(LIB, src).is_empty());
    }

    #[test]
    fn l3_float_eq_in_comparator() {
        let src = "fn f() { v.sort_by(|a, b| if a.0 == 0.5 { X } else { Y }); }";
        assert_eq!(rules_of(LIB, src), vec!["L3"]);
        // Plain integer equality in a comparator is fine.
        let ok = "fn f() { v.sort_by(|a, b| if a.0 == 5 { X } else { Y }); }";
        assert!(rules_of(LIB, ok).is_empty());
    }

    #[test]
    fn l4_flags_index_narrowing() {
        assert_eq!(
            rules_of(LIB, "fn f() { let x = sid.index() as u32; }"),
            vec!["L4"]
        );
        assert_eq!(
            rules_of(LIB, "fn f(idx: usize) { let x = idx as u32; }"),
            vec!["L4"]
        );
        // Widening to usize is fine.
        assert!(rules_of(LIB, "fn f() { let x = node_u32 as usize; }").is_empty());
    }

    #[test]
    fn l5_flags_stdio_and_clocks_in_algorithm_crates() {
        assert_eq!(rules_of(LIB, "fn f() { println!(\"x\"); }"), vec!["L5"]);
        assert_eq!(
            rules_of(LIB, "fn f() { let t = Instant::now(); }"),
            vec!["L5"]
        );
        // mobisim is not an algorithm crate.
        assert!(rules_of(
            "crates/mobisim/src/lib.rs",
            "fn f() { let t = Instant::now(); }"
        )
        .is_empty());
    }

    #[test]
    fn l5_applies_to_runctl_except_the_clock_injection_site() {
        // runctl is an algorithm crate: wall clocks are banned...
        assert_eq!(
            rules_of(
                "crates/runctl/src/control.rs",
                "fn f() { let t = Instant::now(); }"
            ),
            vec!["L5"]
        );
        // ...except in the one module that implements the Clock trait.
        assert!(rules_of(
            "crates/runctl/src/clock.rs",
            "fn f() { let t = Instant::now(); let s = SystemTime::now(); }"
        )
        .is_empty());
        // The carve-out is for clocks only — stdio stays banned there.
        assert_eq!(
            rules_of("crates/runctl/src/clock.rs", "fn f() { println!(\"x\"); }"),
            vec!["L5"]
        );
    }

    #[test]
    fn l1_applies_to_runctl() {
        assert_eq!(
            rules_of("crates/runctl/src/budget.rs", "fn f() { x.unwrap(); }"),
            vec!["L1"]
        );
    }

    #[test]
    fn violations_sorted_by_position() {
        let src = "fn f() {\n x.unwrap();\n y.expect(\"m\");\n}";
        let a = analyze_source(LIB, src);
        assert_eq!(a.violations.len(), 2);
        assert!(a.violations[0].line < a.violations[1].line);
    }
}
