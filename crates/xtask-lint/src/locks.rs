//! The lock-order manifest (`lint-locks.toml`).
//!
//! Every `Mutex`/`RwLock` in a library crate must be declared here with
//! a total-order *rank*; the L6 pass checks that nested acquisitions
//! strictly increase in rank, that `leaf` locks never have another lock
//! acquired under them, and (at the workspace level) that no declared
//! lock is missing from the manifest and no manifest entry is stale.
//!
//! Like the baseline, the format is a strict TOML subset so the tool
//! stays dependency-free:
//!
//! ```toml
//! [[lock]]
//! crate = "exec"
//! name = "Bin"
//! aliases = ["slots", "slot"]
//! rank = 10
//! leaf = true
//! about = "per-worker result bins; never nested"
//! ```
//!
//! `name` is the field or type identifier the lock is declared with;
//! `aliases` lists the local binding names acquisition sites use (the
//! token scanner sees `slots[w].enter()`, not the field path).

use std::collections::BTreeSet;

/// One declared lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEntry {
    /// Crate directory name under `crates/` (e.g. `"exec"`).
    pub krate: String,
    /// Declaration-site identifier (field or type name).
    pub name: String,
    /// Additional receiver names acquisition sites use.
    pub aliases: Vec<String>,
    /// Position in the global acquisition order; nested acquisitions
    /// must strictly increase.
    pub rank: u32,
    /// A leaf lock: no other lock may be acquired while it is held.
    pub leaf: bool,
    /// Human rationale (not interpreted).
    pub about: String,
    /// 1-based line of the `[[lock]]` header in the manifest file
    /// (0 for programmatically built entries).
    pub line: usize,
}

impl LockEntry {
    /// `true` when `receiver` refers to this lock in `krate`.
    pub fn matches(&self, krate: &str, receiver: &str) -> bool {
        self.krate == krate && (self.name == receiver || self.aliases.iter().any(|a| a == receiver))
    }
}

/// The parsed manifest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockManifest {
    /// Declared locks in file order.
    pub entries: Vec<LockEntry>,
}

impl LockManifest {
    /// `true` when no locks are declared (rule L6's manifest-dependent
    /// checks are skipped; file-local checks still run).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry `receiver` resolves to inside `krate`, if any.
    pub fn resolve(&self, krate: &str, receiver: &str) -> Option<&LockEntry> {
        self.entries.iter().find(|e| e.matches(krate, receiver))
    }

    /// Parses the TOML-subset manifest format. Returns `Err` with a
    /// line-numbered message on anything outside the subset.
    pub fn parse(text: &str) -> Result<Self, String> {
        #[derive(Default)]
        struct Partial {
            krate: Option<String>,
            name: Option<String>,
            aliases: Vec<String>,
            rank: Option<u32>,
            leaf: bool,
            about: String,
            line: usize,
        }

        fn flush(cur: &mut Option<Partial>, entries: &mut Vec<LockEntry>) -> Result<(), String> {
            if let Some(p) = cur.take() {
                let (Some(krate), Some(name), Some(rank)) = (p.krate, p.name, p.rank) else {
                    return Err("incomplete [[lock]] entry: need crate, name and rank".into());
                };
                entries.push(LockEntry {
                    krate,
                    name,
                    aliases: p.aliases,
                    rank,
                    leaf: p.leaf,
                    about: p.about,
                    line: p.line,
                });
            }
            Ok(())
        }

        let mut entries = Vec::new();
        let mut cur: Option<Partial> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = idx + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[lock]]" {
                flush(&mut cur, &mut entries).map_err(|e| format!("line {lineno}: {e}"))?;
                cur = Some(Partial {
                    line: lineno,
                    ..Partial::default()
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {lineno}: expected `key = value`, got `{line}`"
                ));
            };
            let Some(entry) = cur.as_mut() else {
                return Err(format!(
                    "line {lineno}: `{}` outside a [[lock]] table",
                    key.trim()
                ));
            };
            let value = value.trim();
            match key.trim() {
                "crate" => entry.krate = Some(unquote(value, lineno)?),
                "name" => entry.name = Some(unquote(value, lineno)?),
                "aliases" => entry.aliases = parse_string_list(value, lineno)?,
                "rank" => {
                    entry.rank = Some(
                        value
                            .parse::<u32>()
                            .map_err(|_| format!("line {lineno}: rank must be an integer"))?,
                    )
                }
                "leaf" => {
                    entry.leaf = match value {
                        "true" => true,
                        "false" => false,
                        _ => return Err(format!("line {lineno}: leaf must be true or false")),
                    }
                }
                "about" => entry.about = unquote(value, lineno)?,
                other => return Err(format!("line {lineno}: unknown key `{other}`")),
            }
        }
        flush(&mut cur, &mut entries).map_err(|e| format!("at end of file: {e}"))?;

        // Duplicate receiver names within a crate would make resolution
        // ambiguous; reject them outright.
        let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
        for e in &entries {
            for name in std::iter::once(&e.name).chain(e.aliases.iter()) {
                if !seen.insert((e.krate.clone(), name.clone())) {
                    return Err(format!(
                        "duplicate lock receiver `{name}` in crate `{}`",
                        e.krate
                    ));
                }
            }
        }
        Ok(Self { entries })
    }
}

fn unquote(value: &str, lineno: usize) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("line {lineno}: expected a double-quoted string"))
}

fn parse_string_list(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("line {lineno}: expected `[\"a\", \"b\"]`"))?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|item| unquote(item.trim(), lineno))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[[lock]]
crate = "exec"
name = "Bin"
aliases = ["slots", "slot"]
rank = 10
leaf = true
about = "per-worker result bins"

[[lock]]
crate = "neat"
name = "shards"
rank = 20
leaf = true
"#;

    #[test]
    fn parses_entries_and_resolves_aliases() {
        let m = LockManifest::parse(SAMPLE).unwrap();
        assert_eq!(m.entries.len(), 2);
        assert_eq!(m.resolve("exec", "slot").unwrap().rank, 10);
        assert_eq!(m.resolve("exec", "Bin").unwrap().rank, 10);
        assert!(m.resolve("exec", "shards").is_none(), "crate-scoped");
        assert!(m.resolve("neat", "shards").unwrap().leaf);
        assert_eq!(m.entries[1].aliases, Vec::<String>::new());
    }

    #[test]
    fn rejects_incomplete_and_garbage() {
        assert!(LockManifest::parse("[[lock]]\ncrate = \"x\"").is_err());
        assert!(LockManifest::parse("crate = \"x\"").is_err());
        assert!(LockManifest::parse("[[lock]]\ncrate = \"x\"\nname = \"n\"\nrank = z").is_err());
        assert!(
            LockManifest::parse("[[lock]]\ncrate = \"x\"\nname = \"n\"\nrank = 1\nleaf = yes")
                .is_err()
        );
    }

    #[test]
    fn rejects_ambiguous_receivers() {
        let dup = "[[lock]]\ncrate = \"x\"\nname = \"m\"\nrank = 1\n\
                   [[lock]]\ncrate = \"x\"\naliases = [\"m\"]\nname = \"n\"\nrank = 2\n";
        let err = LockManifest::parse(dup).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn empty_manifest_is_fine() {
        let m = LockManifest::parse("# nothing declared yet\n").unwrap();
        assert!(m.is_empty());
    }
}
