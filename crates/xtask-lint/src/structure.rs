//! Lightweight structural layer over the flat token stream.
//!
//! The concurrency rules (L6–L9) need more than token patterns: they
//! reason about *regions* — "from this lock acquisition to the end of
//! its guard's scope" — and about which function a site lives in. This
//! module recovers just enough structure from the lexer's token stream
//! to support that: per-function body ranges, bracket matching, and
//! statement/block extent helpers. It deliberately stops short of a
//! parse tree: brace matching over a literal-safe token stream (the
//! lexer hides braces inside strings/chars) is sufficient and keeps the
//! tool dependency-free.

use crate::lexer::{TokKind, Token};

/// A `fn` item's body as a token range: `tokens[open]` is the `{` and
/// `tokens[close]` the matching `}`.
#[derive(Debug, Clone)]
pub struct FnBody {
    /// The function's name (the identifier after `fn`).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index of the body's opening `{`.
    pub open: usize,
    /// Token index of the body's closing `}`.
    pub close: usize,
}

/// Index of the bracket matching `tokens[open]` (which must be `open_c`).
pub fn matching_bracket(
    tokens: &[Token],
    open: usize,
    open_c: char,
    close_c: char,
) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_c) {
            depth += 1;
        } else if t.is_punct(close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Index of the `)` matching the `(` at `open`.
pub fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    matching_bracket(tokens, open, '(', ')')
}

/// Discovers every `fn` item body in the stream, including nested fns
/// and fns inside `impl`/`trait` blocks. Trait method *declarations*
/// (ending in `;`) have no body and are skipped.
pub fn fn_bodies(tokens: &[Token]) -> Vec<FnBody> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") && tokens.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let name = tokens[i + 1].text.clone();
            let line = tokens[i].line;
            // Scan the signature for the body `{` (or a `;` for bodiless
            // declarations). Parens/brackets in parameter and return
            // types are skipped via depth counting; `{` at depth 0 is
            // the body.
            let mut j = i + 2;
            let mut depth = 0i64;
            let mut open = None;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_bytes().first() {
                        Some(b'(' | b'[') => depth += 1,
                        Some(b')' | b']') => depth -= 1,
                        Some(b'{') if depth == 0 => {
                            open = Some(j);
                            break;
                        }
                        Some(b'{') => depth += 1,
                        Some(b'}') => depth -= 1,
                        Some(b';') if depth == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            if let Some(open) = open {
                if let Some(close) = matching_bracket(tokens, open, '{', '}') {
                    out.push(FnBody {
                        name,
                        line,
                        open,
                        close,
                    });
                }
            }
            // Continue from just past the name so nested fns are found.
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

/// Extent of the statement containing token `i`: the index of the `;`
/// that ends it at the same nesting depth, or of the closing bracket
/// that ends the enclosing expression, bounded by `limit` (exclusive).
///
/// Because nested brackets are skipped as units, a statement like
/// `for x in guard.drain(..) { … }` extends through the loop body —
/// exactly the region a temporary guard in the loop header lives for.
pub fn statement_end(tokens: &[Token], i: usize, limit: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < limit {
        let t = &tokens[j];
        if t.kind == TokKind::Punct {
            match t.text.as_bytes().first() {
                Some(b'(' | b'[' | b'{') => depth += 1,
                Some(b')' | b']' | b'}') => {
                    if depth == 0 {
                        return j;
                    }
                    depth -= 1;
                }
                Some(b';') if depth == 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    limit
}

/// Index of the `}` closing the innermost block that contains token `i`,
/// scanning within the body range `[start, end]` (typically a fn body's
/// `{`/`}` pair). Returns `end` when `i` sits directly in the outermost
/// block.
pub fn enclosing_block_end(tokens: &[Token], start: usize, end: usize, i: usize) -> usize {
    let mut stack: Vec<usize> = Vec::new();
    let mut target: Option<usize> = None;
    for (j, t) in tokens.iter().enumerate().take(end + 1).skip(start) {
        if j == i {
            target = stack.last().copied();
        }
        if t.is_punct('{') {
            stack.push(j);
        } else if t.is_punct('}') {
            let open = stack.pop();
            if j >= i {
                if let (Some(t_open), Some(popped)) = (target, open) {
                    if popped == t_open {
                        return j;
                    }
                }
            }
        }
    }
    end
}

/// `true` when token `i` lies inside a `use …;` statement — import lists
/// mention names like `catch_unwind` without being call sites.
pub fn in_use_statement(tokens: &[Token], i: usize) -> bool {
    // Walk back to the nearest statement boundary and check for `use`.
    // A `::{` import-group brace is not a boundary (`use a::{b, c};`);
    // a block brace is.
    let mut j = i;
    while j > 0 {
        let t = &tokens[j - 1];
        if t.is_punct(';') || t.is_punct('}') {
            break;
        }
        if t.is_punct('{') {
            if j >= 2 && tokens[j - 2].is_punct(':') {
                j -= 1;
                continue;
            }
            break;
        }
        j -= 1;
    }
    tokens.get(j).is_some_and(|t| t.is_ident("use"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).0
    }

    #[test]
    fn finds_fn_bodies_including_nested() {
        let src = "impl S { fn a(&self) -> u32 { fn b() {} 1 } } fn c();";
        let t = toks(src);
        let bodies = fn_bodies(&t);
        let names: Vec<_> = bodies.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"], "decl-only `c` has no body");
        // `a`'s body strictly contains `b`'s.
        assert!(bodies[0].open < bodies[1].open && bodies[1].close < bodies[0].close);
    }

    #[test]
    fn signature_brackets_do_not_confuse_body_detection() {
        let src = "fn f(x: [u32; 2], g: impl Fn(u32) -> u32) -> (u32, u32) { (g(x[0]), 1) }";
        let t = toks(src);
        let bodies = fn_bodies(&t);
        assert_eq!(bodies.len(), 1);
        assert!(t[bodies[0].open].is_punct('{'));
        assert_eq!(bodies[0].close, t.len() - 1);
    }

    #[test]
    fn statement_end_stops_at_semicolon_or_block_close() {
        let src = "fn f() { let a = g().h(); k() }";
        let t = toks(src);
        let a = t.iter().position(|t| t.is_ident("a")).unwrap();
        let semi = statement_end(&t, a, t.len());
        assert!(t[semi].is_punct(';'));
        let k = t.iter().position(|t| t.is_ident("k")).unwrap();
        let end = statement_end(&t, k, t.len());
        assert!(t[end].is_punct('}'), "tail expr ends at block close");
    }

    #[test]
    fn statement_end_spans_a_for_loop_body() {
        let src = "fn f() { for x in m.drain(..) { use_it(x); } after(); }";
        let t = toks(src);
        let d = t.iter().position(|t| t.is_ident("drain")).unwrap();
        let end = statement_end(&t, d, t.len());
        let after = t.iter().position(|t| t.is_ident("after")).unwrap();
        assert!(end > after - 2, "loop-header guard lives through the body");
        assert!(end < t.len() - 1);
    }

    #[test]
    fn enclosing_block_end_finds_innermost() {
        let src = "fn f() { if c { let x = 1; y(); } z(); }";
        let t = toks(src);
        let bodies = fn_bodies(&t);
        let x = t.iter().position(|t| t.is_ident("x")).unwrap();
        let end = enclosing_block_end(&t, bodies[0].open, bodies[0].close, x);
        let z = t.iter().position(|t| t.is_ident("z")).unwrap();
        assert!(t[end].is_punct('}'));
        assert!(end < z, "x's block closes before z runs");
        // A token directly in the fn body maps to the body close.
        let end_z = enclosing_block_end(&t, bodies[0].open, bodies[0].close, z);
        assert_eq!(end_z, bodies[0].close);
    }

    #[test]
    fn use_statements_are_recognized() {
        let src = "use std::panic::{catch_unwind, AssertUnwindSafe}; fn f() { catch_unwind(g); }";
        let t = toks(src);
        let sites: Vec<usize> = t
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("catch_unwind"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(sites.len(), 2);
        assert!(in_use_statement(&t, sites[0]));
        assert!(!in_use_statement(&t, sites[1]));
    }
}
