//! Workspace walker + report assembly.
//!
//! Walks every `.rs` file under the workspace root, skipping `vendor/`,
//! `target/`, test trees (`tests/`, `benches/`, `examples/`,
//! `lint_fixtures/`) and hidden directories, analyzes each file with the
//! rule set and folds the results into a [`LintReport`].

use std::fs;
use std::path::{Path, PathBuf};

use crate::baseline::Baseline;
use crate::locks::LockManifest;
use crate::rules::{analyze_source_with, Violation, RULES};

/// Outcome of a full workspace scan.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Every violation found, ordered by (file, line, col).
    pub violations: Vec<Violation>,
    /// Violations not covered by the baseline.
    pub fresh: Vec<Violation>,
    /// Violations absorbed by the baseline.
    pub baselined: usize,
    /// Violations waived by `lint:allow` annotations.
    pub waived: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Per-rule counts over `fresh`, in rule order (skips zero rows).
    pub fn fresh_by_rule(&self) -> Vec<(&'static str, usize)> {
        RULES
            .iter()
            .map(|r| (*r, self.fresh.iter().filter(|v| v.rule == *r).count()))
            .filter(|(_, n)| *n > 0)
            .collect()
    }

    /// JSON rendering for CI (`--format json`). Hand-rolled to stay
    /// dependency-free; all strings are escaped.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [");
        for (i, v) in self.fresh.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \
                 \"message\": {}, \"help\": {}}}",
                json_str(v.rule),
                json_str(&v.file),
                v.line,
                v.col,
                json_str(&v.message),
                json_str(&v.help),
            ));
        }
        if !self.fresh.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"baselined\": {},\n  \"waived\": {},\n  \
             \"new_violations\": {}\n}}\n",
            self.files_scanned,
            self.baselined,
            self.waived,
            self.fresh.len()
        ));
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Directory names never descended into.
const SKIP_DIRS: [&str; 6] = [
    "vendor",
    "target",
    "tests",
    "benches",
    "examples",
    "lint_fixtures",
];

/// Collects workspace-relative paths of all lintable `.rs` files under
/// `root`, sorted for deterministic report order.
pub fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip_prefix: {e}"))?;
            out.push(rel.to_path_buf());
        }
    }
    Ok(())
}

/// Normalizes a relative path to forward slashes for diagnostics and
/// baseline keys (stable across platforms).
pub fn rel_display(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Default manifest location: `<root>/lint-locks.toml`.
pub fn default_manifest_path(root: &Path) -> PathBuf {
    root.join("lint-locks.toml")
}

/// Loads the lock manifest at `path`; a missing file yields an empty
/// manifest (a parse error does not).
pub fn load_manifest(path: &Path) -> Result<LockManifest, String> {
    match fs::read_to_string(path) {
        Ok(text) => LockManifest::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(_) => Ok(LockManifest::default()),
    }
}

/// Scans the workspace at `root` with the manifest at its default
/// location, and applies `baseline`.
pub fn run(root: &Path, baseline: &Baseline) -> Result<LintReport, String> {
    let manifest = load_manifest(&default_manifest_path(root))?;
    run_with_manifest(root, baseline, &manifest)
}

/// Scans the workspace at `root` with an explicit lock manifest.
///
/// Beyond the per-file rules this performs the two workspace-level L6
/// checks: every un-waived `Mutex`/`RwLock` declared in a library crate
/// must have a manifest entry, and every manifest entry must correspond
/// to a declared or acquired lock (no stale entries).
pub fn run_with_manifest(
    root: &Path,
    baseline: &Baseline,
    manifest: &LockManifest,
) -> Result<LintReport, String> {
    let files = collect_rs_files(root)?;
    let mut report = LintReport::default();
    // (crate, file, decl) for coverage; (crate, receiver/decl names) for
    // staleness.
    let mut decls: Vec<(String, String, crate::concurrency::LockDecl)> = Vec::new();
    let mut used: std::collections::BTreeSet<(String, String)> = std::collections::BTreeSet::new();
    for rel in &files {
        let display = rel_display(rel);
        let src = fs::read_to_string(root.join(rel)).map_err(|e| format!("read {display}: {e}"))?;
        let analysis = analyze_source_with(&display, &src, manifest);
        report.waived += analysis.waived;
        report.violations.extend(analysis.violations);
        report.files_scanned += 1;
        if let Some(krate) = display
            .strip_prefix("crates/")
            .and_then(|p| p.split('/').next())
        {
            for d in analysis.concurrency.declared_locks {
                used.insert((krate.to_string(), d.name.clone()));
                decls.push((krate.to_string(), display.clone(), d));
            }
            for r in analysis.concurrency.receivers {
                used.insert((krate.to_string(), r));
            }
        }
    }
    // Coverage: every declared lock needs a manifest entry.
    for (krate, file, d) in &decls {
        if !d.waived && manifest.resolve(krate, &d.name).is_none() {
            report.violations.push(Violation {
                rule: "L6",
                file: file.clone(),
                line: d.line,
                col: d.col,
                message: format!("Mutex/RwLock `{}` has no entry in lint-locks.toml", d.name),
                help: "declare it with a rank (and `leaf`/`aliases` as appropriate), or \
                       annotate the declaration with `// lint:allow(L6) reason=<policy>`"
                    .into(),
            });
        }
    }
    // Staleness: every manifest entry must match something real.
    for e in &manifest.entries {
        let hit = std::iter::once(&e.name)
            .chain(e.aliases.iter())
            .any(|n| used.contains(&(e.krate.clone(), n.clone())));
        if !hit {
            report.violations.push(Violation {
                rule: "L6",
                file: "lint-locks.toml".into(),
                line: e.line as u32,
                col: 1,
                message: format!(
                    "stale manifest entry `{}/{}`: no such lock is declared or acquired",
                    e.krate, e.name
                ),
                help: "remove the entry, or fix its crate/name/aliases".into(),
            });
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    let (fresh, covered) = baseline.apply(&report.violations);
    report.fresh = fresh;
    report.baselined = covered;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_report_json_is_valid_shape() {
        let r = LintReport::default();
        let j = r.to_json();
        assert!(j.contains("\"violations\": []"));
        assert!(j.contains("\"new_violations\": 0"));
    }

    #[test]
    fn rel_display_uses_forward_slashes() {
        let p = PathBuf::from("crates")
            .join("neat")
            .join("src")
            .join("lib.rs");
        assert_eq!(rel_display(&p), "crates/neat/src/lib.rs");
    }
}
