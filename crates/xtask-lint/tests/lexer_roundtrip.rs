//! Property test: the lexer's byte spans reconstruct the input exactly.
//!
//! Every token and comment carries `lo`/`hi` byte offsets with
//! `text == src[lo..hi]`; the spans are sorted, disjoint, and the gaps
//! between them are whitespace-only. Holding that for arbitrary
//! near-Rust soup (including unterminated literals, stray quotes, raw
//! strings and nested comments) is what lets the structural layer trust
//! the token stream.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use xtask_lint::lexer::lex;

/// Asserts the span round-trip invariant for `src`. Returns an error
/// string on the first violated clause so `proptest!` reports the input.
fn round_trip_error(src: &str) -> Option<String> {
    let (tokens, comments) = lex(src);
    let mut spans: Vec<(usize, usize, &str)> = tokens
        .iter()
        .map(|t| (t.lo, t.hi, t.text.as_str()))
        .chain(comments.iter().map(|c| (c.lo, c.hi, c.text.as_str())))
        .collect();
    spans.sort_by_key(|s| (s.0, s.1));
    let mut cursor = 0usize;
    for (lo, hi, text) in spans {
        if lo < cursor {
            return Some(format!("overlapping span at {lo} (cursor {cursor})"));
        }
        if hi > src.len() || lo > hi {
            return Some(format!("span {lo}..{hi} out of bounds (len {})", src.len()));
        }
        let gap = &src[cursor..lo];
        if !gap.chars().all(char::is_whitespace) {
            return Some(format!("non-whitespace gap {gap:?} before {lo}"));
        }
        if &src[lo..hi] != text {
            return Some(format!(
                "span text mismatch at {lo}..{hi}: {:?} != {text:?}",
                &src[lo..hi]
            ));
        }
        cursor = hi;
    }
    let tail = &src[cursor..];
    if !tail.chars().all(char::is_whitespace) {
        return Some(format!("non-whitespace tail {tail:?}"));
    }
    None
}

fn assert_round_trip(src: &str) {
    if let Some(err) = round_trip_error(src) {
        panic!("round-trip failed on {src:?}: {err}");
    }
}

#[test]
fn hard_cases_round_trip() {
    for src in [
        "",
        "fn main() {}",
        "let s = \"brace { in string }\";",
        "let c = '{'; let b = b'}'; let e = '\\'';",
        "let r = r#\"raw { \"quoted\" } body\"#; let r2 = r\"plain\";",
        "let br = br#\"byte raw\"#;",
        "let id = r#match; let n = 0x1f_u64;",
        "/* outer /* nested */ still comment */ fn f() {}",
        "// line comment with \"quote\n let x = 1;",
        "let unterminated = \"no close",
        "let stray = '",
        "r#\"unterminated raw",
        "let uni = \"héllo wörld\"; // ünïcödé",
        "b'x' b'\\'' 'a' '\\\\'",
        "#![doc = \"inner\"] #[cfg(test)] mod t { }",
    ] {
        assert_round_trip(src);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Printable-ASCII soup with the characters that drive the lexer's
    /// literal/comment state machine over-represented.
    #[test]
    fn ascii_soup_round_trips(s in "[ -~\n\t\"'/*#r{}b\\\\]{0,80}") {
        if let Some(err) = round_trip_error(&s) {
            prop_assert!(false, "round-trip failed on {s:?}: {err}");
        }
    }

    /// Rust-ish fragments assembled from a fixed alphabet of tokens, so
    /// raw strings, char literals and comments appear in well-formed
    /// *and* truncated combinations.
    #[test]
    fn fragment_soup_round_trips(picks in proptest::collection::vec(0usize..16, 0..24)) {
        const FRAGMENTS: [&str; 16] = [
            "fn f() { ",
            "}",
            "let s = \"a{b}\"; ",
            "let c = '{'; ",
            "b'}' ",
            "r#\"raw { body }\"# ",
            "r#match ",
            "// comment {\n",
            "/* blk /* nest */ */ ",
            "\"",
            "'",
            "r#\"",
            "0x2a ",
            "ident_one ",
            "#[cfg(test)] ",
            "\\",
        ];
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        if let Some(err) = round_trip_error(&src) {
            prop_assert!(false, "round-trip failed on {src:?}: {err}");
        }
    }
}
