//! Golden-file test for `--format json`: a scan of a tiny synthetic
//! workspace must render byte-identically to the checked-in golden
//! report, so CI consumers can rely on the shape not drifting.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};

use xtask_lint::{run_with_manifest, Baseline, LockManifest};

/// Builds a throwaway workspace with one library file that trips L7 and
/// L8 deterministically.
fn synthetic_workspace() -> PathBuf {
    let root = std::env::temp_dir().join(format!("neat-lint-golden-{}", std::process::id()));
    let src_dir = root.join("crates/neat/src");
    std::fs::create_dir_all(&src_dir).expect("create synthetic workspace");
    std::fs::write(
        src_dir.join("fixture.rs"),
        "use std::sync::atomic::{AtomicU64, Ordering};\n\
         \n\
         pub fn tick(ops: &AtomicU64) -> u64 {\n\
         \x20   ops.fetch_add(1, Ordering::Relaxed)\n\
         }\n\
         \n\
         pub fn swallow(step: fn()) {\n\
         \x20   let _ = std::panic::catch_unwind(step);\n\
         }\n",
    )
    .expect("write fixture source");
    root
}

#[test]
fn json_report_matches_golden_file() {
    let root = synthetic_workspace();
    let report = run_with_manifest(&root, &Baseline::default(), &LockManifest::default())
        .expect("scan synthetic workspace");
    std::fs::remove_dir_all(&root).ok();

    let got = report.to_json();
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures/golden_report.json");
    let want = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", golden_path.display()));
    assert_eq!(
        got, want,
        "JSON report shape drifted from the golden file; if the change is \
         intentional, update tests/lint_fixtures/golden_report.json"
    );
}
