//! The linter holds itself — and the whole workspace — to its own
//! standard: a full scan from the repo root with the real manifest and
//! an *empty* baseline must come back clean. This is the same gate CI
//! runs, expressed as a test so `cargo test` alone catches regressions.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};

use xtask_lint::runner::{self, default_manifest_path};
use xtask_lint::{run_with_manifest, Baseline};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask-lint has a workspace root two levels up")
        .to_path_buf()
}

#[test]
fn workspace_scan_is_clean_with_empty_baseline() {
    let root = workspace_root();
    let manifest = runner::load_manifest(&default_manifest_path(&root)).expect("manifest parses");
    assert!(
        !manifest.is_empty(),
        "lint-locks.toml must declare the workspace's locks"
    );
    let report = run_with_manifest(&root, &Baseline::default(), &manifest).expect("scan runs");
    assert!(
        report.fresh.is_empty(),
        "workspace must lint clean with an empty baseline:\n{}",
        report
            .fresh
            .iter()
            .map(|v| v.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(report.baselined, 0, "nothing may hide in the baseline");
}

#[test]
fn linter_sources_lint_clean() {
    let root = workspace_root();
    let manifest = runner::load_manifest(&default_manifest_path(&root)).expect("manifest parses");
    let dir = root.join("crates/xtask-lint/src");
    let mut checked = 0usize;
    for entry in std::fs::read_dir(&dir).expect("read xtask-lint src") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let rel = format!(
            "crates/xtask-lint/src/{}",
            path.file_name().unwrap().to_string_lossy()
        );
        let src = std::fs::read_to_string(&path).expect("read source");
        let analysis = xtask_lint::analyze_source_with(&rel, &src, &manifest);
        assert!(
            analysis.violations.is_empty(),
            "{rel} must lint clean: {:?}",
            analysis.violations
        );
        checked += 1;
    }
    assert!(
        checked >= 8,
        "expected to self-lint all modules, saw {checked}"
    );
}
