//! Fixture tests: every rule must fire on its known-bad snippet at the
//! exact expected lines, and stay silent on the known-good twin.
//!
//! Fixtures live in `tests/lint_fixtures/` (a directory the workspace
//! walker deliberately skips) and are analyzed under synthetic
//! workspace-relative paths so each fixture lands in exactly the scope
//! its rule targets.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::Path;

use xtask_lint::analyze_source;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/lint_fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// (rule, line) pairs of the violations found in `name`, analyzed at
/// the synthetic path `at`.
fn findings(name: &str, at: &str) -> Vec<(&'static str, u32)> {
    analyze_source(at, &fixture(name))
        .violations
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn l0_malformed_annotation_is_reported_and_does_not_waive() {
    let got = findings("l0_bad.rs", "crates/neat/src/fixture.rs");
    assert_eq!(got, vec![("L0", 1), ("L1", 3)]);
}

#[test]
fn l1_bad_fires_on_unwrap_expect_and_panic() {
    let got = findings("l1_bad.rs", "crates/neat/src/fixture.rs");
    assert_eq!(got, vec![("L1", 2), ("L1", 6), ("L1", 10)]);
}

#[test]
fn l1_good_is_clean_and_counts_the_waiver() {
    let analysis = analyze_source("crates/neat/src/fixture.rs", &fixture("l1_good.rs"));
    assert!(analysis.violations.is_empty(), "{:?}", analysis.violations);
    assert_eq!(
        analysis.waived, 1,
        "the annotated expect is counted as waived"
    );
}

#[test]
fn l1_bad_is_ignored_outside_library_scope() {
    assert!(
        findings("l1_bad.rs", "crates/bench/src/bin/fixture.rs").is_empty(),
        "binaries may panic on bad input"
    );
}

#[test]
fn l2_bad_fires_on_hash_iteration_in_a_phase_module() {
    let got = findings("l2_bad.rs", "crates/neat/src/phase1.rs");
    assert!(!got.is_empty());
    assert!(
        got.iter().all(|(rule, line)| *rule == "L2" && *line == 5),
        "{got:?}"
    );
}

#[test]
fn l2_bad_is_ignored_outside_the_phase_modules() {
    assert!(findings("l2_bad.rs", "crates/rnet/src/fixture.rs").is_empty());
}

#[test]
fn l2_good_btreemap_and_sorted_rescue_are_clean() {
    let got = findings("l2_good.rs", "crates/neat/src/phase1.rs");
    assert!(got.is_empty(), "{got:?}");
}

#[test]
fn l3_bad_fires_on_partial_cmp_unwrap_and_float_eq() {
    // Analyzed at a CLI-layer path: L3 applies everywhere, and the
    // non-library scope keeps L1 from also firing on the same lines.
    let got = findings("l3_bad.rs", "src/fixture.rs");
    assert_eq!(got, vec![("L3", 2), ("L3", 6)]);
}

#[test]
fn l3_good_total_cmp_is_clean() {
    assert!(findings("l3_good.rs", "src/fixture.rs").is_empty());
}

#[test]
fn l4_bad_fires_on_lossy_id_casts() {
    let got = findings("l4_bad.rs", "src/fixture.rs");
    assert_eq!(got, vec![("L4", 2), ("L4", 6)]);
}

#[test]
fn l4_good_widening_and_checked_casts_are_clean() {
    assert!(findings("l4_good.rs", "src/fixture.rs").is_empty());
}

#[test]
fn l5_bad_fires_on_stdio_clock_and_thread_count() {
    let got = findings("l5_bad.rs", "crates/neat/src/fixture.rs");
    assert_eq!(got, vec![("L5", 1), ("L5", 4), ("L5", 9), ("L5", 14)]);
}

#[test]
fn l5_bad_is_ignored_outside_algorithm_crates() {
    assert!(
        !findings("l5_bad.rs", "crates/bench/src/fixture.rs")
            .iter()
            .any(|(rule, _)| *rule == "L5"),
        "bench may print and time"
    );
}

#[test]
fn l5_good_is_clean() {
    assert!(findings("l5_good.rs", "crates/neat/src/fixture.rs").is_empty());
}
