//! Fixture tests for the concurrency rules (L6–L9): each rule must fire
//! on its known-bad snippet at the exact expected lines and stay silent
//! on the known-good twin.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::Path;

use xtask_lint::{analyze_source_with, LockManifest};

/// Library-crate path the fixtures are analyzed under.
const AT: &str = "crates/neat/src/fixture.rs";

/// Three-lock manifest the L6 fixtures are ranked against.
const MANIFEST: &str = r#"
[[lock]]
crate = "neat"
name = "low"
rank = 10
[[lock]]
crate = "neat"
name = "high"
rank = 20
[[lock]]
crate = "neat"
name = "tip"
rank = 30
leaf = true
"#;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/lint_fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn manifest() -> LockManifest {
    LockManifest::parse(MANIFEST).expect("fixture manifest parses")
}

/// (rule, line) pairs found in `name`, analyzed at the synthetic path
/// `at` against the fixture manifest.
fn findings(name: &str, at: &str) -> Vec<(&'static str, u32)> {
    analyze_source_with(at, &fixture(name), &manifest())
        .violations
        .into_iter()
        .map(|v| (v.rule, v.line))
        .collect()
}

#[test]
fn l6_bad_fires_every_lock_discipline_check() {
    let got = findings("l6_bad.rs", AT);
    assert_eq!(
        got,
        vec![
            ("L6", 4),  // raw .lock() outside the poison-policy helper
            ("L6", 9),  // rank inversion: low(10) under high(20)
            ("L6", 15), // nesting under a leaf lock
            ("L6", 21), // double acquisition of the same lock
            ("L6", 27), // guard held across fs I/O
            ("L6", 31), // acquisition of a lock the manifest doesn't know
        ]
    );
}

#[test]
fn l6_good_is_clean_and_counts_the_waiver() {
    let analysis = analyze_source_with(AT, &fixture("l6_good.rs"), &manifest());
    assert!(analysis.violations.is_empty(), "{:?}", analysis.violations);
    // The annotated local-policy block waives both the raw `.lock()`
    // and the undeclared-lock finding on the same line.
    assert_eq!(analysis.waived, 2);
}

#[test]
fn l6_bad_is_ignored_outside_library_scope() {
    assert!(
        findings("l6_bad.rs", "crates/bench/src/bin/fixture.rs").is_empty(),
        "binaries are not subject to lock discipline"
    );
}

#[test]
fn l7_bad_fires_on_bare_relaxed() {
    assert_eq!(findings("l7_bad.rs", AT), vec![("L7", 6)]);
}

#[test]
fn l7_bad_is_exempt_inside_counter_modules() {
    assert!(
        findings("l7_bad.rs", "crates/bench/src/log.rs").is_empty(),
        "counter modules may use Relaxed freely"
    );
}

#[test]
fn l7_good_is_clean_and_counts_the_waiver() {
    let analysis = analyze_source_with(AT, &fixture("l7_good.rs"), &manifest());
    assert!(analysis.violations.is_empty(), "{:?}", analysis.violations);
    assert_eq!(analysis.waived, 1);
}

#[test]
fn l8_bad_fires_on_both_unwind_idents_but_not_the_import() {
    let got = findings("l8_bad.rs", AT);
    assert_eq!(got, vec![("L8", 6), ("L8", 6)], "import line 3 is exempt");
}

#[test]
fn l8_good_is_clean_and_counts_both_waivers() {
    let analysis = analyze_source_with(AT, &fixture("l8_good.rs"), &manifest());
    assert!(analysis.violations.is_empty(), "{:?}", analysis.violations);
    assert_eq!(analysis.waived, 2);
}

#[test]
fn l9_bad_fires_on_every_impure_fold() {
    let got = findings("l9_bad.rs", AT);
    assert_eq!(
        got,
        vec![
            ("L9", 5),  // fetch_add inside exec.map
            ("L9", 12), // borrow_mut inside try_map_ctl
            ("L9", 18), // unsafe block inside map_ctx
        ]
    );
}

#[test]
fn l9_good_is_clean() {
    let got = findings("l9_good.rs", AT);
    assert!(got.is_empty(), "{got:?}");
}
