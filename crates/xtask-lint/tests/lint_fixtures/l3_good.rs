pub fn rank(v: &mut [(f64, u32)]) {
    v.sort_by(|a, b| a.0.total_cmp(&b.0));
}

pub fn rank_by_key(v: &mut [(f64, u32)]) {
    v.sort_unstable_by_key(|e| e.1);
}
