use std::collections::BTreeMap;
use std::collections::HashMap;

pub fn cluster_order(by_segment: &BTreeMap<u32, Vec<u32>>) -> Vec<u32> {
    by_segment.keys().copied().collect()
}

pub fn sorted_rescue(m: &HashMap<u32, u32>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}
