use std::time::Instant;

pub fn noisy(x: u32) -> u32 {
    println!("x = {x}");
    x
}

pub fn timed() -> f64 {
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}

pub fn threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}
