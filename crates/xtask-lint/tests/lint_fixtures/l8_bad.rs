//! L8 fixture: an unwind boundary with no named restoration path.

use std::panic::{catch_unwind, AssertUnwindSafe};

pub fn swallow(step: fn()) {
    let _ = catch_unwind(AssertUnwindSafe(step));
}
