//! L6 fixture twin: disciplined acquisitions stay silent.

pub fn ascending(low: &LockedVec, high: &LockedVec) {
    let a = low.enter();
    let b = high.enter();
    drop((a, b));
}

pub fn statement_scoped(high: &LockedVec, low: &LockedVec) {
    high.enter().push(1);
    low.enter().push(2);
}

pub fn io_after_guard(low: &LockedVec, fs: &Disk) {
    let bytes = low.enter().snapshot();
    fs.write(&bytes);
}

pub fn annotated_local_policy(special: &LockedVec) {
    // lint:allow(L6) reason=fixture demonstrates a justified local acquisition policy
    let g = special.lock();
    drop(g);
}
