pub fn first(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

pub fn head(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or(0)
}

pub fn audited(v: &[u32]) -> u32 {
    *v.first().expect("caller guarantees non-empty") // lint:allow(L1) reason=documented caller contract
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        let v: Vec<u32> = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
