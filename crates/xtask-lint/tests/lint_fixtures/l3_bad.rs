pub fn rank(v: &mut [(f64, u32)]) {
    v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
}

pub fn pick(v: &[(f64, u32)]) -> Option<&(f64, u32)> {
    v.iter().max_by(|a, b| if a.0 == 0.5 { std::cmp::Ordering::Less } else { a.0.total_cmp(&b.0) })
}
