pub fn widen(id_bits: u32) -> usize {
    id_bits as usize
}

pub fn checked(idx: usize) -> Result<u32, std::num::TryFromIntError> {
    idx.try_into()
}
