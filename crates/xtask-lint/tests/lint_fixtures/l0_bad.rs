// lint:allow(L1)
fn annotated_without_reason(x: Option<u32>) -> u32 {
    x.unwrap()
}
