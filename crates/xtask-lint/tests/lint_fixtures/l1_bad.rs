pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn must(v: Option<u32>) -> u32 {
    v.expect("always present")
}

pub fn boom() {
    panic!("unreachable");
}
