//! L9 fixture twin: folds stay pure; shared effects go through the
//! sanctioned APIs (Control::check, ShardedMap compute-under-shard).

pub fn pure_fold(exec: &Executor, memo: &ShardedMap, ctl: &Control) {
    exec.try_map_ctl(8, ctl, || (), |i, _scratch, c| {
        c.check()?;
        let (v, _fresh) = memo.get_or_insert_with(i, || expensive(i));
        Ok(v)
    });
}

pub fn iterator_map_is_not_a_fold(xs: &[u64], total: &AtomicU64) -> u64 {
    xs.iter().map(|x| total.fetch_add(*x, Ordering::SeqCst)).sum()
}
