//! L9 fixture: parallel folds touching shared mutable state.

pub fn counting_fold(exec: &Executor, total: &AtomicU64) {
    exec.map(8, |i| {
        total.fetch_add(i, Ordering::SeqCst);
        i
    });
}

pub fn cell_fold(exec: &Executor, cell: &RefCell<u64>, ctl: &Control) {
    exec.try_map_ctl(4, ctl, || (), |i, _scratch, _ctl| {
        *cell.borrow_mut() += i;
        Ok(i)
    });
}

pub fn unsafe_fold(exec: &Executor) {
    exec.map_ctx(2, || (), |i, _scratch| unsafe { wild(i) });
}
