//! L6 fixture: every lock-discipline check fires here.

pub fn raw_acquire(low: &LockedVec) {
    low.lock();
}

pub fn rank_inversion(low: &LockedVec, high: &LockedVec) {
    let a = high.enter();
    let b = low.enter();
    drop((a, b));
}

pub fn leaf_nesting(tip: &LockedVec, high: &LockedVec) {
    let t = tip.enter();
    let h = high.enter();
    drop((t, h));
}

pub fn double_acquire(low: &LockedVec) {
    let a = low.enter();
    let b = low.enter();
    drop((a, b));
}

pub fn io_under_guard(low: &LockedVec, fs: &Disk) {
    let g = low.enter();
    fs.write(&g.path, &g.bytes);
}

pub fn undeclared(rogue: &LockedVec) {
    let g = rogue.enter();
    drop(g);
}
