//! L8 fixture twin: the boundary names its invariant-restoration path.

use std::panic::{catch_unwind, AssertUnwindSafe};

pub fn supervised(step: fn()) {
    // lint:allow(L8) reason=recover() rebuilds all worker state from the durable store before the next tick
    let _ = catch_unwind(AssertUnwindSafe(step));
}
