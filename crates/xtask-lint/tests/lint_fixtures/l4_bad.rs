pub fn narrow(sid: MySegmentId) -> u32 {
    sid.index() as u32
}

pub fn shrink(idx: usize) -> u16 {
    idx as u16
}
