pub fn pure(x: u32) -> u32 {
    x.wrapping_mul(2)
}

pub fn configured_threads(requested: usize) -> usize {
    requested.max(1)
}
