//! L7 fixture: bare `Ordering::Relaxed` outside a counter module.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn tick(ops: &AtomicU64) -> u64 {
    ops.fetch_add(1, Ordering::Relaxed)
}
