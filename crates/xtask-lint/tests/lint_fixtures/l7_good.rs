//! L7 fixture twin: strong orderings, `cmp::Ordering`, and one
//! justified `Relaxed`.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn tick(ops: &AtomicU64) -> u64 {
    // lint:allow(L7) reason=pure statistics counter feeding no control decision
    ops.fetch_add(1, Ordering::Relaxed)
}

pub fn observe(ops: &AtomicU64) -> u64 {
    ops.load(Ordering::Acquire)
}

pub fn smallest(a: u32, b: u32) -> bool {
    a.cmp(&b) == std::cmp::Ordering::Less
}
