use std::collections::HashMap;

pub fn cluster_order(by_segment: &HashMap<u32, Vec<u32>>) -> Vec<u32> {
    let mut out = Vec::new();
    for (sid, _frags) in by_segment.iter() {
        out.push(*sid);
    }
    out
}
