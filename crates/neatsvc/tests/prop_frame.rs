//! Property-based coverage of the network frame codec: arbitrary bodies
//! and messages must round-trip byte for byte, every single-bit
//! corruption of a frame must be detected as a structured error (never
//! silently accepted), and truncation at every byte boundary must
//! neither panic nor yield a frame.

use neat_svc::frame::{
    frame, split_frame, unframe, FrameError, Reply, Request, StatusReport, DEFAULT_MAX_FRAME,
    HEADER_LEN,
};
use proptest::prelude::*;

/// Exhaustive (not property-based) single-bit sweep over a fixed frame:
/// all `8 * len` flips must be rejected. The length prefix, the CRC and
/// the body are all covered — a flipped length either truncates,
/// overruns or leaves trailing bytes; a flipped CRC or body fails the
/// checksum.
#[test]
fn every_single_bit_flip_is_detected() {
    let body = b"tenant=sj batch=b-042 payload \x00\xff\x7f";
    let encoded = frame(body);
    for i in 0..encoded.len() {
        for bit in 0..8u8 {
            let mut corrupt = encoded.clone();
            corrupt[i] ^= 1 << bit;
            let got = unframe(&corrupt, DEFAULT_MAX_FRAME);
            assert!(
                got.is_err(),
                "flip of byte {i} bit {bit} was accepted: {got:?}"
            );
        }
    }
}

/// Truncation at every byte boundary: `unframe` reports it, and the
/// incremental `split_frame` reports "no frame yet" — neither panics.
#[test]
fn truncation_at_every_byte_never_panics_or_yields_a_frame() {
    let body = b"torn mid-send";
    let encoded = frame(body);
    for cut in 0..encoded.len() {
        let prefix = &encoded[..cut];
        assert!(
            unframe(prefix, DEFAULT_MAX_FRAME).is_err(),
            "truncation at {cut} produced a frame"
        );
        let split = split_frame(prefix, DEFAULT_MAX_FRAME)
            .unwrap_or_else(|e| panic!("truncation at {cut} errored in split_frame: {e}"));
        assert!(split.is_none(), "truncation at {cut} yielded a frame");
    }
}

/// Builds one of the three request shapes from generated primitives
/// (the stand-in proptest has no `prop_oneof`, so selection is by
/// index).
fn make_request(pick: u8, tenant: String, batch_id: String, payload: Vec<u8>) -> Request {
    match pick % 3 {
        0 => Request::Push {
            tenant,
            batch_id,
            payload,
        },
        1 => Request::Status { tenant },
        _ => Request::Drain,
    }
}

/// Builds one of the five reply shapes from generated primitives.
fn make_reply(pick: u8, n: u64, text: String, counters: [u64; 4]) -> Reply {
    match pick % 5 {
        0 => Reply::Ack { epoch: n },
        1 => Reply::Defer { retry_after_ms: n },
        2 => Reply::Shed,
        3 => Reply::Reject { reason: text },
        _ => Reply::Report(Box::new(StatusReport {
            tenant: text,
            status: "running".to_string(),
            breaker: "half-open".to_string(),
            breaker_trips: n,
            accepted: counters[0],
            deferred: counters[1],
            shed: counters[2],
            poisoned: counters[3],
            applied: counters[0].wrapping_mul(3),
            batches: counters[0] ^ counters[2],
            duplicates: counters[1] ^ n,
            restarts: counters[2].rotate_left(7),
            last_epoch: n.wrapping_add(counters[3]),
            watermark_bits: n.is_multiple_of(2).then(|| (n as f64).to_bits()),
            live_fragments: counters[3].rotate_left(3),
            expiries: counters[0] % 17,
            drift: neat_core::DriftCounts {
                born: counters[0] % 5,
                grew: counters[1] % 5,
                shrank: counters[2] % 5,
                merged: counters[3] % 5,
                died: n % 5,
            },
            compactions: counters[1] % 9,
            compaction_failures: counters[2] % 3,
        })),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_body_round_trips(body in proptest::collection::vec(0u8..=255, 0..2048)) {
        let encoded = frame(&body);
        prop_assert_eq!(encoded.len(), HEADER_LEN + body.len());
        prop_assert_eq!(unframe(&encoded, DEFAULT_MAX_FRAME).unwrap(), body);
    }

    #[test]
    fn any_single_bit_flip_on_any_body_is_detected(
        body in proptest::collection::vec(0u8..=255, 0..512),
        offset in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let mut encoded = frame(&body);
        let i = offset % encoded.len();
        encoded[i] ^= 1 << bit;
        prop_assert!(unframe(&encoded, DEFAULT_MAX_FRAME).is_err());
    }

    #[test]
    fn any_truncation_is_rejected_without_panic(
        body in proptest::collection::vec(0u8..=255, 0..512),
        cut in 0usize..1_000_000,
    ) {
        let encoded = frame(&body);
        let prefix = &encoded[..cut % encoded.len()];
        prop_assert!(unframe(prefix, DEFAULT_MAX_FRAME).is_err());
        prop_assert!(split_frame(prefix, DEFAULT_MAX_FRAME).unwrap().is_none());
    }

    #[test]
    fn requests_round_trip_through_the_wire(
        pick in 0u8..=255,
        tenant in "[a-zA-Z0-9._-]{1,40}",
        batch_id in "[a-zA-Z0-9._-]{1,40}",
        payload in proptest::collection::vec(0u8..=255, 0..512),
    ) {
        let req = make_request(pick, tenant, batch_id, payload);
        let framed = req.encode();
        let body = unframe(&framed, DEFAULT_MAX_FRAME).unwrap();
        prop_assert_eq!(Request::decode_body(&body).unwrap(), req);
    }

    #[test]
    fn replies_round_trip_through_the_wire(
        pick in 0u8..=255,
        n in 0u64..=u64::MAX,
        text in "[a-zA-Z0-9 ._:-]{0,120}",
        a in 0u64..=u64::MAX,
        b in 0u64..=u64::MAX,
        c in 0u64..=u64::MAX,
        d in 0u64..=u64::MAX,
    ) {
        let reply = make_reply(pick, n, text, [a, b, c, d]);
        let framed = reply.encode();
        let body = unframe(&framed, DEFAULT_MAX_FRAME).unwrap();
        prop_assert_eq!(Reply::decode_body(&body).unwrap(), reply);
    }

    #[test]
    fn a_reply_body_never_decodes_as_a_request(
        pick in 0u8..=255,
        n in 0u64..=u64::MAX,
        text in "[a-zA-Z0-9 ._:-]{0,120}",
    ) {
        // Kind ranges are disjoint (requests low, replies high), so a
        // desynchronized peer cannot mistake one for the other.
        let body = make_reply(pick, n, text, [n, n, n, n]).encode_body();
        prop_assert!(matches!(
            Request::decode_body(&body),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn garbage_bodies_never_panic_the_decoders(
        body in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let _ = Request::decode_body(&body);
        let _ = Reply::decode_body(&body);
    }
}
