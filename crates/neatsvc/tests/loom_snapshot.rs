//! Loom models for [`neat_svc::SnapshotCell`] and
//! [`neat_svc::AdmissionQueue`].
//!
//! Run with `cargo test -p neat-svc --features loom`. The snapshot
//! models check the double-buffer contract the query path relies on
//! (held views never mutate, epochs never tear); the queue model checks
//! FIFO/no-loss when the state machine is shared behind a lock, which
//! is how a future multi-threaded scanner would have to hold it.
#![cfg(feature = "loom")]

use loom::sync::{Arc, Mutex};
use loom::thread;
use neat_svc::{Admission, AdmissionQueue, QueryView, SnapshotCell};

/// Writer publishes views whose `batches` field always equals the epoch
/// the publish assigns; a racing reader must never observe a view where
/// the two disagree (that would be a torn snapshot) and must see epochs
/// move monotonically.
#[test]
fn readers_never_observe_torn_or_regressing_snapshots() {
    loom::model(|| {
        let cell = Arc::new(SnapshotCell::new());
        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                for i in 1..=4u64 {
                    // Single writer: the i-th publish is assigned epoch i,
                    // so a consistent view always has batches == epoch.
                    let epoch = cell.publish(QueryView {
                        batches: i as usize,
                        ..QueryView::default()
                    });
                    assert_eq!(epoch, i);
                }
            })
        };
        let reader = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                let mut last_epoch = 0u64;
                for _ in 0..8 {
                    let view = cell.load();
                    assert_eq!(
                        view.batches as u64, view.epoch,
                        "view is torn: fields from different publishes"
                    );
                    assert!(view.epoch >= last_epoch, "epochs regressed underfoot");
                    last_epoch = view.epoch;
                }
            })
        };
        writer.join().expect("writer thread");
        reader.join().expect("reader thread");
        assert_eq!(cell.load().epoch, 4);
    });
}

/// A view handed out before a publish keeps its contents after the
/// publish lands on another thread — a swap replaces the pointer, never
/// the pointee.
#[test]
fn held_view_is_immutable_across_a_concurrent_publish() {
    loom::model(|| {
        let cell = Arc::new(SnapshotCell::new());
        cell.publish(QueryView {
            batches: 1,
            flows: 7,
            ..QueryView::default()
        });
        let held = cell.load();
        let publisher = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                cell.publish(QueryView {
                    batches: 2,
                    flows: 99,
                    ..QueryView::default()
                })
            })
        };
        assert_eq!((held.batches, held.flows), (1, 7), "held view mutated");
        publisher.join().expect("publisher thread");
        assert_eq!((held.batches, held.flows), (1, 7), "held view mutated");
        assert_eq!(cell.load().flows, 99);
    });
}

/// Producer and consumer sharing an [`AdmissionQueue`] behind a mutex:
/// everything accepted is popped exactly once, in offer order.
#[test]
fn shared_queue_preserves_fifo_without_loss_or_duplication() {
    loom::model(|| {
        const BATCHES: usize = 6;
        let queue = Arc::new(Mutex::new(AdmissionQueue::new(BATCHES, 0)));
        let producer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                for i in 0..BATCHES {
                    let admitted = queue
                        .lock()
                        .expect("queue lock")
                        .offer(&format!("batch-{i}"));
                    assert_eq!(admitted, Admission::Accepted, "capacity covers every offer");
                }
            })
        };
        let consumer = {
            let queue = Arc::clone(&queue);
            thread::spawn(move || {
                let mut popped = Vec::new();
                while popped.len() < BATCHES {
                    match queue.lock().expect("queue lock").pop() {
                        Some(id) => popped.push(id),
                        None => thread::yield_now(),
                    }
                }
                popped
            })
        };
        producer.join().expect("producer thread");
        let popped = consumer.join().expect("consumer thread");
        let expected: Vec<String> = (0..BATCHES).map(|i| format!("batch-{i}")).collect();
        assert_eq!(
            popped, expected,
            "pops must be FIFO with no loss or duplication"
        );
        assert!(queue.lock().expect("queue lock").is_empty());
    });
}
