//! Spool-directory conventions: atomic handoff, scan, quarantine.
//!
//! Producers hand a batch over by writing it somewhere temporary and
//! renaming it into the spool (exactly what
//! [`write_atomic`](neat_durability::fs::write_atomic) does), so the
//! service never observes a half-written batch: `*.tmp` entries and
//! dotfiles are skipped by [`scan`]. The file name is the batch ID — it
//! becomes the journaled dataset name, which is how replay recognises
//! duplicates after a crash.

use neat_durability::fs::{is_tmp, write_atomic, Fs};
use neat_traj::{io as trajio, Dataset};
use std::fmt;
use std::io;
use std::path::Path;

/// File the quarantine directory accumulates one reason line per
/// quarantined batch in.
pub const QUARANTINE_LOG: &str = "reasons.log";

/// Batch files currently in the spool, sorted by name (the arrival
/// order contract: producers use lexicographically increasing names).
/// `*.tmp` handoffs in flight and dotfiles are ignored.
///
/// # Errors
///
/// Propagates directory listing failures.
pub fn scan<F: Fs>(fs: &F, dir: &Path) -> io::Result<Vec<String>> {
    let mut ids: Vec<String> = fs
        .list(dir)?
        .iter()
        .filter(|p| !is_tmp(p))
        .filter_map(|p| p.file_name().and_then(|n| n.to_str()).map(String::from))
        .filter(|n| !n.starts_with('.') && n != QUARANTINE_LOG)
        .collect();
    ids.sort();
    Ok(ids)
}

/// Atomically submits a batch into the spool under `id` — the
/// producer-side half of the handoff convention.
///
/// # Errors
///
/// `Err(String)` describes serialization or filesystem failure.
pub fn submit<F: Fs>(fs: &F, dir: &Path, id: &str, batch: &Dataset) -> Result<(), String> {
    let mut buf = Vec::new();
    trajio::write_dataset(batch, &mut buf).map_err(|e| format!("encode batch `{id}`: {e}"))?;
    write_atomic(fs, &dir.join(id), &buf).map_err(|e| format!("submit batch `{id}`: {e}"))
}

/// Why a spool batch could not be loaded.
#[derive(Debug)]
pub enum LoadError {
    /// The file disappeared between the directory scan and the open — a
    /// racing writer renamed or removed it (or an operator withdrew it).
    /// Benign: the batch was never really there; skip it.
    Vanished,
    /// Unreadable or malformed batch data — the poison path.
    Bad(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Vanished => write!(f, "batch vanished before load"),
            LoadError::Bad(msg) => write!(f, "{msg}"),
        }
    }
}

/// Loads and parses the spool batch `id`; the dataset is named after
/// the batch ID so the journal records it.
///
/// # Errors
///
/// [`LoadError::Vanished`] when the file no longer exists (a racing
/// writer won between `readdir` and `open` — tolerated, not a failure);
/// [`LoadError::Bad`] for unreadable or malformed batch files — the
/// caller treats those as a batch failure (poison path), not an
/// infrastructure failure.
pub fn load<F: Fs>(fs: &F, dir: &Path, id: &str) -> Result<Dataset, LoadError> {
    let bytes = match fs.read(&dir.join(id)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(LoadError::Vanished),
        Err(e) => return Err(LoadError::Bad(format!("read batch `{id}`: {e}"))),
    };
    trajio::read_dataset(id, io::Cursor::new(bytes))
        .map_err(|e| LoadError::Bad(format!("parse batch `{id}`: {e}")))
}

/// Removes an acknowledged batch file from the spool. A file that is
/// already gone (`ENOENT`) is success: someone else won the race, and
/// the goal — the file not being in the spool — holds.
///
/// # Errors
///
/// Propagates other filesystem failure; recovery reconciles a leftover
/// file by its journaled ID, so the caller may simply restart.
pub fn remove<F: Fs>(fs: &F, dir: &Path, id: &str) -> io::Result<()> {
    match fs.remove_file(&dir.join(id)) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    }
    fs.sync_dir(dir)
}

/// Moves the spool batch `id` into the quarantine directory and appends
/// a reason line to [`QUARANTINE_LOG`]. Quarantined data is never
/// deleted — an operator can inspect, fix and resubmit it.
///
/// Returns `Ok(false)` when the source file vanished before the move (a
/// racing writer took it back) — there is nothing to quarantine and no
/// reason line is written.
///
/// # Errors
///
/// Propagates filesystem failure.
pub fn quarantine<F: Fs>(
    fs: &F,
    spool: &Path,
    qdir: &Path,
    id: &str,
    reason: &str,
) -> io::Result<bool> {
    fs.create_dir_all(qdir)?;
    match fs.rename(&spool.join(id), &qdir.join(id)) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e),
    }
    fs.sync_dir(qdir)?;
    fs.sync_dir(spool)?;
    fs.append(
        &qdir.join(QUARANTINE_LOG),
        format!("{id}\t{reason}\n").as_bytes(),
    )?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_durability::fs::MemFs;
    use neat_rnet::{Point, RoadLocation, SegmentId};
    use neat_traj::{Trajectory, TrajectoryId};
    use std::path::PathBuf;

    fn batch(name: &str) -> Dataset {
        let mut d = Dataset::new(name);
        d.push(
            Trajectory::new(
                TrajectoryId::new(7),
                vec![
                    RoadLocation::new(SegmentId::new(0), Point::new(10.0, 0.0), 0.0),
                    RoadLocation::new(SegmentId::new(0), Point::new(20.0, 0.0), 5.0),
                ],
            )
            .unwrap(),
        );
        d
    }

    #[test]
    fn scan_skips_tmp_and_hidden_entries() {
        let fs = MemFs::new();
        let dir = PathBuf::from("/spool");
        fs.create_dir_all(&dir).unwrap();
        fs.write(&dir.join("b-002.batch"), b"x").unwrap();
        fs.write(&dir.join("b-001.batch"), b"x").unwrap();
        fs.write(&dir.join("b-003.batch.tmp"), b"half").unwrap();
        fs.write(&dir.join(".hidden"), b"x").unwrap();
        assert_eq!(
            scan(&fs, &dir).unwrap(),
            vec!["b-001.batch".to_string(), "b-002.batch".to_string()]
        );
    }

    #[test]
    fn submit_load_round_trips_with_id_as_name() {
        let fs = MemFs::new();
        let dir = PathBuf::from("/spool");
        fs.create_dir_all(&dir).unwrap();
        submit(&fs, &dir, "b-1.batch", &batch("ignored-name")).unwrap();
        let loaded = load(&fs, &dir, "b-1.batch").unwrap();
        assert_eq!(loaded.name(), "b-1.batch");
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.total_points(), 2);
    }

    #[test]
    fn quarantine_moves_file_and_logs_reason() {
        let fs = MemFs::new();
        let (spool, qdir) = (PathBuf::from("/spool"), PathBuf::from("/quarantine"));
        fs.create_dir_all(&spool).unwrap();
        submit(&fs, &spool, "bad.batch", &batch("b")).unwrap();
        quarantine(&fs, &spool, &qdir, "bad.batch", "poison: failed twice").unwrap();
        assert!(scan(&fs, &spool).unwrap().is_empty());
        assert_eq!(scan(&fs, &qdir).unwrap(), vec!["bad.batch".to_string()]);
        let log = String::from_utf8(fs.read(&qdir.join(QUARANTINE_LOG)).unwrap()).unwrap();
        assert!(log.contains("bad.batch\tpoison: failed twice"));
    }

    #[test]
    fn remove_deletes_only_the_acknowledged_batch() {
        let fs = MemFs::new();
        let dir = PathBuf::from("/spool");
        fs.create_dir_all(&dir).unwrap();
        submit(&fs, &dir, "a.batch", &batch("a")).unwrap();
        submit(&fs, &dir, "b.batch", &batch("b")).unwrap();
        remove(&fs, &dir, "a.batch").unwrap();
        assert_eq!(scan(&fs, &dir).unwrap(), vec!["b.batch".to_string()]);
    }

    #[test]
    fn load_of_a_vanished_file_is_the_race_not_poison() {
        let fs = MemFs::new();
        let dir = PathBuf::from("/spool");
        fs.create_dir_all(&dir).unwrap();
        assert!(matches!(
            load(&fs, &dir, "gone.batch"),
            Err(LoadError::Vanished)
        ));
        fs.write(&dir.join("junk.batch"), b"not a dataset").unwrap();
        assert!(matches!(
            load(&fs, &dir, "junk.batch"),
            Err(LoadError::Bad(_))
        ));
    }

    #[test]
    fn remove_tolerates_an_already_gone_file() {
        let fs = MemFs::new();
        let dir = PathBuf::from("/spool");
        fs.create_dir_all(&dir).unwrap();
        remove(&fs, &dir, "never-there.batch").unwrap();
    }

    #[test]
    fn quarantine_of_a_vanished_file_reports_false_and_logs_nothing() {
        let fs = MemFs::new();
        let (spool, qdir) = (PathBuf::from("/spool"), PathBuf::from("/quarantine"));
        fs.create_dir_all(&spool).unwrap();
        assert!(!quarantine(&fs, &spool, &qdir, "gone.batch", "why").unwrap());
        assert!(!fs.exists(&qdir.join(QUARANTINE_LOG)));
    }
}
