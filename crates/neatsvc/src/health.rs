//! Service health: counters, status, and the storage-retry surface.

use crate::queue::Backpressure;
use neat_core::DriftCounts;
use neat_durability::retry::RetryStats;

/// Coarse service state, mapped onto exit codes by the CLI layer
/// (0 = clean, 3 = degraded-but-serving, 4 = unrecoverable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServiceStatus {
    /// Serving; every batch so far applied undegraded.
    #[default]
    Running,
    /// Serving, but something was lost or reduced: a degraded
    /// refinement, a shed or poisoned batch, or a journal repair.
    Degraded,
    /// The supervisor exhausted its restart budget (or recovery itself
    /// failed); the service no longer processes batches.
    Failed,
}

impl ServiceStatus {
    /// Stable kebab-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ServiceStatus::Running => "running",
            ServiceStatus::Degraded => "degraded",
            ServiceStatus::Failed => "failed",
        }
    }
}

/// Monotonic counters the service accumulates; cheap to clone into a
/// report. Filesystem retry statistics are attached by
/// [`Service::health`](crate::service::Service::health) when a probe is
/// installed.
#[derive(Debug, Clone, Default)]
pub struct Health {
    /// Batches admitted into the queue.
    pub accepted: u64,
    /// Admission deferrals (batch stayed in the spool).
    pub deferred: u64,
    /// Batches shed to quarantine under overload.
    pub shed: u64,
    /// Batches applied and journaled.
    pub applied: u64,
    /// Applied batches whose refinement view was degraded.
    pub degraded_batches: u64,
    /// Spool files skipped because their ID was already journaled
    /// (crash replay found them applied).
    pub duplicates_skipped: u64,
    /// Batches quarantined after failing [`poison_after`] times.
    ///
    /// [`poison_after`]: crate::config::SvcConfig::poison_after
    pub poisoned: u64,
    /// Spool files that vanished between the directory scan and the
    /// open — a racing writer renamed or removed them. Benign; counted
    /// for observability only.
    pub spool_races: u64,
    /// Checkpoints written (cadence + final).
    pub checkpoints: u64,
    /// Emergency checkpoints taken because a journal append failed
    /// after a successful in-memory apply (the divergence-window
    /// repair documented on `IncrementalNeat::ingest_logged`).
    pub journal_repairs: u64,
    /// Supervised worker restarts performed.
    pub restarts: u64,
    /// Watermark advances that actually expired or re-refined state
    /// (one per journaled expiry operation).
    pub expiries: u64,
    /// T-fragments removed by retention since the service opened.
    pub expired_fragments: u64,
    /// The subset of [`expiries`](Health::expiries) driven by the
    /// idle-stream wall clock ([`idle_expiry`]) rather than a batch.
    ///
    /// [`idle_expiry`]: crate::config::SvcConfig::idle_expiry
    pub idle_expiries: u64,
    /// Cluster-drift lifecycle totals across all expiries.
    pub drift: DriftCounts,
    /// Journal compactions that completed (checkpoint retention,
    /// forced cadence, or a successful retry).
    pub compactions: u64,
    /// Journal compactions that failed (e.g. ENOSPC mid-rewrite). The
    /// service keeps serving from the old segments and retries with
    /// backoff.
    pub compaction_failures: u64,
    /// Backpressure state of the most recent spool scan.
    pub backpressure: Backpressure,
    /// Most recent worker failure, for diagnostics.
    pub last_error: Option<String>,
    /// Storage-layer retry counters (present when the service was given
    /// a retry probe): transient retries performed and operations that
    /// exhausted their retry budget.
    pub retry: Option<RetryStats>,
}

impl Health {
    /// One-line operator summary.
    pub fn digest(&self) -> String {
        let retry = match &self.retry {
            Some(r) => format!(" fs-retries={} fs-exhausted={}", r.retries, r.exhausted),
            None => String::new(),
        };
        format!(
            "applied={} accepted={} deferred={} shed={} poisoned={} spool-races={} dup-skipped={} \
             degraded={} checkpoints={} journal-repairs={} restarts={} expiries={} \
             idle-expiries={} expired={} \
             drift={} compactions={} compaction-failures={} backpressure={}{}",
            self.applied,
            self.accepted,
            self.deferred,
            self.shed,
            self.poisoned,
            self.spool_races,
            self.duplicates_skipped,
            self.degraded_batches,
            self.checkpoints,
            self.journal_repairs,
            self.restarts,
            self.expiries,
            self.idle_expiries,
            self.expired_fragments,
            self.drift.total(),
            self.compactions,
            self.compaction_failures,
            self.backpressure.name(),
            retry
        )
    }
}
