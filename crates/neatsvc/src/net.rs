//! Framed TCP ingestion front end for the multi-tenant service.
//!
//! Std-only (threads, blocking sockets, no async): [`NetServer`] owns
//! a [`TenantRouter`] behind one lock and serves the
//! [`frame`](crate::frame) protocol — length-prefixed, CRC-checked
//! request frames answered by typed replies. The listener accepts in a
//! non-blocking poll loop (so shutdown is observed promptly), spawns
//! one scoped handler thread per connection, and drives background
//! tenant ticks while idle.
//!
//! # Bulkheads: why a slow client cannot stall a tenant
//!
//! Every connection gets its own handler thread, and the router lock is
//! held only for the duration of one dispatched request — never across
//! a socket read or write. A slowloris client (drip-feeding a frame
//! byte by byte) therefore occupies only its own thread: each `read` is
//! bounded by `read_timeout_ms`, partial progress accumulates in the
//! connection's [`FrameReader`], and once the per-connection idle
//! deadline (through the injected [`Clock`]) expires with no complete
//! frame, the connection is told off and closed. Other tenants' pushes
//! proceed the whole time. A connection cap (`max_conns`) bounds the
//! thread pool; connections over the cap are refused with a `Shed`
//! reply so well-behaved clients back off and retry.
//!
//! # Drain
//!
//! Cancelling the shared token (SIGTERM in the daemon, or a `Drain`
//! frame) stops the accept loop; in-flight connections finish their
//! current request, new pushes are spooled durably and answer `Defer`,
//! handlers close at their next timeout tick, and the caller then takes
//! the router back
//! ([`NetServer::into_router`]) to flush every tenant to a checkpoint.

use crate::frame::{write_frame, FrameReader, Poll, Reply, Request, DEFAULT_MAX_FRAME};
use crate::tenant::TenantRouter;
use neat_durability::fs::Fs;
use neat_runctl::sync::Lock;
use neat_runctl::{CancelToken, Clock, Deadline};
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::Duration;

/// Tuning for the network front end.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Socket read timeout per `read` call (milliseconds) — the
    /// granularity at which handlers notice cancellation and idle
    /// deadlines. Clamped to at least 1.
    pub read_timeout_ms: u64,
    /// Per-connection idle deadline (milliseconds): a connection that
    /// completes no frame for this long is closed (the slowloris
    /// guard). Measured on the injected [`Clock`].
    pub idle_timeout_ms: u64,
    /// Largest accepted frame body, in bytes.
    pub max_frame_bytes: usize,
    /// Concurrent-connection cap (the bulkhead width); connections over
    /// the cap are refused with `Shed`.
    pub max_conns: usize,
    /// Accept-loop poll interval while no connection is pending
    /// (milliseconds); also the cadence of background tenant ticks.
    pub accept_poll_ms: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            read_timeout_ms: 100,
            idle_timeout_ms: 30_000,
            max_frame_bytes: DEFAULT_MAX_FRAME,
            max_conns: 64,
            accept_poll_ms: 25,
        }
    }
}

/// The TCP front end; see the [module docs](self).
pub struct NetServer<'n, F: Fs + Clone + Send> {
    router: Mutex<TenantRouter<'n, F>>,
    cfg: NetConfig,
    clock: Arc<dyn Clock>,
    cancel: CancelToken,
    active: AtomicUsize,
}

impl<'n, F: Fs + Clone + Send> NetServer<'n, F> {
    /// A server over `router`. `cancel` must be (an observer of) the
    /// same token the router's tenants watch, so one cancellation
    /// drains the listener and every tenant together.
    pub fn new(
        router: TenantRouter<'n, F>,
        cfg: NetConfig,
        clock: Arc<dyn Clock>,
        cancel: CancelToken,
    ) -> Self {
        NetServer {
            router: Mutex::new(router),
            cfg,
            clock,
            cancel,
            active: AtomicUsize::new(0),
        }
    }

    /// Takes the router back after [`serve`](Self::serve) returns — the
    /// shutdown path drains tenants through it. Rides through poison
    /// like [`Lock::enter`]: a handler panic cannot brick shutdown.
    pub fn into_router(self) -> TenantRouter<'n, F> {
        self.router
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Connections currently being served (diagnostics/tests).
    pub fn active_conns(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Serves `listener` until the cancel token trips: accepts
    /// connections into scoped handler threads, refuses connections
    /// over the bulkhead cap with `Shed`, and drives background tenant
    /// ticks at least every `accept_poll_ms` (on the injected clock,
    /// whether or not connections keep arriving) so deferred batches
    /// drain without traffic. Returns after every handler thread has
    /// exited.
    ///
    /// # Errors
    ///
    /// Fatal listener failures (the accept loop tolerates
    /// `WouldBlock`/`Interrupted`/connection-reset races).
    pub fn serve(&self, listener: &TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        thread::scope(|s| -> io::Result<()> {
            // Background ticks run on a deadline, not only when accept
            // comes up empty: under a sustained connection stream the
            // WouldBlock arm may never be reached, and idle work
            // (batches dropped straight into spool directories,
            // deferred retries) must still make progress.
            let mut next_tick = Deadline::after(self.clock.as_ref(), self.cfg.accept_poll_ms);
            loop {
                if self.cancel.is_cancelled() {
                    return Ok(());
                }
                if next_tick.expired(self.clock.as_ref()) {
                    self.router.enter().tick_all();
                    next_tick = Deadline::after(self.clock.as_ref(), self.cfg.accept_poll_ms);
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        if self.active.load(Ordering::SeqCst) >= self.cfg.max_conns {
                            Self::refuse(stream);
                            continue;
                        }
                        self.active.fetch_add(1, Ordering::SeqCst);
                        s.spawn(move || {
                            self.handle_conn(stream);
                            self.active.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        let worked = self.router.enter().tick_all();
                        next_tick = Deadline::after(self.clock.as_ref(), self.cfg.accept_poll_ms);
                        if !worked {
                            thread::sleep(Duration::from_millis(self.cfg.accept_poll_ms));
                        }
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::Interrupted
                                | io::ErrorKind::ConnectionAborted
                                | io::ErrorKind::ConnectionReset
                        ) => {}
                    Err(e) => return Err(e),
                }
            }
        })
    }

    /// Best-effort `Shed` to a connection refused by the bulkhead cap.
    fn refuse(mut stream: TcpStream) {
        let _ = write_frame(&mut stream, &Reply::Shed.encode_body());
    }

    /// Serves one connection until EOF, idle expiry, drain, or a
    /// framing error. Never holds the router lock across socket I/O.
    fn handle_conn(&self, mut stream: TcpStream) {
        let read_timeout = Duration::from_millis(self.cfg.read_timeout_ms.max(1));
        if stream.set_read_timeout(Some(read_timeout)).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let mut reader = FrameReader::new(self.cfg.max_frame_bytes);
        let mut idle = Deadline::after(self.clock.as_ref(), self.cfg.idle_timeout_ms);
        loop {
            match reader.poll(&mut stream) {
                Ok(Poll::Frame(body)) => {
                    idle = Deadline::after(self.clock.as_ref(), self.cfg.idle_timeout_ms);
                    let reply = match Request::decode_body(&body) {
                        Ok(req) => self.dispatch(req),
                        Err(e) => {
                            // The frame was intact but the body wasn't a
                            // request; reject and close — request/reply
                            // pairing can no longer be trusted.
                            let reject = Reply::Reject {
                                reason: format!("malformed request: {e}"),
                            };
                            let _ = write_frame(&mut stream, &reject.encode_body());
                            return;
                        }
                    };
                    if write_frame(&mut stream, &reply.encode_body()).is_err() {
                        return;
                    }
                }
                // The idle deadline is *frame* progress, so both
                // non-frame outcomes fall through to the same guards:
                // a client dripping bytes faster than the socket
                // timeout (every poll returns `Pending`, `TimedOut`
                // never fires) must trip the idle deadline and release
                // its bulkhead slot exactly like a silent one.
                Ok(Poll::Pending) | Ok(Poll::TimedOut) => {
                    if self.cancel.is_cancelled() {
                        // Draining: nothing complete is in flight, so
                        // close so the listener can finish.
                        return;
                    }
                    if idle.expired(self.clock.as_ref()) {
                        let reject = Reply::Reject {
                            reason: "idle timeout: no complete frame within deadline".to_string(),
                        };
                        let _ = write_frame(&mut stream, &reject.encode_body());
                        return;
                    }
                }
                Ok(Poll::Eof { .. }) => return,
                Err(e) => {
                    // Torn/corrupt framing: the stream is desynchronized.
                    let reject = Reply::Reject {
                        reason: format!("framing error: {e}"),
                    };
                    let _ = write_frame(&mut stream, &reject.encode_body());
                    return;
                }
            }
        }
    }

    /// Routes one decoded request through the tenant layer. Each arm
    /// holds the router lock only while the router call runs — all
    /// socket I/O happens outside.
    fn dispatch(&self, req: Request) -> Reply {
        match req {
            Request::Push {
                tenant,
                batch_id,
                payload,
            } => {
                let reply = self.router.enter().push(&tenant, &batch_id, &payload);
                reply
            }
            Request::Status { tenant } => {
                let reply = self.router.enter().status(&tenant);
                reply
            }
            Request::Drain => {
                // Ack with the highest published epoch, then trip the
                // token: the listener stops accepting and the daemon
                // flushes every tenant.
                let epoch = self.router.enter().max_epoch();
                self.cancel.cancel();
                Reply::Ack { epoch }
            }
        }
    }
}
