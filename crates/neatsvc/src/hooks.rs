//! Fault-injection hooks: the seams the chaos harness drives.
//!
//! The service calls [`FaultHook::at`] at every state-machine edge. The
//! production hook ([`NoFaults`]) does nothing; a test hook can panic
//! (simulating a worker crash at exactly that edge), cancel a token, or
//! record the visit order. The hook lives *outside* the library's
//! panic-freedom obligation — the service never panics itself, it only
//! survives panics injected through this seam (or through a faulty
//! [`Fs`](neat_durability::fs::Fs)).

/// One edge of the worker state machine, in tick order.
///
/// The supervisor guarantees that a crash *between* any two edges
/// recovers to a state byte-identical to an uninterrupted run (see
/// `tests/service_chaos.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// Before the spool directory is scanned.
    SpoolScan,
    /// After admission decisions (accept/defer/shed) for this scan.
    Admit,
    /// Before `ingest_controlled` runs on the popped batch.
    IngestStart,
    /// After the batch was folded into in-memory state, before the
    /// journal append — the divergence window documented on
    /// `IncrementalNeat::ingest_logged`.
    Applied,
    /// After the journal append, before the spool file is removed — a
    /// crash here must not double-apply the batch on restart.
    Journaled,
    /// After the spool file was removed.
    SpoolRemoved,
    /// After the query snapshot swapped to the new epoch.
    Published,
    /// Before a cadence (or final) checkpoint is written.
    CheckpointStart,
    /// After the checkpoint landed.
    CheckpointDone,
    /// After recovery (resume + spool reconciliation) completed.
    Recovered,
}

impl Edge {
    /// Every edge, in tick order — the chaos matrix iterates this.
    pub const ALL: [Edge; 10] = [
        Edge::SpoolScan,
        Edge::Admit,
        Edge::IngestStart,
        Edge::Applied,
        Edge::Journaled,
        Edge::SpoolRemoved,
        Edge::Published,
        Edge::CheckpointStart,
        Edge::CheckpointDone,
        Edge::Recovered,
    ];

    /// Stable kebab-case name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Edge::SpoolScan => "spool-scan",
            Edge::Admit => "admit",
            Edge::IngestStart => "ingest-start",
            Edge::Applied => "applied",
            Edge::Journaled => "journaled",
            Edge::SpoolRemoved => "spool-removed",
            Edge::Published => "published",
            Edge::CheckpointStart => "checkpoint-start",
            Edge::CheckpointDone => "checkpoint-done",
            Edge::Recovered => "recovered",
        }
    }
}

/// Observer of state-machine edges; the chaos harness's injection seam.
pub trait FaultHook: Send + Sync {
    /// Called at each [`Edge`]. May panic (the supervisor catches it)
    /// or trigger cancellation as a side effect.
    fn at(&self, edge: Edge);
}

/// The production hook: does nothing at every edge.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {
    fn at(&self, _edge: Edge) {}
}
