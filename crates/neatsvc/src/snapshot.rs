//! Epoch-tagged query snapshots with atomic swap.
//!
//! The worker publishes a fully built [`QueryView`] after each applied
//! batch; readers load the current [`std::sync::Arc`] and keep a
//! consistent view for as long as they hold it — a concurrent swap never
//! mutates a view in place, so a query can never observe a half-applied
//! batch. This is the classic double-buffer: the next view is
//! constructed entirely off to the side, then swapped in one pointer
//! store under a short critical section.

use neat_core::{DriftEvent, TrajectoryCluster};
use neat_runctl::Lock;
use std::sync::{Arc, Mutex};

/// One immutable, consistent answer to "what are the clusters right now".
#[derive(Debug, Clone, Default)]
pub struct QueryView {
    /// Monotonic publish counter; bumps exactly once per swap.
    pub epoch: u64,
    /// Batches folded into this view.
    pub batches: usize,
    /// Retained flow clusters backing the view.
    pub flows: usize,
    /// Current trajectory clusters.
    pub clusters: Vec<TrajectoryCluster>,
    /// Whether the refinement producing this view was degraded
    /// (opt→flow→base ladder or truncation).
    pub degraded: bool,
    /// Retention watermark in effect when this view was built (`None`
    /// until the first expiry, or when no window is configured).
    pub watermark: Option<f64>,
    /// T-fragments retained across all flows at publish time.
    pub live_fragments: usize,
    /// Cluster-drift events emitted by the expiry folded into this view
    /// (empty when the watermark did not advance).
    pub drift: Vec<DriftEvent>,
}

/// The swap cell readers and the worker share.
#[derive(Debug, Default)]
pub struct SnapshotCell {
    current: Mutex<Arc<QueryView>>,
}

impl SnapshotCell {
    /// An empty cell at epoch 0.
    pub fn new() -> Self {
        SnapshotCell::default()
    }

    /// Atomically swaps in `view`, stamping it with the next epoch.
    /// Returns the epoch assigned.
    pub fn publish(&self, mut view: QueryView) -> u64 {
        let mut cur = self.current.enter();
        view.epoch = cur.epoch + 1;
        let epoch = view.epoch;
        *cur = Arc::new(view);
        epoch
    }

    /// The current view; the returned handle stays consistent even if a
    /// newer epoch is published while it is held.
    pub fn load(&self) -> Arc<QueryView> {
        Arc::clone(&self.current.enter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_increment_per_publish() {
        let cell = SnapshotCell::new();
        assert_eq!(cell.load().epoch, 0);
        assert_eq!(cell.publish(QueryView::default()), 1);
        assert_eq!(
            cell.publish(QueryView {
                batches: 2,
                ..QueryView::default()
            }),
            2
        );
        let v = cell.load();
        assert_eq!((v.epoch, v.batches), (2, 2));
    }

    #[test]
    fn held_view_survives_later_publishes() {
        let cell = SnapshotCell::new();
        cell.publish(QueryView {
            batches: 1,
            ..QueryView::default()
        });
        let held = cell.load();
        cell.publish(QueryView {
            batches: 9,
            ..QueryView::default()
        });
        assert_eq!(held.batches, 1, "reader's view must not mutate underfoot");
        assert_eq!(cell.load().batches, 9);
    }
}
