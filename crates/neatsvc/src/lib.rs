//! `neat-svc` — a single-process supervised streaming clustering service.
//!
//! The NEAT paper motivates its phase split with "online processing of
//! moving-object trajectories"; this crate assembles the workspace's
//! robustness pieces into the continuously ingesting daemon that claim
//! implies:
//!
//! * **Spool ingestion** ([`spool`]): trajectory batches arrive as files
//!   in a watched directory, handed over by atomic rename per the
//!   `durability::Fs` conventions (`*.tmp` strays are ignored).
//! * **Admission control** ([`queue`]): a bounded queue with explicit
//!   backpressure states — accept → defer → shed-to-quarantine.
//! * **Controlled worker** ([`service`]): each admitted batch runs
//!   through [`IncrementalNeat::ingest_controlled`] under a per-batch
//!   deadline/op budget; overload degrades along the opt→flow→base
//!   ladder instead of stalling the queue.
//! * **Durability**: applied batches are journaled (the batch ID is the
//!   journaled dataset name), snapshots land on a configurable cadence,
//!   and duplicate spool files are recognised and skipped after a crash.
//! * **Query snapshots** ([`snapshot`]): cluster queries are answered
//!   from an epoch-tagged view that swaps atomically, so readers never
//!   observe a half-applied batch.
//! * **Supervision** ([`service::Service`]): worker panics and
//!   infrastructure errors trigger recovery from the latest checkpoint +
//!   journal; batches that fail repeatedly are quarantined as poison
//!   instead of wedging the queue.
//!
//! Everything is driven through injected `Fs`/`Clock`/fault hooks, so
//! the kill-restart chaos harness (`tests/service_chaos.rs` at the
//! workspace root) can murder the service at every state-machine edge
//! and assert byte-identical recovery.
//!
//! [`IncrementalNeat::ingest_controlled`]: neat_core::incremental::IncrementalNeat::ingest_controlled

pub mod config;
pub mod frame;
pub mod health;
pub mod hooks;
pub mod net;
pub mod queue;
pub mod service;
pub mod snapshot;
pub mod spool;
pub mod tenant;

pub use config::SvcConfig;
pub use frame::{FrameError, FrameReader, Reply, Request, StatusReport};
pub use health::{Health, ServiceStatus};
pub use hooks::{Edge, FaultHook, NoFaults};
pub use net::{NetConfig, NetServer};
pub use queue::{Admission, AdmissionQueue, Backpressure};
pub use service::{DrainOutcome, Service, SvcError, TickOutcome};
pub use snapshot::{QueryView, SnapshotCell};
pub use tenant::{BreakerState, CircuitBreaker, TenantConfig, TenantRouter};
