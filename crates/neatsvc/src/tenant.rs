//! The multi-tenant layer: one supervised clusterer per tenant, a
//! per-tenant circuit breaker, and wire-visible backpressure.
//!
//! A *tenant* is a road-network region with its own clustering state —
//! the graph-based clustering literature scopes cluster structure to a
//! network region, and operationally each region gets its own
//! [`Service`] state machine (spool, admission queue, checkpoint store,
//! quarantine and restart budget) under the shared `catch_unwind`
//! supervisor. Tenants live in subdirectories of the configured roots:
//! `<spool_root>/<tenant>`, `<state_root>/<tenant>`,
//! `<quarantine_root>/<tenant>`.
//!
//! [`TenantRouter`] is the single-writer owner of every tenant state
//! machine. The network listener serializes access to it through one
//! lock ([`net`](crate::net)); connection handlers never touch tenant
//! state directly, which is what makes a stalled client harmless — it
//! stalls in its own reader thread, not under the router lock.
//!
//! # Backpressure ladder on the wire
//!
//! A push maps the admission ladder onto typed replies: applied →
//! [`Reply::Ack`]; durable-but-pending → [`Reply::Defer`] with a
//! retry hint drawn from the same [`JitterBackoff`] schedule `neat
//! push` paces itself with; overload → [`Reply::Shed`] (dropped before
//! becoming durable, so the spool stays bounded); invalid, poison or
//! breaker-open → [`Reply::Reject`].
//!
//! # Circuit breaker
//!
//! Each tenant carries a [`CircuitBreaker`]: repeated push-visible
//! failures (poison quarantines, restart-budget exhaustion) trip it
//! open and pushes are rejected outright; after a hold drawn from a
//! growing jitter schedule it half-opens, letting one push probe the
//! tenant — success closes it, failure re-trips with a longer hold.

use crate::config::SvcConfig;
use crate::frame::{Reply, StatusReport};
use crate::health::{Health, ServiceStatus};
use crate::hooks::NoFaults;
use crate::service::{DrainOutcome, Service, TickOutcome};
use crate::spool;
use neat_durability::fnv64;
use neat_durability::fs::{write_atomic, Fs};
use neat_durability::retry::{JitterBackoff, NoSleep};
use neat_rnet::RoadNetwork;
use neat_runctl::{CancelToken, Clock};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of the tenant layer.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Template service configuration. The three directories are
    /// *roots*: each tenant gets `<root>/<tenant>`.
    pub roots: SvcConfig,
    /// Maximum number of tenants the router will materialize.
    pub max_tenants: usize,
    /// Consecutive push-visible failures before the breaker opens.
    pub breaker_threshold: u32,
    /// Base of the breaker's open-hold jitter schedule (milliseconds).
    pub breaker_base_ms: u64,
    /// Cap of the breaker's open-hold jitter schedule (milliseconds).
    pub breaker_max_ms: u64,
    /// Base of the `Defer` retry-hint schedule (milliseconds).
    pub defer_base_ms: u64,
    /// Cap of the `Defer` retry-hint schedule (milliseconds).
    pub defer_max_ms: u64,
    /// Supervised ticks one push may spend driving the tenant before
    /// answering `Defer`.
    pub push_tick_budget: u64,
    /// Seed for the per-tenant jitter schedules (each tenant derives
    /// its own stream from this and its name).
    pub seed: u64,
}

impl TenantConfig {
    /// Defaults around `roots`: 16 tenants, breaker after 3 failures
    /// holding 500 ms–60 s, defer hints 25 ms–2 s, 64 ticks per push.
    pub fn new(roots: SvcConfig) -> Self {
        TenantConfig {
            roots,
            max_tenants: 16,
            breaker_threshold: 3,
            breaker_base_ms: 500,
            breaker_max_ms: 60_000,
            defer_base_ms: 25,
            defer_max_ms: 2_000,
            push_tick_budget: 64,
            seed: 42,
        }
    }
}

/// `true` when `name` is usable as a tenant or batch identifier: ASCII
/// alphanumerics plus `.`/`_`/`-`, no leading dot, no `.tmp` suffix,
/// never the quarantine log name — so it can never escape its
/// directory, collide with spool conventions, or hide from `scan`.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 120
        && !name.starts_with('.')
        && !name.ends_with(".tmp")
        && name != spool::QUARANTINE_LOG
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy; pushes flow.
    Closed,
    /// Tripped; pushes are rejected until the hold expires.
    Open,
    /// Hold expired; the next push probes the tenant.
    HalfOpen,
}

impl BreakerState {
    /// Stable kebab-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Per-tenant circuit breaker: `Closed --threshold failures--> Open
/// --hold elapses--> HalfOpen --probe success--> Closed` (probe failure
/// re-trips with the next, longer hold from the jitter schedule).
///
/// Time enters only through the `now_ms` arguments — the caller reads
/// the injected [`Clock`] — so the state machine is fully deterministic
/// under test.
#[derive(Debug)]
pub struct CircuitBreaker {
    state: BreakerState,
    failures: u32,
    threshold: u32,
    trips: u64,
    open_until_ms: u64,
    schedule: JitterBackoff<NoSleep>,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive failures
    /// (clamped to at least 1), holding open for delays drawn from
    /// `schedule` (attempt = trip count, so holds grow per trip).
    pub fn new(threshold: u32, schedule: JitterBackoff<NoSleep>) -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            failures: 0,
            threshold: threshold.max(1),
            trips: 0,
            open_until_ms: 0,
            schedule,
        }
    }

    /// Whether a push may proceed at `now_ms`; an expired hold moves
    /// the breaker to [`BreakerState::HalfOpen`] and admits the probe.
    pub fn admits(&mut self, now_ms: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now_ms >= self.open_until_ms {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// A push succeeded: close and reset.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.failures = 0;
    }

    /// A push-visible failure at `now_ms`: counts toward the threshold;
    /// at the threshold (or on a failed half-open probe) the breaker
    /// trips open for the next hold in the schedule.
    pub fn on_failure(&mut self, now_ms: u64) {
        self.failures = self.failures.saturating_add(1);
        if self.state == BreakerState::HalfOpen || self.failures >= self.threshold {
            self.trips = self.trips.saturating_add(1);
            let attempt = u32::try_from(self.trips).unwrap_or(u32::MAX);
            let hold = self.schedule.next_delay(attempt);
            let hold_ms = u64::try_from(hold.as_millis()).unwrap_or(u64::MAX).max(1);
            self.open_until_ms = now_ms.saturating_add(hold_ms);
            self.state = BreakerState::Open;
            self.failures = 0;
        }
    }

    /// Current state (does not advance the open→half-open transition).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Milliseconds until the hold expires (0 when not open).
    pub fn retry_after_ms(&self, now_ms: u64) -> u64 {
        self.open_until_ms.saturating_sub(now_ms)
    }
}

/// One tenant: its supervised service plus breaker and hint schedule.
struct Tenant<'n, F: Fs + Clone> {
    svc: Service<'n, F>,
    breaker: CircuitBreaker,
    defer_hint: JitterBackoff<NoSleep>,
    defer_streak: u32,
    spool_dir: PathBuf,
    quarantine_dir: PathBuf,
}

/// Owner of every tenant state machine; see the [module docs](self).
pub struct TenantRouter<'n, F: Fs + Clone> {
    net: &'n RoadNetwork,
    fs: F,
    cfg: TenantConfig,
    clock: Arc<dyn Clock>,
    cancel: CancelToken,
    tenants: BTreeMap<String, Tenant<'n, F>>,
}

impl<'n, F: Fs + Clone> TenantRouter<'n, F> {
    /// A router with no tenants yet; tenants materialize lazily on
    /// first push/status. Tenant services observe `cancel`, so
    /// cancelling it drains every tenant.
    pub fn new(
        net: &'n RoadNetwork,
        fs: F,
        cfg: TenantConfig,
        clock: Arc<dyn Clock>,
        cancel: CancelToken,
    ) -> Self {
        TenantRouter {
            net,
            fs,
            cfg,
            clock,
            cancel,
            tenants: BTreeMap::new(),
        }
    }

    /// The cancellation token tenant services observe.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Materializes `name` if valid and under the tenant limit.
    fn ensure_tenant(&mut self, name: &str) -> Result<(), Reply> {
        if !valid_name(name) {
            return Err(Reply::Reject {
                reason: format!("invalid tenant name `{name}`"),
            });
        }
        if self.tenants.contains_key(name) {
            return Ok(());
        }
        if self.tenants.len() >= self.cfg.max_tenants {
            return Err(Reply::Reject {
                reason: format!("tenant limit ({}) reached", self.cfg.max_tenants),
            });
        }
        let mut scfg = self.cfg.roots.clone();
        scfg.spool_dir = scfg.spool_dir.join(name);
        scfg.state_dir = scfg.state_dir.join(name);
        scfg.quarantine_dir = scfg.quarantine_dir.join(name);
        let spool_dir = scfg.spool_dir.clone();
        let quarantine_dir = scfg.quarantine_dir.clone();
        let svc = Service::open_with(
            self.net,
            scfg,
            self.fs.clone(),
            Arc::new(NoFaults),
            Some(Arc::clone(&self.clock)),
            self.cancel.observer(),
        )
        .map_err(|e| Reply::Reject {
            reason: format!("tenant `{name}` failed to open: {e}"),
        })?;
        // Each tenant gets its own deterministic jitter streams, derived
        // from the router seed and the tenant name.
        let tseed = self.cfg.seed ^ fnv64(name.as_bytes());
        let breaker = CircuitBreaker::new(
            self.cfg.breaker_threshold,
            JitterBackoff::with_sleeper(
                tseed,
                Duration::from_millis(self.cfg.breaker_base_ms),
                Duration::from_millis(self.cfg.breaker_max_ms),
                NoSleep,
            ),
        );
        let defer_hint = JitterBackoff::with_sleeper(
            tseed.rotate_left(32),
            Duration::from_millis(self.cfg.defer_base_ms),
            Duration::from_millis(self.cfg.defer_max_ms),
            NoSleep,
        );
        self.tenants.insert(
            name.to_string(),
            Tenant {
                svc,
                breaker,
                defer_hint,
                defer_streak: 0,
                spool_dir,
                quarantine_dir,
            },
        );
        Ok(())
    }

    /// Routes one push end-to-end and produces the wire reply. See the
    /// [module docs](self) for the reply ladder.
    pub fn push(&mut self, tenant: &str, batch_id: &str, payload: &[u8]) -> Reply {
        if !valid_name(batch_id) {
            return Reply::Reject {
                reason: format!("invalid batch id `{batch_id}`"),
            };
        }
        if let Err(reject) = self.ensure_tenant(tenant) {
            return reject;
        }
        let fs = self.fs.clone();
        let now = self.clock.now_millis();
        let draining = self.cancel.is_cancelled();
        let tick_budget = self.cfg.push_tick_budget;
        let (capacity, backlog) = (self.cfg.roots.queue_capacity, self.cfg.roots.shed_backlog);
        let Some(t) = self.tenants.get_mut(tenant) else {
            return Reply::Reject {
                reason: "tenant map invariant violated".to_string(),
            };
        };

        if t.svc.status() == ServiceStatus::Failed {
            t.breaker.on_failure(now);
            return Reply::Reject {
                reason: format!("tenant `{tenant}` unrecoverable: restart budget exhausted"),
            };
        }
        if !t.breaker.admits(now) {
            return Reply::Reject {
                reason: format!(
                    "circuit open for tenant `{tenant}`; retry in ~{} ms",
                    t.breaker.retry_after_ms(now)
                ),
            };
        }
        // Idempotency: an already-journaled batch ID is acknowledged
        // without re-applying (the duplicate-send path after a crashed
        // or retried push).
        if t.svc.is_applied(batch_id) {
            return Reply::Ack {
                epoch: t.svc.query().epoch,
            };
        }
        // Wire-edge backpressure, mirroring the admission ladder over
        // the spool backlog so a flooding producer cannot grow the
        // spool without bound.
        let pending = match spool::scan(&fs, &t.spool_dir) {
            Ok(ids) => ids.len(),
            Err(e) => {
                return Reply::Reject {
                    reason: format!("spool scan failed: {e}"),
                }
            }
        };
        if pending >= capacity + backlog {
            return Reply::Shed;
        }
        if pending >= capacity {
            let hint = Self::defer_hint_ms(t);
            return Reply::Defer {
                retry_after_ms: hint,
            };
        }
        if let Err(e) = write_atomic(&fs, &t.spool_dir.join(batch_id), payload) {
            return Reply::Reject {
                reason: format!("spool write failed: {e}"),
            };
        }
        if draining {
            // Graceful drain: the batch is spooled first, so the
            // `Defer` durability contract holds — it survives the
            // shutdown and the restarted server applies it — but no
            // new drive work starts; the client's retry gets its `Ack`
            // (from the restart, or as a journaled duplicate).
            let hint = Self::defer_hint_ms(t);
            return Reply::Defer {
                retry_after_ms: hint,
            };
        }

        let before = t.svc.health();
        let outcome = t.svc.run_drain(tick_budget);
        let after = t.svc.health();

        if t.svc.is_applied(batch_id) {
            t.breaker.on_success();
            t.defer_streak = 0;
            return Reply::Ack {
                epoch: t.svc.query().epoch,
            };
        }
        if after.poisoned > before.poisoned && fs.exists(&t.quarantine_dir.join(batch_id)) {
            t.breaker.on_failure(now);
            return Reply::Reject {
                reason: format!("batch `{batch_id}` quarantined as poison after repeated failures"),
            };
        }
        if outcome == DrainOutcome::Failed || t.svc.status() == ServiceStatus::Failed {
            t.breaker.on_failure(now);
            return Reply::Reject {
                reason: format!("tenant `{tenant}` unrecoverable: restart budget exhausted"),
            };
        }
        if after.shed > before.shed && fs.exists(&t.quarantine_dir.join(batch_id)) {
            return Reply::Shed;
        }
        // Still spooled: durable but not applied (tick budget spent or
        // a drain began mid-drive). The hint grows with the streak.
        let hint = Self::defer_hint_ms(t);
        Reply::Defer {
            retry_after_ms: hint,
        }
    }

    /// Draws the next defer hint for `t`, growing its streak.
    fn defer_hint_ms(t: &mut Tenant<'n, F>) -> u64 {
        t.defer_streak = t.defer_streak.saturating_add(1);
        let d = t.defer_hint.next_delay(t.defer_streak);
        u64::try_from(d.as_millis()).unwrap_or(u64::MAX).max(1)
    }

    /// Answers a status query for `tenant` (materializing it if
    /// needed, so a freshly restarted daemon can be queried about any
    /// tenant that exists on disk).
    pub fn status(&mut self, tenant: &str) -> Reply {
        if let Err(reject) = self.ensure_tenant(tenant) {
            return reject;
        }
        let Some(t) = self.tenants.get(tenant) else {
            return Reply::Reject {
                reason: "tenant map invariant violated".to_string(),
            };
        };
        let h = t.svc.health();
        let view = t.svc.query();
        Reply::Report(Box::new(StatusReport {
            tenant: tenant.to_string(),
            status: t.svc.status().name().to_string(),
            breaker: t.breaker.state().name().to_string(),
            breaker_trips: t.breaker.trips(),
            accepted: h.accepted,
            deferred: h.deferred,
            shed: h.shed,
            poisoned: h.poisoned,
            applied: h.applied,
            batches: view.batches as u64,
            duplicates: h.duplicates_skipped,
            restarts: h.restarts,
            last_epoch: view.epoch,
            watermark_bits: view.watermark.map(f64::to_bits),
            live_fragments: view.live_fragments as u64,
            expiries: h.expiries,
            drift: h.drift,
            compactions: h.compactions,
            compaction_failures: h.compaction_failures,
        }))
    }

    /// One supervised tick across every tenant (watch-mode idle work:
    /// batches dropped straight into spool directories, deferred
    /// retries). `true` when any tenant made progress.
    pub fn tick_all(&mut self) -> bool {
        let mut worked = false;
        for t in self.tenants.values_mut() {
            if t.svc.tick() == TickOutcome::Worked {
                worked = true;
            }
        }
        worked
    }

    /// Drains every tenant (up to `max_ticks` supervised steps each) —
    /// the shutdown flush. With the shared token cancelled, each
    /// service checkpoints pending state and stops.
    pub fn drain_all(&mut self, max_ticks: u64) -> Vec<(String, DrainOutcome)> {
        self.tenants
            .iter_mut()
            .map(|(name, t)| (name.clone(), t.svc.run_drain(max_ticks)))
            .collect()
    }

    /// The highest query-view epoch across tenants.
    pub fn max_epoch(&self) -> u64 {
        self.tenants
            .values()
            .map(|t| t.svc.query().epoch)
            .max()
            .unwrap_or(0)
    }

    /// The worst status across tenants — the daemon's exit-code input
    /// (`Running` < `Degraded` < `Failed`).
    pub fn worst_status(&self) -> ServiceStatus {
        let mut worst = ServiceStatus::Running;
        for t in self.tenants.values() {
            match t.svc.status() {
                ServiceStatus::Failed => return ServiceStatus::Failed,
                ServiceStatus::Degraded => worst = ServiceStatus::Degraded,
                ServiceStatus::Running => {}
            }
        }
        worst
    }

    /// Names of the materialized tenants.
    pub fn tenant_names(&self) -> Vec<String> {
        self.tenants.keys().cloned().collect()
    }

    /// The tenant's health report, when materialized.
    pub fn health_of(&self, tenant: &str) -> Option<Health> {
        self.tenants.get(tenant).map(|t| t.svc.health())
    }

    /// Read access to a tenant's service (fingerprints, query views).
    pub fn service_of(&self, tenant: &str) -> Option<&Service<'n, F>> {
        self.tenants.get(tenant).map(|t| &t.svc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_core::NeatConfig;
    use neat_durability::fs::MemFs;
    use neat_rnet::netgen::chain_network;
    use neat_rnet::{Point, RoadLocation, SegmentId};
    use neat_runctl::OpClock;
    use neat_traj::{io as trajio, Dataset, Trajectory, TrajectoryId};

    fn network() -> RoadNetwork {
        chain_network(6, 100.0, 13.9)
    }

    fn roots() -> SvcConfig {
        let mut c = SvcConfig::new("/spool", "/state", "/quarantine");
        c.neat = NeatConfig {
            min_card: 1,
            ..NeatConfig::default()
        };
        c.checkpoint_every_batches = 2;
        c
    }

    fn payload(seed: u64) -> Vec<u8> {
        let mut d = Dataset::new("b");
        let off = (seed % 40) as f64;
        d.push(
            Trajectory::new(
                TrajectoryId::new(seed),
                vec![
                    RoadLocation::new(SegmentId::new(0), Point::new(10.0 + off, 0.0), 0.0),
                    RoadLocation::new(SegmentId::new(1), Point::new(150.0, 0.0), 30.0),
                    RoadLocation::new(SegmentId::new(2), Point::new(250.0, 0.0), 60.0),
                ],
            )
            .unwrap(),
        );
        let mut buf = Vec::new();
        trajio::write_dataset(&d, &mut buf).unwrap();
        buf
    }

    fn router(net: &RoadNetwork, fs: MemFs) -> TenantRouter<'_, MemFs> {
        TenantRouter::new(
            net,
            fs,
            TenantConfig::new(roots()),
            Arc::new(OpClock::new(1)),
            CancelToken::new(),
        )
    }

    fn schedule(seed: u64) -> JitterBackoff<NoSleep> {
        JitterBackoff::with_sleeper(
            seed,
            Duration::from_millis(100),
            Duration::from_millis(400),
            NoSleep,
        )
    }

    #[test]
    fn breaker_trips_holds_half_opens_and_recloses() {
        let mut b = CircuitBreaker::new(2, schedule(7));
        assert!(b.admits(0));
        b.on_failure(0);
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        b.on_failure(0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.admits(0), "open breaker rejects");
        let hold = b.retry_after_ms(0);
        assert!(hold >= 1);
        assert!(b.admits(hold), "expired hold half-opens");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A failed probe re-trips immediately…
        b.on_failure(hold);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // …and an eventual successful probe closes it.
        let hold2 = hold + b.retry_after_ms(hold);
        assert!(b.admits(hold2));
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admits(hold2));
    }

    #[test]
    fn name_validation_blocks_traversal_and_spool_conventions() {
        for good in ["sj", "atl-north", "b-001.batch", "A_b.9"] {
            assert!(valid_name(good), "{good}");
        }
        for bad in [
            "",
            ".",
            "..",
            "../escape",
            "a/b",
            "a\\b",
            ".hidden",
            "half.tmp",
            "reasons.log",
            "null\0byte",
        ] {
            assert!(!valid_name(bad), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn push_applies_and_duplicate_push_acks_without_reapply() {
        let net = network();
        let mut r = router(&net, MemFs::new());
        let p = payload(1);
        let first = r.push("sj", "b-001.batch", &p);
        let Reply::Ack { epoch } = first else {
            panic!("expected ack, got {first:?}");
        };
        assert!(epoch >= 1);
        let again = r.push("sj", "b-001.batch", &p);
        assert!(matches!(again, Reply::Ack { .. }), "{again:?}");
        let h = r.health_of("sj").unwrap();
        assert_eq!(h.applied, 1, "duplicate send must not re-apply");
    }

    #[test]
    fn tenants_are_isolated_directories_and_states() {
        let net = network();
        let fs = MemFs::new();
        let mut r = router(&net, fs.clone());
        assert!(matches!(
            r.push("sj", "b-1", &payload(1)),
            Reply::Ack { .. }
        ));
        assert!(matches!(
            r.push("atl", "b-1", &payload(2)),
            Reply::Ack { .. }
        ));
        assert_eq!(r.health_of("sj").unwrap().applied, 1);
        assert_eq!(r.health_of("atl").unwrap().applied, 1);
        assert_eq!(r.tenant_names(), vec!["atl".to_string(), "sj".to_string()]);
        assert!(
            fs.exists(std::path::Path::new("/state/sj/checkpoint.snap"))
                || !fs.exists(std::path::Path::new("/state/checkpoint.snap"))
        );
    }

    #[test]
    fn invalid_names_are_rejected_before_any_io() {
        let net = network();
        let mut r = router(&net, MemFs::new());
        assert!(matches!(
            r.push("../etc", "b-1", &payload(1)),
            Reply::Reject { .. }
        ));
        assert!(matches!(
            r.push("sj", "../../sneaky", &payload(1)),
            Reply::Reject { .. }
        ));
        assert!(matches!(r.status(".hidden"), Reply::Reject { .. }));
    }

    #[test]
    fn poison_storm_trips_the_breaker_to_reject() {
        let net = network();
        let fs = MemFs::new();
        let mut cfg = TenantConfig::new(roots());
        cfg.breaker_threshold = 2;
        let mut r = TenantRouter::new(&net, fs, cfg, Arc::new(OpClock::new(1)), CancelToken::new());
        // Garbage payloads: each push fails twice inside its own drive
        // (poison_after = 2) and lands in quarantine → Reject.
        let one = r.push("sj", "bad-1", b"definitely not a dataset");
        assert!(matches!(one, Reply::Reject { .. }), "{one:?}");
        let two = r.push("sj", "bad-2", b"also garbage");
        assert!(matches!(two, Reply::Reject { .. }), "{two:?}");
        // Threshold reached: the breaker is open, and even a valid
        // batch is rejected without touching the tenant.
        let blocked = r.push("sj", "good-1", &payload(9));
        let Reply::Reject { reason } = blocked else {
            panic!("expected breaker rejection");
        };
        assert!(reason.contains("circuit open"), "{reason}");
        // Another tenant is unaffected — bulkhead isolation.
        assert!(matches!(
            r.push("atl", "b-1", &payload(3)),
            Reply::Ack { .. }
        ));
        // The OpClock advances one ms per observation; eventually the
        // hold expires and a half-open probe with a good batch recloses.
        let mut reply = r.push("sj", "good-1", &payload(9));
        for _ in 0..70_000 {
            if !matches!(reply, Reply::Reject { .. }) {
                break;
            }
            reply = r.push("sj", "good-1", &payload(9));
        }
        assert!(
            matches!(reply, Reply::Ack { .. }),
            "probe must land: {reply:?}"
        );
        let report = r.status("sj");
        let Reply::Report(rep) = report else {
            panic!("expected report");
        };
        assert_eq!(rep.poisoned, 2);
        assert!(rep.breaker_trips >= 1);
        assert_eq!(rep.breaker, "closed");
    }

    #[test]
    fn zero_tick_budget_defers_with_growing_hints() {
        let net = network();
        let mut cfg = TenantConfig::new(roots());
        cfg.push_tick_budget = 0;
        let mut r = TenantRouter::new(
            &net,
            MemFs::new(),
            cfg,
            Arc::new(OpClock::new(1)),
            CancelToken::new(),
        );
        let a = r.push("sj", "b-1", &payload(1));
        let Reply::Defer { retry_after_ms } = a else {
            panic!("expected defer, got {a:?}");
        };
        assert!(retry_after_ms >= 1);
        // The batch is durable: a drain applies it without a re-push.
        assert_eq!(
            r.drain_all(64),
            vec![("sj".to_string(), DrainOutcome::Drained)]
        );
        assert_eq!(r.health_of("sj").unwrap().applied, 1);
        assert!(matches!(r.push("sj", "b-1", &[]), Reply::Ack { .. }));
    }

    #[test]
    fn drain_mode_defers_new_pushes_durably() {
        let net = network();
        let fs = MemFs::new();
        let mut r = router(&net, fs.clone());
        assert!(matches!(
            r.push("sj", "b-1", &payload(1)),
            Reply::Ack { .. }
        ));
        r.cancel_token().cancel();
        let reply = r.push("sj", "b-2", &payload(2));
        assert!(matches!(reply, Reply::Defer { .. }), "{reply:?}");
        // Defer promises durability: the payload is already spooled…
        assert!(fs.exists(std::path::Path::new("/spool/sj/b-2")));
        // Duplicate acks still work during drain (pure read).
        assert!(matches!(r.push("sj", "b-1", &[]), Reply::Ack { .. }));
        drop(r);
        // …so a restarted router applies it without a re-push, and the
        // client's retry is acknowledged as a journaled duplicate.
        let mut restarted = router(&net, fs);
        assert!(matches!(
            restarted.push("sj", "b-2", &payload(2)),
            Reply::Ack { .. }
        ));
        assert_eq!(restarted.health_of("sj").unwrap().applied, 1);
    }

    #[test]
    fn tenant_limit_is_enforced() {
        let net = network();
        let mut cfg = TenantConfig::new(roots());
        cfg.max_tenants = 1;
        let mut r = TenantRouter::new(
            &net,
            MemFs::new(),
            cfg,
            Arc::new(OpClock::new(1)),
            CancelToken::new(),
        );
        assert!(matches!(
            r.push("sj", "b-1", &payload(1)),
            Reply::Ack { .. }
        ));
        assert!(matches!(
            r.push("atl", "b-1", &payload(2)),
            Reply::Reject { .. }
        ));
    }
}
