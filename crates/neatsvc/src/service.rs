//! The supervised service: spool → admission → controlled ingest →
//! journal → checkpoint → published snapshot, with crash recovery.
//!
//! # Execution model
//!
//! [`Service`] is a deterministic, single-threaded state machine driven
//! by [`Service::tick`]. One tick scans the spool, makes admission
//! decisions, processes at most one batch end-to-end and takes any due
//! checkpoint. The `neatd` binary wraps it in a poll loop; the chaos
//! harness calls it directly so every interleaving is enumerable.
//!
//! # Exactly-once pipeline
//!
//! Per batch, the order is *apply → journal → remove spool file*. The
//! batch ID (spool file name) doubles as the journaled dataset name, so
//! each crash window resolves safely:
//!
//! * crash before the journal append — the journal has no record, the
//!   spool file survives, and the batch is simply re-ingested;
//! * crash after the append but before the spool removal — recovery
//!   reconciles the spool against
//!   [`CheckpointStore::journaled_batch_ids`] and *skips* the file
//!   (counted as `duplicates_skipped`), so no batch is applied twice;
//! * a journal append that fails outright (the divergence window
//!   documented on `IncrementalNeat::ingest_logged`) is repaired on the
//!   spot with an emergency checkpoint (counted as `journal_repairs`).
//!
//! # Supervision
//!
//! [`Service::tick`] wraps the worker in `catch_unwind`: a panic — its
//! own or one injected through a [`FaultHook`] — or an infrastructure
//! error triggers [recovery](Service::tick) from the latest checkpoint
//! plus journal. Restarts are budgeted
//! ([`max_restarts`](SvcConfig::max_restarts)); exhausting the budget
//! (or failing recovery itself) parks the service in
//! [`ServiceStatus::Failed`]. Failures attributable to a single batch
//! (parse errors, strict-policy data errors, per-batch budget
//! overruns) do not consume restarts: the batch is retried and, after
//! [`poison_after`](SvcConfig::poison_after) failures, moved to the
//! quarantine directory as poison.

use crate::config::SvcConfig;
use crate::health::{Health, ServiceStatus};
use crate::hooks::{Edge, FaultHook, NoFaults};
use crate::queue::{Admission, AdmissionQueue};
use crate::snapshot::{QueryView, SnapshotCell};
use crate::spool;
use neat_core::checkpoint::{CheckpointError, CheckpointStore};
use neat_core::incremental::IncrementalNeat;
use neat_durability::codec::{Dec, Enc};
use neat_durability::fs::{write_atomic, Fs};
use neat_durability::journal;
use neat_durability::retry::{JitterBackoff, NoSleep, RetryStats};
use neat_rnet::RoadNetwork;
use neat_runctl::{CancelToken, Clock, Control, Interrupt, OverrunMode, RunBudget};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Version header of the on-disk applied-ID index: a format-tag record
/// written first, so a pre-retention index (bare UTF-8 IDs, no
/// metadata) is still recognized and loaded conservatively.
const APPLIED_IDS_HEADER: &[u8] = b"AIDX2";

/// What the replay index remembers about one applied batch: the journal
/// sequence its record landed at and the largest observation time it
/// carried. Together they decide when the ID itself may be retired (see
/// [`Service::prune_applied_ids`]).
#[derive(Debug, Clone, Copy)]
struct AppliedMeta {
    /// Journal sequence of the batch record (0 when unknown — a legacy
    /// index entry — which keeps the ID forever).
    seq: u64,
    /// Largest trajectory-point time in the batch
    /// (`f64::INFINITY` when unknown, which keeps the ID forever).
    max_time: f64,
}

/// Infrastructure-level service failure (never a single bad batch —
/// those go down the poison path instead).
#[derive(Debug)]
pub enum SvcError {
    /// Checkpoint store failure (open, journal, snapshot or resume).
    Checkpoint(CheckpointError),
    /// Spool or quarantine filesystem failure.
    Io {
        /// What the service was doing.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Pipeline failure outside any single batch (e.g. an invalid
    /// configuration, or rebuilding the query view after recovery).
    Pipeline(String),
}

impl fmt::Display for SvcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvcError::Checkpoint(e) => write!(f, "checkpoint store: {e}"),
            SvcError::Io { context, source } => write!(f, "{context}: {source}"),
            SvcError::Pipeline(msg) => write!(f, "pipeline: {msg}"),
        }
    }
}

impl std::error::Error for SvcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SvcError::Checkpoint(e) => Some(e),
            SvcError::Io { source, .. } => Some(source),
            SvcError::Pipeline(_) => None,
        }
    }
}

impl From<CheckpointError> for SvcError {
    fn from(e: CheckpointError) -> Self {
        SvcError::Checkpoint(e)
    }
}

impl SvcError {
    fn io(context: &str, source: std::io::Error) -> Self {
        SvcError::Io {
            context: context.to_string(),
            source,
        }
    }
}

/// What one supervised [`Service::tick`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickOutcome {
    /// Progress was made: a batch processed, a failure handled, a
    /// checkpoint written, or a supervised recovery performed.
    Worked,
    /// Spool empty, queue empty, nothing pending — all state durable.
    Idle,
    /// Cancellation observed; pending state was checkpointed and the
    /// remaining spool is left for the next run.
    Cancelled,
    /// The restart budget is exhausted (or recovery failed); the
    /// service no longer processes batches.
    Failed,
}

/// Terminal state of [`Service::run_drain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainOutcome {
    /// The spool was fully drained and all state checkpointed.
    Drained,
    /// Cancellation stopped the drain early.
    Cancelled,
    /// The service became unrecoverable.
    Failed,
    /// The tick allowance ran out before the spool drained.
    TicksExhausted,
}

/// The supervised streaming clustering service. See the
/// [module docs](self) for the execution model.
pub struct Service<'n, F: Fs + Clone> {
    net: &'n RoadNetwork,
    cfg: SvcConfig,
    fs: F,
    store: CheckpointStore<F>,
    session: IncrementalNeat<'n>,
    queue: AdmissionQueue,
    cell: SnapshotCell,
    hooks: Arc<dyn FaultHook>,
    clock: Option<Arc<dyn Clock>>,
    cancel: CancelToken,
    health: Health,
    status: ServiceStatus,
    /// Batch IDs applied and journaled — the idempotent-replay index —
    /// with the metadata retention needs to eventually retire them.
    applied_ids: BTreeMap<String, AppliedMeta>,
    /// Failure counts per batch ID, kept across supervised restarts so
    /// a batch that keeps crashing the worker still reaches the poison
    /// threshold.
    attempts: HashMap<String, u32>,
    /// The batch being ingested, for failure attribution on panic.
    current: Option<String>,
    batches_since_ckpt: usize,
    ops_since_ckpt: u64,
    /// Applied batches since the last forced journal compaction
    /// ([`compact_every_batches`](SvcConfig::compact_every_batches)).
    batches_since_compact: usize,
    /// A journal compaction failed and a retry is scheduled; the
    /// service keeps serving from the uncompacted segments meanwhile.
    compaction_pending: bool,
    /// Consecutive failed compaction attempts (drives the backoff).
    compaction_attempt: u32,
    /// Ticks to wait before the next compaction retry.
    compaction_hold_ticks: u64,
    /// Deterministic jittered backoff for compaction retries.
    compaction_backoff: JitterBackoff<NoSleep>,
    /// The idle-stream retention anchor ([`SvcConfig::idle_expiry`]):
    /// the newest observation time applied so far, paired with the
    /// clock reading taken when it was applied. Idle ticks extrapolate
    /// the stream's observation time as `anchor + wall seconds since`.
    idle_anchor: Option<(f64, u64)>,
    retry_probe: Option<Arc<dyn Fn() -> RetryStats + Send + Sync>>,
}

impl<'n, F: Fs + Clone> Service<'n, F> {
    /// Opens a service with no fault hooks, no injected clock and a
    /// fresh cancellation token.
    ///
    /// # Errors
    ///
    /// See [`Service::open_with`].
    pub fn open(net: &'n RoadNetwork, cfg: SvcConfig, fs: F) -> Result<Self, SvcError> {
        Service::open_with(net, cfg, fs, Arc::new(NoFaults), None, CancelToken::new())
    }

    /// Opens a service over `fs`: creates the spool and quarantine
    /// directories, opens the checkpoint store and performs the same
    /// recovery a supervised restart would (resume from checkpoint +
    /// journal if one exists, reload the replay index, reconcile the
    /// spool, publish the recovered view). The [`Edge::Recovered`] hook
    /// fires before this returns, so an injected fault there models a
    /// crash during boot — callers of the chaos harness treat a panic
    /// out of `open_with` as death-at-boot and construct again.
    ///
    /// # Errors
    ///
    /// [`SvcError::Pipeline`] on an invalid clustering configuration;
    /// [`SvcError::Checkpoint`] when the state directory cannot be
    /// opened or holds a checkpoint from a different session
    /// (configuration or network mismatch); [`SvcError::Io`] on spool
    /// setup failure.
    pub fn open_with(
        net: &'n RoadNetwork,
        cfg: SvcConfig,
        fs: F,
        hooks: Arc<dyn FaultHook>,
        clock: Option<Arc<dyn Clock>>,
        cancel: CancelToken,
    ) -> Result<Self, SvcError> {
        cfg.neat
            .validate()
            .map_err(|e| SvcError::Pipeline(format!("invalid clustering config: {e}")))?;
        fs.create_dir_all(&cfg.spool_dir)
            .map_err(|e| SvcError::io("create spool dir", e))?;
        fs.create_dir_all(&cfg.quarantine_dir)
            .map_err(|e| SvcError::io("create quarantine dir", e))?;
        let store = CheckpointStore::open(fs.clone(), cfg.state_dir.clone())?;
        let session = IncrementalNeat::new(net, cfg.neat);
        let queue = AdmissionQueue::new(cfg.queue_capacity, cfg.shed_backlog);
        let mut svc = Service {
            net,
            cfg,
            fs,
            store,
            session,
            queue,
            cell: SnapshotCell::new(),
            hooks,
            clock,
            cancel,
            health: Health::default(),
            status: ServiceStatus::Running,
            applied_ids: BTreeMap::new(),
            attempts: HashMap::new(),
            current: None,
            batches_since_ckpt: 0,
            ops_since_ckpt: 0,
            batches_since_compact: 0,
            compaction_pending: false,
            compaction_attempt: 0,
            compaction_hold_ticks: 0,
            compaction_backoff: JitterBackoff::with_sleeper(
                0x5ea7_c0de,
                Duration::from_millis(20),
                Duration::from_secs(2),
                NoSleep,
            ),
            idle_anchor: None,
            retry_probe: None,
        };
        svc.recover()?;
        Ok(svc)
    }

    /// Installs a probe the health report pulls filesystem retry
    /// statistics from (typically `RetryFs::stats` on the handle the
    /// service writes through).
    pub fn with_retry_probe(mut self, probe: Arc<dyn Fn() -> RetryStats + Send + Sync>) -> Self {
        self.retry_probe = Some(probe);
        self
    }

    /// One supervised step of the worker state machine.
    ///
    /// Never panics and never returns an error: worker panics and
    /// infrastructure failures are caught here, charged against the
    /// restart budget and answered with recovery. The return value says
    /// whether progress was made, the service is idle (all state
    /// durable), cancellation was observed, or the service is failed.
    pub fn tick(&mut self) -> TickOutcome {
        if self.status == ServiceStatus::Failed {
            return TickOutcome::Failed;
        }
        // lint:allow(L8) reason=invariants restored by worker_failed -> recover(), which rebuilds worker state from the durable store before the next tick
        match catch_unwind(AssertUnwindSafe(|| self.tick_inner())) {
            Ok(Ok(outcome)) => outcome,
            Ok(Err(e)) => self.worker_failed(format!("worker error: {e}")),
            Err(payload) => {
                self.worker_failed(format!("worker panic: {}", panic_text(payload.as_ref())))
            }
        }
    }

    /// Ticks until the spool drains ([`DrainOutcome::Drained`]), the
    /// run is cancelled, the service fails, or `max_ticks` supervised
    /// steps have run.
    pub fn run_drain(&mut self, max_ticks: u64) -> DrainOutcome {
        for _ in 0..max_ticks {
            match self.tick() {
                TickOutcome::Worked => {}
                TickOutcome::Idle => return DrainOutcome::Drained,
                TickOutcome::Cancelled => return DrainOutcome::Cancelled,
                TickOutcome::Failed => return DrainOutcome::Failed,
            }
        }
        DrainOutcome::TicksExhausted
    }

    /// The current query snapshot. Cheap; safe to call from other
    /// threads holding a reference to the cell via [`Service::queries`].
    pub fn query(&self) -> Arc<QueryView> {
        self.cell.load()
    }

    /// The snapshot cell itself, for handing to reader threads.
    pub fn queries(&self) -> &SnapshotCell {
        &self.cell
    }

    /// Current coarse status.
    pub fn status(&self) -> ServiceStatus {
        self.status
    }

    /// Whether `id` is already journaled — the idempotent-replay index
    /// the network layer consults to acknowledge duplicate sends
    /// without re-applying.
    pub fn is_applied(&self, id: &str) -> bool {
        self.applied_ids.contains_key(id)
    }

    /// Size of the in-memory idempotent-replay index. With a retention
    /// window configured this is bounded O(window); without one it
    /// grows with history (the keep-forever contract).
    pub fn replay_index_len(&self) -> usize {
        self.applied_ids.len()
    }

    /// A health report: counters plus, when a probe is installed,
    /// storage retry statistics.
    pub fn health(&self) -> Health {
        let mut h = self.health.clone();
        h.retry = self.retry_probe.as_ref().map(|p| p());
        h
    }

    /// The cancellation token the service polls; cancel it (or any
    /// clone) to request a graceful shutdown.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The underlying clustering session (read-only).
    pub fn session(&self) -> &IncrementalNeat<'n> {
        &self.session
    }

    /// A deterministic digest of the retained clustering state — what
    /// the chaos harness compares between an interrupted-and-recovered
    /// run and an uninterrupted one.
    pub fn state_fingerprint(&self) -> String {
        format!(
            "batches={};watermark={:?};flows={:?};resilience={:?}",
            self.session.batches(),
            self.session.watermark(),
            self.session.flow_clusters(),
            self.session.resilience()
        )
    }

    /// The worker body. Any `Err` or panic escaping this is handled by
    /// the supervisor in [`Service::tick`].
    fn tick_inner(&mut self) -> Result<TickOutcome, SvcError> {
        if self.cancel.is_cancelled() {
            // Graceful shutdown: make pending applied state durable,
            // leave the rest of the spool for the next run.
            if self.batches_since_ckpt > 0 {
                self.checkpoint_now()?;
            }
            return Ok(TickOutcome::Cancelled);
        }

        // A failed journal compaction is retried on a tick-counted
        // backoff; serving never stops while the retry is pending.
        let compaction_ticked = self.tick_compaction_retry();

        self.hooks.at(Edge::SpoolScan);
        let pending = spool::scan(&self.fs, &self.cfg.spool_dir)
            .map_err(|e| SvcError::io("scan spool", e))?;
        self.queue.begin_scan();
        for id in &pending {
            if self.queue.contains(id) {
                continue;
            }
            if self.applied_ids.contains_key(id) {
                // Already journaled: the acknowledgement (spool file
                // removal) was lost in a crash. Skip, never re-apply.
                spool::remove(&self.fs, &self.cfg.spool_dir, id)
                    .map_err(|e| SvcError::io("remove duplicate batch", e))?;
                self.health.duplicates_skipped += 1;
                continue;
            }
            match self.queue.offer(id) {
                Admission::Accepted => self.health.accepted += 1,
                Admission::Deferred => self.health.deferred += 1,
                Admission::Shed => {
                    if spool::quarantine(
                        &self.fs,
                        &self.cfg.spool_dir,
                        &self.cfg.quarantine_dir,
                        id,
                        "shed: deferral backlog over limit",
                    )
                    .map_err(|e| SvcError::io("quarantine shed batch", e))?
                    {
                        self.health.shed += 1;
                        self.mark_degraded();
                    } else {
                        // A racing writer withdrew the file between the
                        // scan and the move; nothing was shed.
                        self.health.spool_races += 1;
                    }
                }
            }
        }
        self.health.backpressure = self.queue.state();
        self.hooks.at(Edge::Admit);

        let Some(id) = self.queue.pop() else {
            if self.batches_since_ckpt > 0 {
                // Idle with undurable batches: take the final
                // checkpoint inside the supervised tick so a crash here
                // is part of the chaos matrix too.
                self.checkpoint_now()?;
                return Ok(TickOutcome::Worked);
            }
            if compaction_ticked || self.compaction_pending {
                // Keep driving the compaction retry to completion;
                // applied state is already durable, so this only delays
                // the Idle verdict, never correctness.
                return Ok(TickOutcome::Worked);
            }
            // Wall-clock retention for quiet streams: with
            // `idle_expiry` on, an idle tick may still advance the
            // watermark and fire drift events.
            if self.idle_expire()? {
                return Ok(TickOutcome::Worked);
            }
            return Ok(TickOutcome::Idle);
        };

        let batch = match spool::load(&self.fs, &self.cfg.spool_dir, &id) {
            Ok(b) => b,
            Err(spool::LoadError::Vanished) => {
                // ENOENT between readdir and open: the writer renamed or
                // removed the file after the scan. Not a batch failure —
                // drop any attempt count and move on.
                self.attempts.remove(&id);
                self.health.spool_races += 1;
                return Ok(TickOutcome::Worked);
            }
            Err(spool::LoadError::Bad(detail)) => {
                self.batch_failure(&id, &detail);
                return Ok(TickOutcome::Worked);
            }
        };

        self.current = Some(id.clone());
        self.hooks.at(Edge::IngestStart);
        let ctl = self.batch_control();
        let outcome = self
            .session
            .ingest_controlled(&batch, self.cfg.policy, &ctl);
        self.current = None;
        self.ops_since_ckpt = self.ops_since_ckpt.saturating_add(ctl.ops());
        let outcome = match outcome {
            Ok(o) => o,
            Err(e) => {
                // Config was validated at open; this is a strict-policy
                // data error attributable to the batch.
                self.batch_failure(&id, &format!("ingest: {e}"));
                return Ok(TickOutcome::Worked);
            }
        };

        if !outcome.applied {
            if outcome.interrupt.is_some_and(|i| i == Interrupt::Cancelled) {
                // Shutdown request mid-batch; state untouched, the
                // batch stays in the spool for the next run.
                if self.batches_since_ckpt > 0 {
                    self.checkpoint_now()?;
                }
                return Ok(TickOutcome::Cancelled);
            }
            let why = outcome
                .interrupt
                .map_or("interrupted before apply", Interrupt::name);
            self.batch_failure(&id, &format!("budget: {why}"));
            return Ok(TickOutcome::Worked);
        }

        self.hooks.at(Edge::Applied);
        // Apply → journal. A failed append opens the divergence window
        // documented on `IncrementalNeat::ingest_logged`: memory is
        // ahead of disk. Repair immediately with an emergency
        // checkpoint; if that also fails, the supervisor restores from
        // the store (the batch is still in the spool and is retried).
        if let Err(e) = self
            .store
            .log_batch(self.session.batches() as u64, &batch, self.cfg.policy)
        {
            self.health.journal_repairs += 1;
            self.health.last_error = Some(format!(
                "journal append for `{id}` failed ({e}); repairing via checkpoint"
            ));
            self.mark_degraded();
            self.checkpoint_now()?;
        }
        self.hooks.at(Edge::Journaled);

        let batch_max_time = batch
            .trajectories()
            .iter()
            .map(|t| t.last().time)
            .fold(f64::NEG_INFINITY, f64::max);
        self.applied_ids.insert(
            id.clone(),
            AppliedMeta {
                seq: self.session.batches() as u64,
                max_time: batch_max_time,
            },
        );
        self.attempts.remove(&id);
        spool::remove(&self.fs, &self.cfg.spool_dir, &id)
            .map_err(|e| SvcError::io("remove acknowledged batch", e))?;
        self.hooks.at(Edge::SpoolRemoved);

        // Re-anchor idle-stream retention at the newest observation
        // ever applied: wall time elapsed on later idle ticks counts
        // from here. `max` keeps the anchor monotone when batches
        // arrive out of observation order.
        if self.cfg.idle_expiry {
            if let Some(clock) = &self.clock {
                let base = self
                    .idle_anchor
                    .map_or(batch_max_time, |(b, _)| b.max(batch_max_time));
                if base.is_finite() {
                    self.idle_anchor = Some((base, clock.now_millis()));
                }
            }
        }

        let mut degraded = outcome.interrupt.is_some() || !outcome.degradation.steps.is_empty();
        if degraded {
            self.health.degraded_batches += 1;
            self.mark_degraded();
        }

        // Retention: advance the watermark to `newest observation -
        // window` and expire out-of-window t-fragments. Mirrors the
        // batch path — mutate memory first, then journal the expiry
        // operation; a failed append is the same divergence window and
        // gets the same emergency-checkpoint repair.
        let mut drift = Vec::new();
        let mut expiry_clusters = None;
        if let Some(window) = self.cfg.window {
            let target = batch_max_time - window;
            if target.is_finite() && self.session.watermark().is_none_or(|w| target > w) {
                match self.session.expire_before(target) {
                    Ok(mut exp) if exp.advanced => {
                        self.health.expiries += 1;
                        self.health.expired_fragments += exp.expired_fragments as u64;
                        self.health.drift.absorb(&exp.events);
                        drift = std::mem::take(&mut exp.events);
                        expiry_clusters = Some(exp.clusters);
                        if let Err(e) = self.store.log_expiry(self.session.batches() as u64, target)
                        {
                            self.health.journal_repairs += 1;
                            self.health.last_error = Some(format!(
                                "expiry journal append failed ({e}); repairing via checkpoint"
                            ));
                            self.mark_degraded();
                            self.checkpoint_now()?;
                        }
                    }
                    Ok(_) => {}
                    Err(e) => {
                        // Expiry is reclamation, not correctness: a
                        // refinement error here degrades the service but
                        // must not fail the already-applied batch.
                        self.health.last_error = Some(format!("expiry failed: {e}"));
                        self.mark_degraded();
                        degraded = true;
                    }
                }
            }
        }

        self.cell.publish(QueryView {
            epoch: 0, // stamped by the cell
            batches: self.session.batches(),
            flows: self.session.flow_clusters().len(),
            clusters: expiry_clusters.unwrap_or(outcome.clusters),
            degraded,
            watermark: self.session.watermark(),
            live_fragments: self.session.live_fragments(),
            drift,
        });
        self.hooks.at(Edge::Published);
        self.health.applied += 1;
        self.batches_since_ckpt += 1;
        self.batches_since_compact += 1;

        if self.batches_since_ckpt >= self.cfg.checkpoint_every_batches
            || self.ops_since_ckpt >= self.cfg.checkpoint_every_ops
        {
            self.checkpoint_now()?;
        }
        if let Some(every) = self.cfg.compact_every_batches {
            if every > 0 && self.batches_since_compact >= every {
                self.batches_since_compact = 0;
                self.attempt_compaction();
            }
        }
        Ok(TickOutcome::Worked)
    }

    /// The idle-stream watermark advance ([`SvcConfig::idle_expiry`]).
    ///
    /// Extrapolates the stream's observation time from the injected
    /// wall clock (one wall-clock second = one trajectory-time unit,
    /// counted from the newest observation applied) and expires
    /// t-fragments that fall out of the window, exactly like the
    /// batch-path retention block. Returns `true` when state changed
    /// (the tick counts as [`TickOutcome::Worked`]).
    ///
    /// Two properties keep this safe to call every idle tick:
    ///
    /// * **Journal discipline** — the checkpoint journal is gapless in
    ///   the operation-sequence domain, so every watermark advance must
    ///   be journaled immediately. The advance is therefore gated on
    ///   [`IncrementalNeat::oldest_retained_time`]: the watermark only
    ///   moves when it expires at least one fragment, bounding idle
    ///   journal appends by the retained-fragment count instead of the
    ///   poll frequency — and letting a drain loop reach its Idle
    ///   verdict once the stream has fully quiesced.
    /// * **Anchored extrapolation** — with no anchor yet (fresh or
    ///   freshly recovered session), the first idle observation anchors
    ///   at the recovered watermark's implied observation time
    ///   (`watermark + window`) so wall time starts counting from now,
    ///   never from before a restart.
    fn idle_expire(&mut self) -> Result<bool, SvcError> {
        if !self.cfg.idle_expiry {
            return Ok(false);
        }
        let (Some(window), Some(clock)) = (self.cfg.window, self.clock.as_ref()) else {
            return Ok(false);
        };
        let now = clock.now_millis();
        let Some((base, anchor_ms)) = self.idle_anchor else {
            self.idle_anchor = self.session.watermark().map(|w| (w + window, now));
            return Ok(false);
        };
        let elapsed_s = (now.saturating_sub(anchor_ms)) as f64 / 1000.0;
        let target = base + elapsed_s - window;
        let expirable = self
            .session
            .oldest_retained_time()
            .is_some_and(|oldest| oldest < target);
        if !expirable || !target.is_finite() || !self.session.watermark().is_none_or(|w| target > w)
        {
            return Ok(false);
        }
        match self.session.expire_before(target) {
            Ok(mut exp) if exp.advanced => {
                self.health.expiries += 1;
                self.health.idle_expiries += 1;
                self.health.expired_fragments += exp.expired_fragments as u64;
                self.health.drift.absorb(&exp.events);
                let drift = std::mem::take(&mut exp.events);
                // Same divergence window as the batch path: memory is
                // ahead of the journal until the append lands; repair a
                // failed append with an emergency checkpoint.
                if let Err(e) = self.store.log_expiry(self.session.batches() as u64, target) {
                    self.health.journal_repairs += 1;
                    self.health.last_error = Some(format!(
                        "idle expiry journal append failed ({e}); repairing via checkpoint"
                    ));
                    self.mark_degraded();
                    self.checkpoint_now()?;
                }
                self.cell.publish(QueryView {
                    epoch: 0, // stamped by the cell
                    batches: self.session.batches(),
                    flows: self.session.flow_clusters().len(),
                    clusters: exp.clusters,
                    degraded: false,
                    watermark: self.session.watermark(),
                    live_fragments: self.session.live_fragments(),
                    drift,
                });
                self.hooks.at(Edge::Published);
                // Count toward the checkpoint cadence so a long-idle
                // stream still snapshots (and compacts) what it expired.
                self.batches_since_ckpt += 1;
                Ok(true)
            }
            Ok(_) => Ok(false),
            Err(e) => {
                // Reclamation, not correctness: degrade and keep serving.
                self.health.last_error = Some(format!("idle expiry failed: {e}"));
                self.mark_degraded();
                Ok(false)
            }
        }
    }

    /// Builds the per-batch [`Control`] from the configured budget,
    /// deadline and injected clock, observing the service token.
    fn batch_control(&self) -> Control {
        let mut budget = RunBudget::unlimited();
        if let Some(ops) = self.cfg.batch_max_ops {
            budget = budget.with_max_ops(ops);
        }
        if let Some(ms) = self.cfg.batch_deadline_ms {
            budget = budget.with_deadline_ms(ms);
        }
        let mut ctl =
            Control::new(budget, self.cancel.observer()).with_overrun(OverrunMode::Degrade);
        if let Some(clock) = &self.clock {
            ctl = ctl.with_clock(Arc::clone(clock));
        }
        ctl
    }

    /// Path of the durable applied-ID index (see
    /// [`persist_applied_ids`](Self::persist_applied_ids)).
    fn applied_ids_path(&self) -> std::path::PathBuf {
        std::path::Path::new(&self.cfg.state_dir).join("applied.ids")
    }

    /// Persists the full idempotent-replay index.
    ///
    /// The checkpoint journal alone cannot carry it: retention prunes
    /// journal records older than the retained snapshots, and with them
    /// the batch IDs a network client may re-send arbitrarily later
    /// (`kill -9` the daemon, restart, replay your whole outbox). This
    /// index is rewritten atomically *before* every snapshot — and
    /// therefore before any pruning — so at every crash point the union
    /// of journal IDs and this file covers every batch ever applied.
    ///
    /// Format (`AIDX2`): one journal-framed record per entry, torn
    /// tails tolerated. The first record is the literal header tag;
    /// every following record is `str id, u64 seq, f64 max_time`. A
    /// file without the header is the pre-retention format (bare UTF-8
    /// IDs) and loads with conservative metadata that never prunes.
    fn persist_applied_ids(&self) -> Result<(), SvcError> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&journal::encode_record(APPLIED_IDS_HEADER));
        for (id, meta) in &self.applied_ids {
            let mut enc = Enc::with_capacity(id.len() + 20);
            enc.str(id);
            enc.u64(meta.seq);
            enc.f64(meta.max_time);
            buf.extend_from_slice(&journal::encode_record(&enc.into_bytes()));
        }
        write_atomic(&self.fs, &self.applied_ids_path(), &buf)
            .map_err(|e| SvcError::Checkpoint(CheckpointError::Durability(e)))
    }

    /// Reloads the applied-ID index persisted by
    /// [`persist_applied_ids`](Self::persist_applied_ids), in either
    /// format; IDs that are not valid UTF-8 cannot match any batch and
    /// are impossible to write, so they are reported as corruption.
    fn load_applied_ids(&self) -> Result<Vec<(String, AppliedMeta)>, SvcError> {
        let scan = journal::read_journal(&self.fs, &self.applied_ids_path())
            .map_err(|e| SvcError::Checkpoint(CheckpointError::Durability(e)))?;
        let mut records = scan.records.into_iter();
        let first = records.next();
        let versioned = first.as_deref() == Some(APPLIED_IDS_HEADER);
        let mut ids = Vec::new();
        if versioned {
            for rec in records {
                let mut dec = Dec::new(&rec);
                let entry =
                    (|| -> Result<(String, AppliedMeta), neat_durability::DurabilityError> {
                        let id = dec.str("applied-id")?.to_string();
                        let seq = dec.u64("applied-id seq")?;
                        let max_time = dec.f64("applied-id max-time")?;
                        dec.expect_exhausted("applied-id record")?;
                        Ok((id, AppliedMeta { seq, max_time }))
                    })()
                    .map_err(|e| SvcError::Checkpoint(CheckpointError::Durability(e)))?;
                ids.push(entry);
            }
        } else {
            // Legacy index: IDs only. Unknown seq/max_time means these
            // entries are never pruned — correctness over reclamation.
            for rec in first.into_iter().chain(records) {
                match String::from_utf8(rec) {
                    Ok(id) => ids.push((
                        id,
                        AppliedMeta {
                            seq: 0,
                            max_time: f64::INFINITY,
                        },
                    )),
                    Err(_) => {
                        return Err(SvcError::Pipeline(
                            "applied-id index record is not UTF-8".to_string(),
                        ))
                    }
                }
            }
        }
        Ok(ids)
    }

    /// Retires replay-index entries that can never again change state.
    ///
    /// An ID is dropped only when **both** hold:
    ///
    /// * `seq <= retained_floor` — its journal record is behind every
    ///   retained snapshot, so compaction has dropped (or may drop) it
    ///   and recovery can no longer re-derive the ID from the journal;
    /// * `max_time < watermark` — every observation in the batch is
    ///   behind the watermark, so re-ingesting it is a clustering no-op
    ///   (ingest admits no flow that ends before the watermark).
    ///
    /// Together: a duplicate send of a dropped ID re-journals but
    /// cannot change clusters — the exactly-once guarantee narrows to
    /// exactly-once *effect*, which is what bounds the index at
    /// O(window) instead of O(history). With no watermark (no window
    /// configured) nothing is ever dropped — the pre-retention
    /// keep-forever behavior.
    fn prune_applied_ids(&mut self) -> Result<(), SvcError> {
        let Some(watermark) = self.session.watermark() else {
            return Ok(());
        };
        let floor = self.store.retained_floor()?;
        self.applied_ids
            .retain(|_, meta| meta.seq > floor || meta.max_time >= watermark);
        Ok(())
    }

    /// Writes a snapshot of the full retained state, resets the cadence
    /// counters and accounts the best-effort retention outcome.
    fn checkpoint_now(&mut self) -> Result<(), SvcError> {
        self.hooks.at(Edge::CheckpointStart);
        // Index first: `save_checkpoint` prunes the journal, and every
        // pruned ID must already be durable here (or the batch could be
        // applied twice on a post-restart duplicate send). Pruning the
        // index itself uses the floor of the *previous* checkpoint —
        // conservative, since this one has not landed yet.
        self.prune_applied_ids()?;
        self.persist_applied_ids()?;
        let report = self.session.save_checkpoint(&self.store)?;
        self.hooks.at(Edge::CheckpointDone);
        self.health.checkpoints += 1;
        self.batches_since_ckpt = 0;
        self.ops_since_ckpt = 0;
        if report.compaction.is_some() {
            self.health.compactions += 1;
            self.compaction_pending = false;
            self.compaction_attempt = 0;
            self.compaction_hold_ticks = 0;
        }
        if let Some(err) = report.error {
            self.compaction_failed(&err.to_string());
        }
        Ok(())
    }

    /// One immediate journal-compaction attempt (forced cadence or a
    /// due retry); failure schedules the next backoff step.
    fn attempt_compaction(&mut self) {
        match self.store.compact_journal() {
            Ok(_) => {
                self.health.compactions += 1;
                self.compaction_pending = false;
                self.compaction_attempt = 0;
                self.compaction_hold_ticks = 0;
            }
            Err(e) => self.compaction_failed(&e.to_string()),
        }
    }

    /// Accounts a failed compaction and schedules a jittered retry. The
    /// store is built so a failed compaction leaves the old segments
    /// fully readable — the service keeps serving, merely degraded.
    fn compaction_failed(&mut self, err: &str) {
        self.health.compaction_failures += 1;
        self.health.last_error = Some(format!(
            "journal compaction failed ({err}); serving from uncompacted segments, retry scheduled"
        ));
        self.mark_degraded();
        let delay = self.compaction_backoff.next_delay(self.compaction_attempt);
        self.compaction_attempt = self.compaction_attempt.saturating_add(1);
        // One supervised tick ~ one poll interval; translate the
        // backoff delay into held ticks (at least one).
        self.compaction_hold_ticks = (delay.as_millis() as u64 / 10).max(1);
        self.compaction_pending = true;
    }

    /// Counts down the compaction-retry hold and fires the attempt when
    /// it reaches zero. Returns whether any retry work happened.
    fn tick_compaction_retry(&mut self) -> bool {
        if !self.compaction_pending {
            return false;
        }
        if self.compaction_hold_ticks > 0 {
            self.compaction_hold_ticks -= 1;
            return true;
        }
        self.attempt_compaction();
        true
    }

    /// Supervisor response to a worker panic or infrastructure error:
    /// charge the restart budget, recover from the store, then account
    /// the failure to the in-flight batch (if any) for poison tracking.
    fn worker_failed(&mut self, msg: String) -> TickOutcome {
        self.health.last_error = Some(msg);
        let failed_batch = self.current.take();
        loop {
            if self.health.restarts >= u64::from(self.cfg.max_restarts) {
                self.status = ServiceStatus::Failed;
                return TickOutcome::Failed;
            }
            self.health.restarts += 1;
            // lint:allow(L8) reason=invariants restored by retrying recover() under the restart budget; recover rebuilds all worker state from the durable store
            match catch_unwind(AssertUnwindSafe(|| self.recover())) {
                Ok(Ok(())) => break,
                Ok(Err(e)) => {
                    self.health.last_error = Some(format!("recovery failed: {e}"));
                }
                Err(payload) => {
                    self.health.last_error =
                        Some(format!("recovery panic: {}", panic_text(payload.as_ref())));
                }
            }
        }
        if let Some(id) = failed_batch {
            self.batch_failure(&id, "crashed the worker");
        }
        TickOutcome::Worked
    }

    /// Restores in-memory state from the checkpoint store (snapshot +
    /// journal replay; a store with no checkpoint yet yields a fresh
    /// session), reloads the idempotent-replay index, republishes the
    /// query view and fires [`Edge::Recovered`].
    fn recover(&mut self) -> Result<(), SvcError> {
        self.queue.clear();
        self.current = None;
        self.session = match IncrementalNeat::resume(self.net, self.cfg.neat, &self.store) {
            Ok((session, _report)) => session,
            Err(CheckpointError::NoCheckpoint { .. }) => {
                IncrementalNeat::new(self.net, self.cfg.neat)
            }
            Err(e) => return Err(SvcError::Checkpoint(e)),
        };
        // The replay index is the union of the journal (everything
        // since the oldest retained snapshot) and the persisted index
        // (everything pruned before it) — together, every batch whose
        // replay could still change state, so duplicate sends stay
        // duplicates across restarts. The journal entry wins when both
        // exist: it carries the authoritative sequence.
        self.applied_ids = self
            .store
            .journaled_batch_index()?
            .into_iter()
            .map(|(seq, id, max_time)| (id, AppliedMeta { seq, max_time }))
            .collect();
        for (id, meta) in self.load_applied_ids()? {
            self.applied_ids.entry(id).or_insert(meta);
        }
        // Watermark catch-up: a crash between a batch's journal append
        // and its expiry append leaves the batch durable but its
        // watermark advance lost — with no further traffic the restarted
        // process would retain state the uninterrupted run expired.
        // Re-derive the target from the replay index (the largest
        // observation time of any applied batch) and jump to it; a jump
        // is equivalent to the step-by-step expiries it replaces because
        // expiry composes monotonically (see `tests/prop_retention.rs`).
        if let Some(window) = self.cfg.window {
            let max_observed = self
                .applied_ids
                .values()
                .map(|m| m.max_time)
                .filter(|t| t.is_finite())
                .fold(f64::NEG_INFINITY, f64::max);
            let target = max_observed - window;
            if target.is_finite() && self.session.watermark().is_none_or(|w| target > w) {
                let exp = self
                    .session
                    .expire_before(target)
                    .map_err(|e| SvcError::Pipeline(format!("recovery expiry: {e}")))?;
                if exp.advanced {
                    self.health.expiries += 1;
                    self.health.expired_fragments += exp.expired_fragments as u64;
                    self.health.drift.absorb(&exp.events);
                    if let Err(e) = self.store.log_expiry(self.session.batches() as u64, target) {
                        self.health.journal_repairs += 1;
                        self.health.last_error = Some(format!(
                            "recovery expiry journal append failed ({e}); repairing via checkpoint"
                        ));
                        self.mark_degraded();
                        self.checkpoint_now()?;
                    }
                }
            }
        }
        // Resume replays the journal, so memory and disk agree again.
        self.batches_since_ckpt = 0;
        self.ops_since_ckpt = 0;
        // A pending compaction retry does not survive the restart; the
        // next checkpoint's retention pass re-detects the backlog.
        self.batches_since_compact = 0;
        self.compaction_pending = false;
        self.compaction_attempt = 0;
        self.compaction_hold_ticks = 0;
        let clusters = self
            .session
            .current_clusters()
            .map_err(|e| SvcError::Pipeline(format!("rebuild query view: {e}")))?;
        self.cell.publish(QueryView {
            epoch: 0, // stamped by the cell
            batches: self.session.batches(),
            flows: self.session.flow_clusters().len(),
            clusters,
            degraded: false,
            watermark: self.session.watermark(),
            live_fragments: self.session.live_fragments(),
            drift: Vec::new(),
        });
        self.hooks.at(Edge::Recovered);
        Ok(())
    }

    /// Counts a batch-attributable failure; at
    /// [`poison_after`](SvcConfig::poison_after) the batch is moved to
    /// quarantine so it cannot wedge the queue.
    fn batch_failure(&mut self, id: &str, why: &str) {
        if self.applied_ids.contains_key(id) {
            // The batch actually landed (e.g. a crash after the journal
            // append); reconciliation skips it, nothing failed.
            return;
        }
        let n = {
            let e = self.attempts.entry(id.to_string()).or_insert(0);
            *e += 1;
            *e
        };
        self.health.last_error = Some(format!("batch `{id}` failed (attempt {n}): {why}"));
        if n >= self.cfg.poison_after {
            match spool::quarantine(
                &self.fs,
                &self.cfg.spool_dir,
                &self.cfg.quarantine_dir,
                id,
                &format!("poison after {n} failures: {why}"),
            ) {
                Ok(true) => {
                    self.attempts.remove(id);
                    self.health.poisoned += 1;
                    self.mark_degraded();
                }
                Ok(false) => {
                    // The file vanished before the move — a racing
                    // writer took it back; nothing poisoned.
                    self.attempts.remove(id);
                    self.health.spool_races += 1;
                }
                Err(e) => {
                    // Leave the file and the count; the next failure
                    // retries the quarantine move.
                    self.health.last_error =
                        Some(format!("quarantining poison batch `{id}` failed: {e}"));
                }
            }
        }
    }

    fn mark_degraded(&mut self) {
        if self.status == ServiceStatus::Running {
            self.status = ServiceStatus::Degraded;
        }
    }
}

/// Best-effort text of a panic payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_core::NeatConfig;
    use neat_durability::fs::MemFs;
    use neat_rnet::netgen::chain_network;
    use neat_rnet::{Point, RoadLocation, SegmentId};
    use neat_traj::{Dataset, Trajectory, TrajectoryId};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn net() -> RoadNetwork {
        chain_network(6, 100.0, 13.9)
    }

    fn cfg() -> SvcConfig {
        let mut c = SvcConfig::new("/spool", "/state", "/quarantine");
        c.neat = NeatConfig {
            min_card: 1,
            ..NeatConfig::default()
        };
        c.checkpoint_every_batches = 2;
        c
    }

    fn batch(seed: u64) -> Dataset {
        let mut d = Dataset::new("b");
        let off = (seed % 40) as f64;
        d.push(
            Trajectory::new(
                TrajectoryId::new(seed),
                vec![
                    RoadLocation::new(SegmentId::new(0), Point::new(10.0 + off, 0.0), 0.0),
                    RoadLocation::new(SegmentId::new(1), Point::new(150.0, 0.0), 30.0),
                    RoadLocation::new(SegmentId::new(2), Point::new(250.0, 0.0), 60.0),
                ],
            )
            .unwrap(),
        );
        d
    }

    fn seed_spool(fs: &MemFs, n: u64) {
        fs.create_dir_all(Path::new("/spool")).unwrap();
        for i in 0..n {
            spool::submit(
                fs,
                Path::new("/spool"),
                &format!("b-{i:03}.batch"),
                &batch(i),
            )
            .unwrap();
        }
    }

    use std::path::Path;

    #[test]
    fn drains_spool_and_checkpoints() {
        let network = net();
        let fs = MemFs::new();
        seed_spool(&fs, 3);
        let mut svc = Service::open(&network, cfg(), fs.clone()).unwrap();
        assert_eq!(svc.run_drain(64), DrainOutcome::Drained);
        let h = svc.health();
        assert_eq!(h.applied, 3);
        assert_eq!(h.accepted, 3);
        assert_eq!(h.poisoned, 0);
        assert!(h.checkpoints >= 1, "cadence + final checkpoint expected");
        assert_eq!(svc.status(), ServiceStatus::Running);
        assert_eq!(svc.query().batches, 3);
        assert!(spool::scan(&fs, Path::new("/spool")).unwrap().is_empty());
    }

    #[test]
    fn restart_resumes_identical_state() {
        let network = net();
        let fs = MemFs::new();
        seed_spool(&fs, 4);
        let reference = {
            let mut svc = Service::open(&network, cfg(), fs.clone()).unwrap();
            assert_eq!(svc.run_drain(64), DrainOutcome::Drained);
            svc.state_fingerprint()
        };
        // A second service over the same store sees the drained spool
        // and resumes to the exact same state.
        let svc = Service::open(&network, cfg(), fs).unwrap();
        assert_eq!(svc.state_fingerprint(), reference);
        assert_eq!(svc.query().batches, 4);
    }

    #[test]
    fn replay_index_survives_journal_pruning_across_restarts() {
        // Regression: checkpoint retention prunes the journal past the
        // oldest retained snapshot, and `journaled_batch_ids` alone
        // then forgets early batches — a duplicate send after restart
        // would re-apply them. The persisted applied-id index must keep
        // every ID alive forever.
        let network = net();
        let fs = MemFs::new();
        let mut cfg_tight = cfg();
        cfg_tight.checkpoint_every_batches = 1; // checkpoint (and prune) per batch
        seed_spool(&fs, 5);
        let reference = {
            let mut svc = Service::open(&network, cfg_tight.clone(), fs.clone()).unwrap();
            assert_eq!(svc.run_drain(64), DrainOutcome::Drained);
            for i in 0..5 {
                assert!(svc.is_applied(&format!("b-{i:03}.batch")));
            }
            svc.state_fingerprint()
        };
        // Re-submit every batch to the spool of a restarted service —
        // the network layer's "replay your whole outbox" pattern. All
        // must be recognized as duplicates; none may re-apply.
        let mut svc = Service::open(&network, cfg_tight, fs.clone()).unwrap();
        for i in 0..5 {
            assert!(
                svc.is_applied(&format!("b-{i:03}.batch")),
                "batch b-{i:03} forgotten after pruning + restart"
            );
        }
        seed_spool(&fs, 5);
        assert_eq!(svc.run_drain(64), DrainOutcome::Drained);
        assert_eq!(svc.health().applied, 0, "a pruned-id batch re-applied");
        assert_eq!(svc.health().duplicates_skipped, 5);
        assert_eq!(svc.state_fingerprint(), reference);
        assert_eq!(svc.query().batches, 5);
    }

    #[test]
    fn malformed_batch_is_poisoned_after_two_attempts() {
        let network = net();
        let fs = MemFs::new();
        fs.create_dir_all(Path::new("/spool")).unwrap();
        fs.write(Path::new("/spool/garbage.batch"), b"not,a,real\nbatch")
            .unwrap();
        let mut svc = Service::open(&network, cfg(), fs.clone()).unwrap();
        assert_eq!(svc.run_drain(64), DrainOutcome::Drained);
        let h = svc.health();
        assert_eq!(h.poisoned, 1);
        assert_eq!(svc.status(), ServiceStatus::Degraded);
        assert_eq!(
            spool::scan(&fs, Path::new("/quarantine")).unwrap(),
            vec!["garbage.batch".to_string()]
        );
        let log = String::from_utf8(
            fs.read(&Path::new("/quarantine").join(spool::QUARANTINE_LOG))
                .unwrap(),
        )
        .unwrap();
        assert!(
            log.contains("garbage.batch\tpoison after 2 failures"),
            "{log}"
        );
    }

    #[test]
    fn overload_sheds_to_quarantine() {
        let network = net();
        let fs = MemFs::new();
        seed_spool(&fs, 6);
        let mut c = cfg();
        c.queue_capacity = 2;
        c.shed_backlog = 1;
        let mut svc = Service::open(&network, c, fs.clone()).unwrap();
        // First tick: 2 accepted, 1 deferred, 3 shed.
        assert_eq!(svc.tick(), TickOutcome::Worked);
        let h = svc.health();
        assert_eq!(h.accepted, 2);
        assert_eq!(h.deferred, 1);
        assert_eq!(h.shed, 3);
        assert_eq!(svc.status(), ServiceStatus::Degraded);
        assert_eq!(spool::scan(&fs, Path::new("/quarantine")).unwrap().len(), 3);
        // Draining still applies everything that was not shed.
        assert_eq!(svc.run_drain(64), DrainOutcome::Drained);
        assert_eq!(svc.health().applied, 3);
    }

    #[test]
    fn cancel_checkpoints_and_stops() {
        let network = net();
        let fs = MemFs::new();
        seed_spool(&fs, 3);
        let mut c = cfg();
        c.checkpoint_every_batches = 100; // only the cancel flush
        let mut svc = Service::open(&network, c.clone(), fs.clone()).unwrap();
        assert_eq!(svc.tick(), TickOutcome::Worked);
        svc.cancel_token().cancel();
        assert_eq!(svc.tick(), TickOutcome::Cancelled);
        assert_eq!(svc.health().checkpoints, 1, "cancel flushed a checkpoint");
        // A fresh service (new token) finishes the job with no loss.
        let mut svc2 = Service::open(&network, c, fs).unwrap();
        assert_eq!(svc2.run_drain(64), DrainOutcome::Drained);
        assert_eq!(svc2.query().batches, 3);
    }

    /// Hook that panics the first time it sees the configured edge.
    struct PanicOnce {
        edge: Edge,
        left: AtomicU64,
    }

    impl FaultHook for PanicOnce {
        fn at(&self, edge: Edge) {
            if edge == self.edge
                && self
                    .left
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
            {
                panic!("injected fault at {}", edge.name());
            }
        }
    }

    #[test]
    fn supervisor_restarts_after_injected_panic() {
        let network = net();
        let fs = MemFs::new();
        seed_spool(&fs, 3);
        let reference = {
            let mut svc = Service::open(&network, cfg(), fs.clone()).unwrap();
            assert_eq!(svc.run_drain(64), DrainOutcome::Drained);
            svc.state_fingerprint()
        };

        let fs2 = MemFs::new();
        seed_spool(&fs2, 3);
        let hook = Arc::new(PanicOnce {
            edge: Edge::Journaled,
            left: AtomicU64::new(1),
        });
        let mut svc =
            Service::open_with(&network, cfg(), fs2, hook, None, CancelToken::new()).unwrap();
        assert_eq!(svc.run_drain(128), DrainOutcome::Drained);
        let h = svc.health();
        assert_eq!(h.restarts, 1);
        assert_eq!(h.poisoned, 0, "applied batch must not be poisoned");
        assert_eq!(svc.state_fingerprint(), reference);
    }

    /// Injected racing writer: removes one spool file right after the
    /// admission scan — modelling a producer that renames/withdraws the
    /// file between the service's `readdir` and `open`.
    struct StealOnce {
        fs: MemFs,
        victim: std::path::PathBuf,
        left: AtomicU64,
    }

    impl FaultHook for StealOnce {
        fn at(&self, edge: Edge) {
            if edge == Edge::Admit
                && self
                    .left
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
            {
                self.fs.remove_file(&self.victim).unwrap();
            }
        }
    }

    #[test]
    fn racing_writer_removal_is_tolerated_not_poisoned() {
        let network = net();
        let fs = MemFs::new();
        seed_spool(&fs, 3);
        // Partial handoffs and dotfiles sit in the spool the whole time;
        // they must never be treated as batches.
        fs.write(Path::new("/spool/b-009.batch.tmp"), b"half-written")
            .unwrap();
        fs.write(Path::new("/spool/.lock"), b"editor droppings")
            .unwrap();
        let hook = Arc::new(StealOnce {
            fs: fs.clone(),
            victim: Path::new("/spool").join("b-000.batch"),
            left: AtomicU64::new(1),
        });
        let mut svc =
            Service::open_with(&network, cfg(), fs.clone(), hook, None, CancelToken::new())
                .unwrap();
        assert_eq!(svc.run_drain(64), DrainOutcome::Drained);
        let h = svc.health();
        assert_eq!(h.applied, 2, "the two surviving batches are applied");
        assert_eq!(h.spool_races, 1, "the vanished file is counted as a race");
        assert_eq!(h.poisoned, 0, "a race is not poison");
        assert_eq!(h.restarts, 0, "a race is not a worker failure");
        assert_eq!(
            svc.status(),
            ServiceStatus::Running,
            "a race does not degrade the service"
        );
        assert!(
            spool::scan(&fs, Path::new("/quarantine"))
                .unwrap()
                .is_empty(),
            "nothing reaches quarantine"
        );
        // The partials were left untouched.
        assert!(fs.exists(Path::new("/spool/b-009.batch.tmp")));
        assert!(fs.exists(Path::new("/spool/.lock")));
    }

    #[test]
    fn restart_budget_exhaustion_fails_the_service() {
        let network = net();
        let fs = MemFs::new();
        seed_spool(&fs, 2);
        let mut c = cfg();
        c.max_restarts = 0;
        let hook = Arc::new(PanicOnce {
            edge: Edge::Applied,
            left: AtomicU64::new(1),
        });
        let mut svc = Service::open_with(&network, c, fs, hook, None, CancelToken::new()).unwrap();
        assert_eq!(svc.run_drain(64), DrainOutcome::Failed);
        assert_eq!(svc.status(), ServiceStatus::Failed);
        assert_eq!(
            svc.tick(),
            TickOutcome::Failed,
            "failed service stays failed"
        );
    }
}
