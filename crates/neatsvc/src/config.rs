//! Service configuration.

use neat_core::NeatConfig;
use neat_traj::sanitize::ErrorPolicy;
use std::path::PathBuf;

/// Everything a [`Service`](crate::service::Service) needs to run.
///
/// The three directories live on the same [`Fs`](neat_durability::fs::Fs)
/// handle the service is opened with:
///
/// * `spool_dir` — producers drop batch files here via atomic rename;
///   the service removes a file only after the batch is journaled.
/// * `state_dir` — the checkpoint store (snapshots + batch journal).
/// * `quarantine_dir` — shed and poison batches are moved here, never
///   deleted.
#[derive(Debug, Clone)]
pub struct SvcConfig {
    /// Watched directory batch files arrive in.
    pub spool_dir: PathBuf,
    /// Checkpoint store directory.
    pub state_dir: PathBuf,
    /// Where shed and poison batches are moved.
    pub quarantine_dir: PathBuf,
    /// Clustering configuration (validated at service open).
    pub neat: NeatConfig,
    /// Error policy for batch ingestion.
    pub policy: ErrorPolicy,
    /// Bounded admission queue capacity; a full queue defers arrivals.
    pub queue_capacity: usize,
    /// Deferrals tolerated per spool scan before further arrivals are
    /// shed to quarantine.
    pub shed_backlog: usize,
    /// Checkpoint after this many applied batches (`N` of the cadence).
    pub checkpoint_every_batches: usize,
    /// Checkpoint after this many accumulated control op-ticks (`T` of
    /// the cadence). `u64::MAX` disables the op-tick trigger.
    pub checkpoint_every_ops: u64,
    /// Per-batch op budget for the controlled worker (None = unlimited).
    pub batch_max_ops: Option<u64>,
    /// Per-batch deadline in clock milliseconds (needs an injected
    /// clock to fire; None = no deadline).
    pub batch_deadline_ms: Option<u64>,
    /// A batch that fails this many times is quarantined as poison.
    pub poison_after: u32,
    /// Worker restarts the supervisor performs before declaring the
    /// service unrecoverable.
    pub max_restarts: u32,
    /// Retention window in trajectory-time units. After each applied
    /// batch the watermark advances to `batch_max_time - window` and
    /// t-fragments wholly behind it are expired. `None` (the default)
    /// keeps everything forever — the pre-retention behavior.
    pub window: Option<f64>,
    /// Force a journal compaction every this many applied batches, in
    /// addition to the compaction every checkpoint performs as part of
    /// retention. `None` relies on checkpoint-time compaction alone.
    pub compact_every_batches: Option<usize>,
    /// Advance the retention watermark from the injected wall clock on
    /// idle ticks (no spool traffic), mapping one wall-clock second to
    /// one trajectory-time unit, so windows keep closing — and drift
    /// events keep firing — on quiet streams. Inert without both a
    /// [`window`](SvcConfig::window) and a clock passed to
    /// [`Service::open_with`](crate::service::Service::open_with).
    /// `false` (the default) keeps the batch-driven-only watermark.
    pub idle_expiry: bool,
}

impl SvcConfig {
    /// A configuration with conservative defaults: queue of 8, shed
    /// after 64 deferrals, checkpoint every 4 batches, no per-batch
    /// budget, poison after 2 failures, up to 8 supervised restarts.
    pub fn new(
        spool_dir: impl Into<PathBuf>,
        state_dir: impl Into<PathBuf>,
        quarantine_dir: impl Into<PathBuf>,
    ) -> Self {
        SvcConfig {
            spool_dir: spool_dir.into(),
            state_dir: state_dir.into(),
            quarantine_dir: quarantine_dir.into(),
            neat: NeatConfig::default(),
            policy: ErrorPolicy::Strict,
            queue_capacity: 8,
            shed_backlog: 64,
            checkpoint_every_batches: 4,
            checkpoint_every_ops: u64::MAX,
            batch_max_ops: None,
            batch_deadline_ms: None,
            poison_after: 2,
            max_restarts: 8,
            window: None,
            compact_every_batches: None,
            idle_expiry: false,
        }
    }
}
