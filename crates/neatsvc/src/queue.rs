//! Bounded admission queue with explicit backpressure states.
//!
//! Arrivals flow through three states as pressure mounts:
//!
//! ```text
//! accept ──queue full──▶ defer ──backlog over limit──▶ shed
//! ```
//!
//! *Accept* enqueues the batch. *Defer* leaves it in the spool — it
//! costs nothing to keep on disk and the next scan retries it. *Shed*
//! gives up on it: the caller moves the file to quarantine so the data
//! is never silently dropped, and the producer-visible backlog stays
//! bounded.

use std::collections::VecDeque;

/// The backpressure state the last admission scan ended in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Queue has room; arrivals are admitted.
    #[default]
    Accept,
    /// Queue is full; arrivals wait in the spool.
    Defer,
    /// Deferral limit exceeded; arrivals are shed to quarantine.
    Shed,
}

impl Backpressure {
    /// Stable kebab-case name for health reports.
    pub fn name(self) -> &'static str {
        match self {
            Backpressure::Accept => "accept",
            Backpressure::Defer => "defer",
            Backpressure::Shed => "shed",
        }
    }
}

/// Decision for one offered batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Enqueued for the worker.
    Accepted,
    /// Left in the spool for a later scan.
    Deferred,
    /// To be moved to quarantine by the caller.
    Shed,
}

/// FIFO admission queue over batch IDs, bounded by capacity, with a
/// per-scan deferral allowance before shedding starts.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    items: VecDeque<String>,
    capacity: usize,
    shed_backlog: usize,
    deferred_this_scan: usize,
    state: Backpressure,
}

impl AdmissionQueue {
    /// A queue holding at most `capacity` batches, tolerating
    /// `shed_backlog` deferrals per scan before shedding.
    pub fn new(capacity: usize, shed_backlog: usize) -> Self {
        AdmissionQueue {
            items: VecDeque::new(),
            capacity: capacity.max(1),
            shed_backlog,
            deferred_this_scan: 0,
            state: Backpressure::Accept,
        }
    }

    /// Starts a new spool scan: resets the per-scan deferral allowance
    /// and the reported backpressure state.
    pub fn begin_scan(&mut self) {
        self.deferred_this_scan = 0;
        self.state = if self.items.len() < self.capacity {
            Backpressure::Accept
        } else {
            Backpressure::Defer
        };
    }

    /// Offers one batch ID; on [`Admission::Accepted`] it is enqueued.
    pub fn offer(&mut self, id: &str) -> Admission {
        if self.items.len() < self.capacity {
            self.items.push_back(id.to_string());
            return Admission::Accepted;
        }
        if self.deferred_this_scan < self.shed_backlog {
            self.deferred_this_scan += 1;
            if self.state == Backpressure::Accept {
                self.state = Backpressure::Defer;
            }
            return Admission::Deferred;
        }
        self.state = Backpressure::Shed;
        Admission::Shed
    }

    /// Pops the oldest admitted batch.
    pub fn pop(&mut self) -> Option<String> {
        self.items.pop_front()
    }

    /// Whether `id` is currently enqueued.
    pub fn contains(&self, id: &str) -> bool {
        self.items.iter().any(|q| q == id)
    }

    /// Admitted batches waiting for the worker.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is enqueued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Drops every queued batch (recovery re-admits from the spool).
    pub fn clear(&mut self) {
        self.items.clear();
        self.deferred_this_scan = 0;
        self.state = Backpressure::Accept;
    }

    /// The backpressure state of the current/last scan.
    pub fn state(&self) -> Backpressure {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_until_capacity_then_defers_then_sheds() {
        let mut q = AdmissionQueue::new(2, 2);
        q.begin_scan();
        assert_eq!(q.offer("a"), Admission::Accepted);
        assert_eq!(q.offer("b"), Admission::Accepted);
        assert_eq!(q.state(), Backpressure::Accept);
        assert_eq!(q.offer("c"), Admission::Deferred);
        assert_eq!(q.state(), Backpressure::Defer);
        assert_eq!(q.offer("d"), Admission::Deferred);
        assert_eq!(q.offer("e"), Admission::Shed);
        assert_eq!(q.state(), Backpressure::Shed);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn scan_reset_restores_deferral_allowance() {
        let mut q = AdmissionQueue::new(1, 1);
        q.begin_scan();
        assert_eq!(q.offer("a"), Admission::Accepted);
        assert_eq!(q.offer("b"), Admission::Deferred);
        assert_eq!(q.offer("c"), Admission::Shed);
        assert_eq!(q.pop().as_deref(), Some("a"));
        q.begin_scan();
        assert_eq!(q.state(), Backpressure::Accept);
        assert_eq!(q.offer("b"), Admission::Accepted);
        assert_eq!(q.offer("c"), Admission::Deferred);
    }

    #[test]
    fn pop_is_fifo_and_contains_tracks_membership() {
        let mut q = AdmissionQueue::new(3, 0);
        q.begin_scan();
        q.offer("x");
        q.offer("y");
        assert!(q.contains("x") && q.contains("y") && !q.contains("z"));
        assert_eq!(q.pop().as_deref(), Some("x"));
        assert_eq!(q.pop().as_deref(), Some("y"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut q = AdmissionQueue::new(0, 0);
        q.begin_scan();
        assert_eq!(q.offer("a"), Admission::Accepted);
        assert_eq!(q.offer("b"), Admission::Shed);
    }
}
