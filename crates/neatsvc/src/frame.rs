//! Wire framing for the network ingestion front end.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//! ┌────────────┬────────────┬──────────────┐
//! │ len: u32LE │ crc: u32LE │ body (len B) │
//! └────────────┴────────────┴──────────────┘
//! ```
//!
//! `crc` is the IEEE CRC-32 of the body, so a flipped bit anywhere in
//! the body (or in the checksum itself) is detected before the body is
//! interpreted; a corrupted length field surfaces as
//! [`FrameError::TooLarge`] or a CRC mismatch over the mis-sliced body.
//! The body begins with a one-byte message kind followed by
//! [`Enc`](neat_durability::Enc)-encoded fields, reusing the exact
//! bounds-checked decoder discipline of the checkpoint codec — a
//! truncated or malformed body is an error, never a panic.
//!
//! Requests travel client → server ([`Request`]); replies travel server
//! → client ([`Reply`]). The reply vocabulary makes backpressure and
//! quarantine *visible*: `Ack{epoch}` (applied and journaled),
//! `Defer{retry_after_ms}` (durable in the spool but not applied yet —
//! retry later), `Shed` (dropped under overload — retry later), and
//! `Reject{reason}` (do not retry: invalid request, poison batch, or an
//! open circuit breaker).
//!
//! Reading from a socket uses [`FrameReader`]: a stateful accumulator
//! that survives short reads and read-timeout ticks without losing
//! partial progress, which is what lets the connection handler enforce
//! idle deadlines against a slowloris client.

use neat_core::DriftCounts;
use neat_durability::{crc32, Dec, DurabilityError, Enc};
use std::fmt;
use std::io::{self, Read, Write};

/// Frame header size: length + CRC, both little-endian `u32`.
pub const HEADER_LEN: usize = 8;

/// Default upper bound on a frame body; a corrupted or hostile length
/// prefix can never make the server allocate more than this.
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// Why a frame could not be produced from the wire.
#[derive(Debug)]
pub enum FrameError {
    /// The length prefix exceeds the configured bound.
    TooLarge {
        /// Claimed body length.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// The body does not match its checksum.
    Crc {
        /// Checksum carried in the header.
        expected: u32,
        /// Checksum of the received body.
        actual: u32,
    },
    /// The buffer ends before the frame does.
    Truncated {
        /// Bytes present.
        have: usize,
        /// Bytes the header promised.
        need: usize,
    },
    /// The body failed to decode as a known message.
    Malformed(String),
    /// An I/O error below the framing layer.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::Crc { expected, actual } => {
                write!(
                    f,
                    "frame checksum mismatch (header {expected:#010x}, body {actual:#010x})"
                )
            }
            FrameError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} of {need} bytes")
            }
            FrameError::Malformed(msg) => write!(f, "malformed frame body: {msg}"),
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<DurabilityError> for FrameError {
    fn from(e: DurabilityError) -> Self {
        FrameError::Malformed(e.to_string())
    }
}

/// Wraps `body` in a frame: header (length + CRC) followed by the body.
pub fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Parses exactly one complete frame out of `buf`, verifying the CRC.
/// Trailing bytes after the frame are an error — this is the strict
/// test-and-tooling entry point; sockets use [`FrameReader`].
///
/// # Errors
///
/// [`FrameError::Truncated`] when `buf` ends early, [`FrameError::TooLarge`],
/// [`FrameError::Crc`], or [`FrameError::Malformed`] for trailing bytes.
pub fn unframe(buf: &[u8], max: usize) -> Result<Vec<u8>, FrameError> {
    match split_frame(buf, max)? {
        Some((body, consumed)) => {
            if consumed != buf.len() {
                return Err(FrameError::Malformed(format!(
                    "{} trailing bytes after frame",
                    buf.len() - consumed
                )));
            }
            Ok(body)
        }
        None => Err(FrameError::Truncated {
            have: buf.len(),
            need: frame_need(buf),
        }),
    }
}

/// How many bytes the (possibly partial) frame at the head of `buf`
/// needs in total; `HEADER_LEN` while the header itself is incomplete.
fn frame_need(buf: &[u8]) -> usize {
    if buf.len() < HEADER_LEN {
        return HEADER_LEN;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    HEADER_LEN.saturating_add(len)
}

/// Tries to split one complete frame off the head of `buf`.
///
/// Returns `Ok(Some((body, consumed)))` for a complete, CRC-verified
/// frame, `Ok(None)` when more bytes are needed.
///
/// # Errors
///
/// [`FrameError::TooLarge`] or [`FrameError::Crc`].
pub fn split_frame(buf: &[u8], max: usize) -> Result<Option<(Vec<u8>, usize)>, FrameError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > max {
        return Err(FrameError::TooLarge { len, max });
    }
    let expected = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let total = HEADER_LEN.saturating_add(len);
    if buf.len() < total {
        return Ok(None);
    }
    let body = &buf[HEADER_LEN..total];
    let actual = crc32(body);
    if actual != expected {
        return Err(FrameError::Crc { expected, actual });
    }
    Ok(Some((body.to_vec(), total)))
}

/// Writes one framed body to `w` and flushes.
///
/// # Errors
///
/// Propagates the underlying write/flush failure.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> Result<(), FrameError> {
    w.write_all(&frame(body))?;
    w.flush()?;
    Ok(())
}

/// One observation of a [`FrameReader::poll`] call.
#[derive(Debug)]
pub enum Poll {
    /// A complete, CRC-verified frame body.
    Frame(Vec<u8>),
    /// Bytes arrived but no complete frame yet — poll again.
    Pending,
    /// The read hit the socket timeout with no new bytes; the caller
    /// checks its idle deadline and either polls again or gives up.
    TimedOut,
    /// The peer closed the connection.
    Eof {
        /// `true` when the close cut a frame in half (a torn send).
        mid_frame: bool,
    },
}

/// Incremental frame accumulator for socket reads.
///
/// Keeps partial bytes across short reads and timeout ticks, so a
/// connection handler can bound each *read call* with a socket timeout
/// (the slowloris guard) without ever losing progress on a slowly
/// arriving frame. Pipelined frames are handed out one per poll without
/// touching the socket again.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    max: usize,
}

impl FrameReader {
    /// A reader enforcing `max` as the body-size bound.
    pub fn new(max: usize) -> Self {
        FrameReader {
            buf: Vec::new(),
            max,
        }
    }

    /// Bytes currently buffered (diagnostics/tests).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Advances the reader by at most one `read` call on `r` and
    /// reports what is available. A buffered complete frame is returned
    /// without reading.
    ///
    /// # Errors
    ///
    /// Corrupt framing ([`FrameError::TooLarge`], [`FrameError::Crc`]) or a
    /// non-timeout I/O failure; after either, the stream is desynchronized
    /// and the caller should close the connection.
    pub fn poll<R: Read>(&mut self, r: &mut R) -> Result<Poll, FrameError> {
        if let Some((body, consumed)) = split_frame(&self.buf, self.max)? {
            self.buf.drain(..consumed);
            return Ok(Poll::Frame(body));
        }
        let mut chunk = [0u8; 4096];
        match r.read(&mut chunk) {
            Ok(0) => Ok(Poll::Eof {
                mid_frame: !self.buf.is_empty(),
            }),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                match split_frame(&self.buf, self.max)? {
                    Some((body, consumed)) => {
                        self.buf.drain(..consumed);
                        Ok(Poll::Frame(body))
                    }
                    None => Ok(Poll::Pending),
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(Poll::TimedOut)
            }
            Err(e) => Err(FrameError::Io(e)),
        }
    }
}

// Body kind tags. Requests use the low range, replies the high range,
// so a desynchronized peer can never mistake one for the other.
const KIND_PUSH: u8 = 0x01;
const KIND_STATUS: u8 = 0x02;
const KIND_DRAIN: u8 = 0x03;
const KIND_ACK: u8 = 0x81;
const KIND_DEFER: u8 = 0x82;
const KIND_SHED: u8 = 0x83;
const KIND_REJECT: u8 = 0x84;
const KIND_REPORT: u8 = 0x85;

/// A client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit one batch for tenant `tenant` under the idempotency key
    /// `batch_id`; `payload` is the serialized dataset, exactly what a
    /// spool file would contain.
    Push {
        /// Tenant (region) the batch belongs to.
        tenant: String,
        /// Idempotency key — becomes the spool file name and the
        /// journaled dataset name.
        batch_id: String,
        /// Serialized dataset bytes.
        payload: Vec<u8>,
    },
    /// Query one tenant's health counters and breaker state.
    Status {
        /// Tenant to report on.
        tenant: String,
    },
    /// Administrative: stop accepting, flush, checkpoint, close.
    Drain,
}

impl Request {
    /// Encodes the body (no frame header); see [`Request::encode`] for
    /// the full frame.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Request::Push {
                tenant,
                batch_id,
                payload,
            } => {
                e.u8(KIND_PUSH);
                e.str(tenant);
                e.str(batch_id);
                e.bytes(payload);
            }
            Request::Status { tenant } => {
                e.u8(KIND_STATUS);
                e.str(tenant);
            }
            Request::Drain => e.u8(KIND_DRAIN),
        }
        e.into_bytes()
    }

    /// The complete frame for this request.
    pub fn encode(&self) -> Vec<u8> {
        frame(&self.encode_body())
    }

    /// Decodes a verified frame body into a request.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] for unknown kinds, reply kinds, short
    /// bodies or trailing bytes.
    pub fn decode_body(body: &[u8]) -> Result<Self, FrameError> {
        let mut d = Dec::new(body);
        let req = match d.u8("request kind")? {
            KIND_PUSH => Request::Push {
                tenant: d.str("push tenant")?.to_string(),
                batch_id: d.str("push batch id")?.to_string(),
                payload: d.bytes("push payload")?.to_vec(),
            },
            KIND_STATUS => Request::Status {
                tenant: d.str("status tenant")?.to_string(),
            },
            KIND_DRAIN => Request::Drain,
            other => {
                return Err(FrameError::Malformed(format!(
                    "unknown request kind {other:#04x}"
                )))
            }
        };
        d.expect_exhausted("request body")?;
        Ok(req)
    }
}

/// Per-tenant health as carried by a [`Reply::Report`] — the wire
/// projection of the service's `Health` counters plus the breaker.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatusReport {
    /// Tenant the report describes.
    pub tenant: String,
    /// Coarse service status name (`running`/`degraded`/`failed`).
    pub status: String,
    /// Circuit breaker state name (`closed`/`open`/`half-open`).
    pub breaker: String,
    /// Times the breaker has tripped open.
    pub breaker_trips: u64,
    /// Batches admitted into the tenant's queue.
    pub accepted: u64,
    /// Admission deferrals.
    pub deferred: u64,
    /// Batches shed under overload.
    pub shed: u64,
    /// Batches quarantined as poison.
    pub poisoned: u64,
    /// Batches applied and journaled.
    pub applied: u64,
    /// Batches folded into the clusterer state. Unlike `applied` (a
    /// session-local counter), this survives restarts — journal replay
    /// restores it — so it is the exactly-once witness across crashes.
    pub batches: u64,
    /// Duplicate sends recognized and skipped.
    pub duplicates: u64,
    /// Supervised worker restarts.
    pub restarts: u64,
    /// Epoch of the tenant's current query view.
    pub last_epoch: u64,
    /// Retention watermark as IEEE-754 bits (`f64::to_bits`), so the
    /// report stays `Eq`; `None` until the first expiry (or when no
    /// window is configured).
    pub watermark_bits: Option<u64>,
    /// T-fragments currently retained across all flows.
    pub live_fragments: u64,
    /// Watermark advances that actually expired state.
    pub expiries: u64,
    /// Cluster-drift lifecycle totals.
    pub drift: DriftCounts,
    /// Journal compactions completed.
    pub compactions: u64,
    /// Journal compactions failed (service keeps serving and retries).
    pub compaction_failures: u64,
}

impl StatusReport {
    /// One-line operator rendering.
    pub fn digest(&self) -> String {
        let watermark = match self.watermark_bits {
            Some(bits) => format!("{}", f64::from_bits(bits)),
            None => "none".to_string(),
        };
        format!(
            "tenant={} status={} breaker={} trips={} applied={} batches={} accepted={} \
             deferred={} shed={} poisoned={} duplicates={} restarts={} epoch={} \
             watermark={} live-fragments={} expiries={} \
             drift=born:{},grew:{},shrank:{},merged:{},died:{} \
             compactions={} compaction-failures={}",
            self.tenant,
            self.status,
            self.breaker,
            self.breaker_trips,
            self.applied,
            self.batches,
            self.accepted,
            self.deferred,
            self.shed,
            self.poisoned,
            self.duplicates,
            self.restarts,
            self.last_epoch,
            watermark,
            self.live_fragments,
            self.expiries,
            self.drift.born,
            self.drift.grew,
            self.drift.shrank,
            self.drift.merged,
            self.drift.died,
            self.compactions,
            self.compaction_failures
        )
    }
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// The batch is applied and journaled (or was already — duplicate
    /// sends are acknowledged idempotently). `epoch` is the tenant's
    /// query-view version that includes it.
    Ack {
        /// Query-view epoch covering the batch.
        epoch: u64,
    },
    /// The batch is durable in the spool but not applied yet (queue
    /// full or the service is draining); retry no sooner than the hint.
    Defer {
        /// Suggested wait, drawn from the server's jitter schedule.
        retry_after_ms: u64,
    },
    /// Dropped under overload before becoming durable; retry later.
    Shed,
    /// Not retryable: bad request, poison batch, exhausted worker or an
    /// open circuit breaker.
    Reject {
        /// Human-readable cause.
        reason: String,
    },
    /// Answer to a [`Request::Status`] query (boxed: the report is by
    /// far the widest reply and would otherwise bloat every `Reply`).
    Report(Box<StatusReport>),
}

impl Reply {
    /// Encodes the body (no frame header); see [`Reply::encode`].
    pub fn encode_body(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Reply::Ack { epoch } => {
                e.u8(KIND_ACK);
                e.u64(*epoch);
            }
            Reply::Defer { retry_after_ms } => {
                e.u8(KIND_DEFER);
                e.u64(*retry_after_ms);
            }
            Reply::Shed => e.u8(KIND_SHED),
            Reply::Reject { reason } => {
                e.u8(KIND_REJECT);
                e.str(reason);
            }
            Reply::Report(r) => {
                e.u8(KIND_REPORT);
                e.str(&r.tenant);
                e.str(&r.status);
                e.str(&r.breaker);
                e.u64(r.breaker_trips);
                e.u64(r.accepted);
                e.u64(r.deferred);
                e.u64(r.shed);
                e.u64(r.poisoned);
                e.u64(r.applied);
                e.u64(r.batches);
                e.u64(r.duplicates);
                e.u64(r.restarts);
                e.u64(r.last_epoch);
                match r.watermark_bits {
                    Some(bits) => {
                        e.u8(1);
                        e.u64(bits);
                    }
                    None => e.u8(0),
                }
                e.u64(r.live_fragments);
                e.u64(r.expiries);
                e.u64(r.drift.born);
                e.u64(r.drift.grew);
                e.u64(r.drift.shrank);
                e.u64(r.drift.merged);
                e.u64(r.drift.died);
                e.u64(r.compactions);
                e.u64(r.compaction_failures);
            }
        }
        e.into_bytes()
    }

    /// The complete frame for this reply.
    pub fn encode(&self) -> Vec<u8> {
        frame(&self.encode_body())
    }

    /// Decodes a verified frame body into a reply.
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] for unknown kinds, request kinds, short
    /// bodies or trailing bytes.
    pub fn decode_body(body: &[u8]) -> Result<Self, FrameError> {
        let mut d = Dec::new(body);
        let reply = match d.u8("reply kind")? {
            KIND_ACK => Reply::Ack {
                epoch: d.u64("ack epoch")?,
            },
            KIND_DEFER => Reply::Defer {
                retry_after_ms: d.u64("defer hint")?,
            },
            KIND_SHED => Reply::Shed,
            KIND_REJECT => Reply::Reject {
                reason: d.str("reject reason")?.to_string(),
            },
            KIND_REPORT => Reply::Report(Box::new(StatusReport {
                tenant: d.str("report tenant")?.to_string(),
                status: d.str("report status")?.to_string(),
                breaker: d.str("report breaker")?.to_string(),
                breaker_trips: d.u64("report trips")?,
                accepted: d.u64("report accepted")?,
                deferred: d.u64("report deferred")?,
                shed: d.u64("report shed")?,
                poisoned: d.u64("report poisoned")?,
                applied: d.u64("report applied")?,
                batches: d.u64("report batches")?,
                duplicates: d.u64("report duplicates")?,
                restarts: d.u64("report restarts")?,
                last_epoch: d.u64("report epoch")?,
                watermark_bits: match d.u8("report watermark flag")? {
                    0 => None,
                    1 => Some(d.u64("report watermark bits")?),
                    other => {
                        return Err(FrameError::Malformed(format!(
                            "bad watermark flag {other:#04x}"
                        )))
                    }
                },
                live_fragments: d.u64("report live fragments")?,
                expiries: d.u64("report expiries")?,
                drift: DriftCounts {
                    born: d.u64("report drift born")?,
                    grew: d.u64("report drift grew")?,
                    shrank: d.u64("report drift shrank")?,
                    merged: d.u64("report drift merged")?,
                    died: d.u64("report drift died")?,
                },
                compactions: d.u64("report compactions")?,
                compaction_failures: d.u64("report compaction failures")?,
            })),
            other => {
                return Err(FrameError::Malformed(format!(
                    "unknown reply kind {other:#04x}"
                )))
            }
        };
        d.expect_exhausted("reply body")?;
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn push() -> Request {
        Request::Push {
            tenant: "sj".into(),
            batch_id: "b-001.batch".into(),
            payload: vec![1, 2, 3, 250],
        }
    }

    #[test]
    fn request_frames_round_trip() {
        for req in [
            push(),
            Request::Status {
                tenant: "atl".into(),
            },
            Request::Drain,
        ] {
            let wire = req.encode();
            let body = unframe(&wire, DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(Request::decode_body(&body).unwrap(), req);
        }
    }

    #[test]
    fn reply_frames_round_trip() {
        for reply in [
            Reply::Ack { epoch: 9 },
            Reply::Defer {
                retry_after_ms: 120,
            },
            Reply::Shed,
            Reply::Reject {
                reason: "poison".into(),
            },
            Reply::Report(Box::new(StatusReport {
                tenant: "sj".into(),
                status: "running".into(),
                breaker: "closed".into(),
                applied: 4,
                last_epoch: 4,
                ..StatusReport::default()
            })),
            Reply::Report(Box::new(StatusReport {
                tenant: "atl".into(),
                status: "degraded".into(),
                breaker: "closed".into(),
                applied: 12,
                last_epoch: 14,
                watermark_bits: Some(420.5f64.to_bits()),
                live_fragments: 37,
                expiries: 3,
                drift: DriftCounts {
                    born: 2,
                    grew: 5,
                    shrank: 1,
                    merged: 1,
                    died: 2,
                },
                compactions: 4,
                compaction_failures: 1,
                ..StatusReport::default()
            })),
        ] {
            let wire = reply.encode();
            let body = unframe(&wire, DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(Reply::decode_body(&body).unwrap(), reply);
        }
    }

    #[test]
    fn corrupted_body_fails_crc() {
        let mut wire = push().encode();
        let last = wire.len() - 1;
        wire[last] ^= 0x40;
        assert!(matches!(
            unframe(&wire, DEFAULT_MAX_FRAME),
            Err(FrameError::Crc { .. })
        ));
    }

    #[test]
    fn oversized_length_is_bounded() {
        let mut wire = push().encode();
        wire[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            unframe(&wire, DEFAULT_MAX_FRAME),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn truncation_is_reported_not_panicked() {
        let wire = push().encode();
        for cut in 0..wire.len() {
            let err = unframe(&wire[..cut], DEFAULT_MAX_FRAME).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn request_reply_kinds_do_not_cross() {
        let body = Reply::Ack { epoch: 1 }.encode_body();
        assert!(Request::decode_body(&body).is_err());
        let body = Request::Drain.encode_body();
        assert!(Reply::decode_body(&body).is_err());
    }

    #[test]
    fn reader_survives_split_and_pipelined_frames() {
        let a = push().encode();
        let b = Request::Drain.encode();
        let mut wire = Vec::new();
        wire.extend_from_slice(&a);
        wire.extend_from_slice(&b);
        // Feed through a cursor: first poll may need several reads worth
        // of buffering, but both frames must come out in order.
        let mut cur = Cursor::new(wire);
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        let mut bodies = Vec::new();
        for _ in 0..16 {
            match reader.poll(&mut cur).unwrap() {
                Poll::Frame(body) => bodies.push(body),
                Poll::Pending => {}
                Poll::TimedOut => {}
                Poll::Eof { .. } => break,
            }
        }
        assert_eq!(bodies.len(), 2);
        assert_eq!(Request::decode_body(&bodies[0]).unwrap(), push());
        assert_eq!(Request::decode_body(&bodies[1]).unwrap(), Request::Drain);
    }

    #[test]
    fn reader_reports_torn_eof() {
        let wire = push().encode();
        let mut cur = Cursor::new(wire[..wire.len() / 2].to_vec());
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        loop {
            match reader.poll(&mut cur).unwrap() {
                Poll::Eof { mid_frame } => {
                    assert!(mid_frame, "half a frame must be reported as torn");
                    break;
                }
                Poll::Frame(_) => panic!("incomplete frame must not decode"),
                _ => {}
            }
        }
    }
}
