//! T-fragments (Definition 1 of the paper).
//!
//! A t-fragment is a maximal run of consecutive trajectory points that lie
//! on a single road segment. NEAT Phase 1 extracts t-fragments by splitting
//! each trajectory at road junctions; this module provides the t-fragment
//! type itself plus the pure splitting routine for trajectories that are
//! already map-matched (junction insertion for non-contiguous samples lives
//! in the `neat-mapmatch` crate).

use crate::trajectory::{Trajectory, TrajectoryId};
use neat_rnet::{RoadLocation, SegmentId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A maximal single-segment sub-trajectory
/// (`tf = {trid, sid, lk … lk+m}`).
///
/// Only the endpoint locations and the point count are retained — the paper
/// notes that after Phase 1 only the first/last points and inserted
/// junction points play a role in clustering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TFragment {
    /// Trajectory this fragment was extracted from.
    pub trajectory: TrajectoryId,
    /// Road segment on which every point of the fragment lies.
    pub segment: SegmentId,
    /// First location of the fragment (earliest time).
    pub first: RoadLocation,
    /// Last location of the fragment (latest time).
    pub last: RoadLocation,
    /// Number of original points collapsed into this fragment.
    pub point_count: usize,
}

impl TFragment {
    /// Time spent on the segment by this fragment, in seconds.
    pub fn duration(&self) -> f64 {
        self.last.time - self.first.time
    }
}

impl fmt::Display for TFragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tf({}, {}, {} pts, {:.1}s)",
            self.trajectory,
            self.segment,
            self.point_count,
            self.duration()
        )
    }
}

/// Splits a map-matched trajectory into its t-fragments.
///
/// Consecutive points with equal segment ids are grouped into one fragment;
/// the fragment boundary falls between points whose segment ids differ.
/// The result covers every point of the trajectory exactly once and
/// preserves visit order (so direction of movement is maintained, as the
/// paper requires).
///
/// ```
/// use neat_traj::{Trajectory, TrajectoryId};
/// use neat_traj::fragment::split_into_fragments;
/// use neat_rnet::{RoadLocation, SegmentId, Point};
///
/// # fn main() -> Result<(), neat_traj::TrajError> {
/// let (s0, s1) = (SegmentId::new(0), SegmentId::new(1));
/// let tr = Trajectory::new(TrajectoryId::new(9), vec![
///     RoadLocation::new(s0, Point::new(0.0, 0.0), 0.0),
///     RoadLocation::new(s0, Point::new(80.0, 0.0), 8.0),
///     RoadLocation::new(s1, Point::new(120.0, 0.0), 12.0),
/// ])?;
/// let frags = split_into_fragments(&tr);
/// assert_eq!(frags.len(), 2);
/// assert_eq!(frags[0].segment, s0);
/// assert_eq!(frags[0].point_count, 2);
/// assert_eq!(frags[1].segment, s1);
/// # Ok(())
/// # }
/// ```
pub fn split_into_fragments(tr: &Trajectory) -> Vec<TFragment> {
    let pts = tr.points();
    let mut out = Vec::new();
    let mut start = 0usize;
    for i in 1..=pts.len() {
        let boundary = i == pts.len() || pts[i].segment != pts[start].segment;
        if boundary {
            out.push(TFragment {
                trajectory: tr.id(),
                segment: pts[start].segment,
                first: pts[start],
                last: pts[i - 1],
                point_count: i - start,
            });
            start = i;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::Point;

    fn loc(seg: usize, x: f64, t: f64) -> RoadLocation {
        RoadLocation::new(SegmentId::new(seg), Point::new(x, 0.0), t)
    }

    fn tr(points: Vec<RoadLocation>) -> Trajectory {
        Trajectory::new(TrajectoryId::new(1), points).unwrap()
    }

    #[test]
    fn single_segment_single_fragment() {
        let t = tr(vec![loc(0, 0.0, 0.0), loc(0, 10.0, 1.0), loc(0, 20.0, 2.0)]);
        let f = split_into_fragments(&t);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].point_count, 3);
        assert_eq!(f[0].first.time, 0.0);
        assert_eq!(f[0].last.time, 2.0);
        assert_eq!(f[0].duration(), 2.0);
    }

    #[test]
    fn fragments_partition_points() {
        let t = tr(vec![
            loc(0, 0.0, 0.0),
            loc(0, 10.0, 1.0),
            loc(1, 20.0, 2.0),
            loc(2, 30.0, 3.0),
            loc(2, 40.0, 4.0),
            loc(2, 50.0, 5.0),
        ]);
        let f = split_into_fragments(&t);
        assert_eq!(f.len(), 3);
        let total: usize = f.iter().map(|x| x.point_count).sum();
        assert_eq!(total, t.len());
        assert_eq!(f[0].segment, SegmentId::new(0));
        assert_eq!(f[1].segment, SegmentId::new(1));
        assert_eq!(f[1].point_count, 1);
        assert_eq!(f[2].segment, SegmentId::new(2));
    }

    #[test]
    fn revisiting_a_segment_creates_separate_fragments() {
        // A → B → A (like driving around the block): two distinct fragments
        // on segment A, preserving direction/visit order.
        let t = tr(vec![
            loc(0, 0.0, 0.0),
            loc(1, 10.0, 1.0),
            loc(0, 20.0, 2.0),
            loc(0, 30.0, 3.0),
        ]);
        let f = split_into_fragments(&t);
        assert_eq!(f.len(), 3);
        assert_eq!(f[0].segment, SegmentId::new(0));
        assert_eq!(f[2].segment, SegmentId::new(0));
        assert_eq!(f[2].point_count, 2);
    }

    #[test]
    fn fragment_order_is_chronological() {
        let t = tr(vec![loc(3, 0.0, 0.0), loc(4, 10.0, 5.0), loc(5, 20.0, 9.0)]);
        let f = split_into_fragments(&t);
        for w in f.windows(2) {
            assert!(w[0].last.time <= w[1].first.time);
        }
    }

    #[test]
    fn display_mentions_ids() {
        let t = tr(vec![loc(2, 0.0, 0.0), loc(2, 5.0, 1.5)]);
        let f = split_into_fragments(&t);
        let s = f[0].to_string();
        assert!(s.contains("tr1"));
        assert!(s.contains("s2"));
    }
}
