//! Error types for trajectory construction and I/O.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing, validating or parsing trajectories.
#[derive(Debug)]
#[non_exhaustive]
pub enum TrajError {
    /// A trajectory must contain at least two points to describe movement.
    TooFewPoints {
        /// Number of points supplied.
        got: usize,
    },
    /// Timestamps must be non-decreasing along a trajectory.
    NonMonotonicTime {
        /// Index of the offending point.
        index: usize,
        /// Timestamp of the previous point.
        prev: f64,
        /// Offending timestamp.
        next: f64,
    },
    /// A dataset line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for TrajError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrajError::TooFewPoints { got } => {
                write!(f, "trajectory needs at least 2 points, got {got}")
            }
            TrajError::NonMonotonicTime { index, prev, next } => write!(
                f,
                "timestamp at point {index} goes backwards ({next} < {prev})"
            ),
            TrajError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            TrajError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for TrajError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TrajError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TrajError {
    fn from(e: std::io::Error) -> Self {
        TrajError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let variants = [
            TrajError::TooFewPoints { got: 1 },
            TrajError::NonMonotonicTime {
                index: 3,
                prev: 5.0,
                next: 4.0,
            },
            TrajError::Parse {
                line: 7,
                message: "bad field".into(),
            },
            TrajError::Io(std::io::Error::other("boom")),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error as _;
        let e = TrajError::from(std::io::Error::other("x"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TrajError>();
    }
}
