//! Trajectory model for the NEAT reproduction.
//!
//! A *trajectory* (Section II-B of the paper) is a time-ordered sequence of
//! road-network locations recorded by one mobile object on one trip. A
//! *t-fragment* (Definition 1) is a maximal sub-trajectory whose points all
//! lie on the same road segment; t-fragments are the atomic clustering unit
//! of NEAT.
//!
//! This crate provides:
//!
//! * [`Trajectory`] and [`TrajectoryId`] — validated time-ordered location
//!   sequences ([`trajectory`]),
//! * [`TFragment`] — the paper's t-fragment ([`fragment`]),
//! * [`Dataset`] — a named collection of trajectories with aggregate
//!   statistics matching Table II of the paper ([`dataset`]),
//! * [`SampleArena`] — contiguous struct-of-arrays sample storage backing
//!   the phases 1–2 fast path ([`arena`]),
//! * plain-text I/O for datasets ([`io`]),
//! * ingestion sanitization with configurable error policies
//!   ([`sanitize`]): detect, repair or quarantine corrupt GPS feeds
//!   instead of aborting.

pub mod arena;
pub mod dataset;
pub mod error;
pub mod fragment;
pub mod io;
pub mod ops;
pub mod sanitize;
pub mod trajectory;

pub use arena::{SampleArena, TrajView};
pub use dataset::{Dataset, DatasetStats};
pub use error::TrajError;
pub use fragment::TFragment;
pub use sanitize::{ErrorPolicy, SanitizeConfig, SanitizeOutput, SanitizeSummary, Sanitizer};
pub use trajectory::{Trajectory, TrajectoryId};
