//! Ingestion sanitization: detect, repair or quarantine corrupted
//! trajectory data instead of aborting the whole run.
//!
//! Real GPS feeds carry faults the paper's clean simulator never emits:
//! duplicated fixes (stale retransmissions), out-of-order fixes, teleport
//! spikes from multipath reflections, long dropout gaps and truncated
//! uploads. [`Sanitizer`] screens raw fixes *before* [`Trajectory`]
//! construction and applies one of three [`ErrorPolicy`]s:
//!
//! * [`ErrorPolicy::Strict`] — today's fail-fast behaviour: the first
//!   invalid trajectory aborts ingestion with an error. The default.
//! * [`ErrorPolicy::Skip`] — any trajectory showing an anomaly is dropped
//!   whole and recorded for quarantine; everything else proceeds.
//! * [`ErrorPolicy::Repair`] — anomalies are repaired in place: exact and
//!   stale duplicates are dropped, out-of-order fixes are reinserted
//!   within a bounded window, teleport spikes are clamped back to a
//!   plausible speed, and over-long gaps split the trajectory. Only
//!   trajectories left with fewer than two usable points are quarantined.
//!
//! Every decision is reported per trajectory ([`SanitizeReport`]) and in
//! aggregate ([`SanitizeSummary`]); rejected trajectories retain their
//! raw fixes so [`write_quarantine`] can persist them for offline triage.

use crate::dataset::Dataset;
use crate::error::TrajError;
use crate::trajectory::{Trajectory, TrajectoryId};
use neat_rnet::{Point, RoadLocation, SegmentId};
use std::fmt;
use std::io::{BufRead, Write};
use std::str::FromStr;

/// One raw GPS fix as parsed or generated, before any validation. Unlike
/// [`RoadLocation`] sequences inside a [`Trajectory`], raw fixes may be
/// out of order, duplicated or otherwise corrupt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawFix {
    /// Trajectory the fix claims to belong to.
    pub trid: u64,
    /// Road segment the fix claims to lie on.
    pub segment: SegmentId,
    /// Reported position.
    pub position: Point,
    /// Reported timestamp (seconds).
    pub time: f64,
}

impl RawFix {
    /// Builds a raw fix.
    pub fn new(trid: u64, segment: SegmentId, position: Point, time: f64) -> Self {
        RawFix {
            trid,
            segment,
            position,
            time,
        }
    }

    /// Converts to a [`RoadLocation`] (dropping the trajectory id).
    pub fn location(&self) -> RoadLocation {
        RoadLocation::new(self.segment, self.position, self.time)
    }
}

/// How ingestion reacts to per-trajectory faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorPolicy {
    /// Fail fast on the first invalid trajectory (current behaviour).
    #[default]
    Strict,
    /// Drop faulty trajectories whole; keep the rest.
    Skip,
    /// Repair what can be repaired; drop only the unrepairable.
    Repair,
}

impl ErrorPolicy {
    /// CLI-facing name (`fail` / `skip` / `repair`).
    pub fn name(self) -> &'static str {
        match self {
            ErrorPolicy::Strict => "fail",
            ErrorPolicy::Skip => "skip",
            ErrorPolicy::Repair => "repair",
        }
    }
}

impl FromStr for ErrorPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "fail" | "strict" => Ok(ErrorPolicy::Strict),
            "skip" => Ok(ErrorPolicy::Skip),
            "repair" => Ok(ErrorPolicy::Repair),
            other => Err(format!(
                "unknown error policy `{other}` (expected fail, skip or repair)"
            )),
        }
    }
}

/// Sanitizer tuning. The defaults are loose enough that clean simulator
/// output sails through untouched under every policy.
#[derive(Debug, Clone, PartialEq)]
pub struct SanitizeConfig {
    /// Active policy.
    pub policy: ErrorPolicy,
    /// Fastest plausible straight-line speed between consecutive fixes;
    /// anything above is a teleport spike. 70 m/s ≈ 250 km/h.
    pub max_speed_mps: f64,
    /// Longest tolerated gap between consecutive fixes before the
    /// trajectory is considered interrupted (split under Repair).
    pub max_gap_s: f64,
    /// How far back (in fixes) an out-of-order fix may be reinserted
    /// under Repair; older fixes are dropped as unrecoverable.
    pub reorder_window: usize,
    /// Two fixes at the identical position within this many seconds are
    /// duplicates (covers stale retransmissions with perturbed clocks).
    pub dedup_window_s: f64,
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        SanitizeConfig {
            policy: ErrorPolicy::Strict,
            max_speed_mps: 70.0,
            max_gap_s: 300.0,
            reorder_window: 8,
            dedup_window_s: 2.0,
        }
    }
}

impl SanitizeConfig {
    /// Default tuning under the given policy.
    pub fn with_policy(policy: ErrorPolicy) -> Self {
        SanitizeConfig {
            policy,
            ..SanitizeConfig::default()
        }
    }
}

/// One detected data fault, positioned by fix index within its
/// trajectory's raw fix sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum Anomaly {
    /// Timestamp goes backwards at this fix.
    OutOfOrder {
        /// Index of the offending fix.
        index: usize,
    },
    /// Same position as the previous fix within the dedup window.
    Duplicate {
        /// Index of the duplicated fix.
        index: usize,
    },
    /// Implied straight-line speed exceeds the plausible maximum.
    SpeedSpike {
        /// Index of the spiking fix.
        index: usize,
        /// Implied speed in m/s (`f64::INFINITY` for a zero-time jump).
        speed_mps: f64,
    },
    /// Time gap longer than `max_gap_s`.
    LargeGap {
        /// Index of the fix after the gap.
        index: usize,
        /// Gap duration in seconds.
        gap_s: f64,
    },
    /// Fewer than two fixes — no movement to describe.
    TooFewPoints {
        /// Number of fixes present.
        got: usize,
    },
}

impl fmt::Display for Anomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Anomaly::OutOfOrder { index } => write!(f, "out-of-order fix at {index}"),
            Anomaly::Duplicate { index } => write!(f, "duplicate fix at {index}"),
            Anomaly::SpeedSpike { index, speed_mps } => {
                write!(f, "speed spike at {index} ({speed_mps:.0} m/s)")
            }
            Anomaly::LargeGap { index, gap_s } => {
                write!(f, "gap of {gap_s:.0}s before fix {index}")
            }
            Anomaly::TooFewPoints { got } => write!(f, "only {got} fix(es)"),
        }
    }
}

/// What the sanitizer did with one trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SanitizeAction {
    /// No anomalies; passed through untouched.
    Clean,
    /// Anomalies found and repaired; the trajectory (possibly split)
    /// continues into the dataset.
    Repaired,
    /// Rejected whole; raw fixes preserved for quarantine.
    Quarantined,
}

/// Per-trajectory sanitization outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SanitizeReport {
    /// Trajectory id as claimed by its fixes.
    pub id: TrajectoryId,
    /// Raw fixes examined.
    pub points_in: usize,
    /// Points that made it into the dataset (across split parts).
    pub points_out: usize,
    /// Anomalies detected (empty for clean trajectories).
    pub anomalies: Vec<Anomaly>,
    /// Disposition.
    pub action: SanitizeAction,
}

/// Aggregate counters over one sanitization run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanitizeSummary {
    /// Trajectories examined.
    pub trajectories_in: usize,
    /// Trajectories passed through untouched.
    pub clean: usize,
    /// Trajectories repaired (still present, possibly split).
    pub repaired: usize,
    /// Trajectories rejected whole.
    pub quarantined: usize,
    /// Extra trajectories created by gap splitting.
    pub splits: usize,
    /// Raw fixes examined.
    pub points_in: usize,
    /// Points emitted into the dataset.
    pub points_out: usize,
    /// Duplicate fixes removed.
    pub points_deduped: usize,
    /// Out-of-order fixes reinserted in time order.
    pub points_reordered: usize,
    /// Teleport spikes clamped back onto a plausible course.
    pub points_clamped: usize,
    /// Fixes dropped as unrecoverable (stale beyond the reorder window,
    /// or stranded in a sub-2-point split part).
    pub points_dropped: usize,
    /// Unparseable input lines skipped (only under Skip/Repair reads).
    pub malformed_lines: usize,
}

impl SanitizeSummary {
    /// `true` when nothing was repaired, dropped or quarantined.
    pub fn is_clean(&self) -> bool {
        self.repaired == 0
            && self.quarantined == 0
            && self.points_in == self.points_out
            && self.malformed_lines == 0
    }

    /// One-line human-readable digest.
    pub fn digest(&self) -> String {
        format!(
            "{} trajectories: {} clean, {} repaired, {} quarantined; \
             {} fixes -> {} points ({} deduped, {} reordered, {} clamped, {} dropped, {} splits)",
            self.trajectories_in,
            self.clean,
            self.repaired,
            self.quarantined,
            self.points_in,
            self.points_out,
            self.points_deduped,
            self.points_reordered,
            self.points_clamped,
            self.points_dropped,
            self.splits,
        )
    }
}

/// A rejected trajectory, kept in raw form for offline inspection.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedTrajectory {
    /// Claimed trajectory id.
    pub id: TrajectoryId,
    /// Why it was rejected.
    pub reason: String,
    /// The raw fixes as received.
    pub fixes: Vec<RawFix>,
}

/// Everything a sanitization run produces.
#[derive(Debug, Clone)]
pub struct SanitizeOutput {
    /// The surviving (validated) dataset.
    pub dataset: Dataset,
    /// Per-trajectory outcomes, in input order.
    pub reports: Vec<SanitizeReport>,
    /// Aggregate counters.
    pub summary: SanitizeSummary,
    /// Rejected trajectories with their raw fixes.
    pub quarantined: Vec<QuarantinedTrajectory>,
}

/// Screens raw fixes into validated trajectories under an
/// [`ErrorPolicy`]. See the [module docs](self) for the fault model.
#[derive(Debug, Clone)]
pub struct Sanitizer {
    config: SanitizeConfig,
}

impl Sanitizer {
    /// Creates a sanitizer with explicit tuning.
    pub fn new(config: SanitizeConfig) -> Self {
        Sanitizer { config }
    }

    /// Creates a sanitizer with default tuning under `policy`.
    pub fn with_policy(policy: ErrorPolicy) -> Self {
        Sanitizer::new(SanitizeConfig::with_policy(policy))
    }

    /// The active configuration.
    pub fn config(&self) -> &SanitizeConfig {
        &self.config
    }

    /// Sanitizes a stream of raw fixes (grouped into trajectories by
    /// consecutive runs of equal `trid`, as the CSV format requires).
    ///
    /// # Errors
    ///
    /// Under [`ErrorPolicy::Strict`] the first invalid trajectory
    /// returns its [`TrajError`]; Skip and Repair never error.
    pub fn sanitize_fixes(
        &self,
        name: impl Into<String>,
        fixes: Vec<RawFix>,
    ) -> Result<SanitizeOutput, TrajError> {
        let groups = group_by_trid(fixes);
        // Fresh ids for split parts start above every id in the input.
        let mut next_id = groups
            .iter()
            .map(|(id, _)| id.value())
            .max()
            .map_or(0, |m| m + 1);

        let mut out = SanitizeOutput {
            dataset: Dataset::new(name),
            reports: Vec::with_capacity(groups.len()),
            summary: SanitizeSummary::default(),
            quarantined: Vec::new(),
        };
        for (id, fixes) in groups {
            out.summary.trajectories_in += 1;
            out.summary.points_in += fixes.len();
            match self.config.policy {
                ErrorPolicy::Strict => self.apply_strict(id, fixes, &mut out)?,
                ErrorPolicy::Skip => self.apply_skip(id, fixes, &mut out),
                ErrorPolicy::Repair => self.apply_repair(id, fixes, &mut next_id, &mut out),
            }
        }
        Ok(out)
    }

    /// Sanitizes an already-constructed dataset (used to re-screen data
    /// of unknown provenance, and by the idempotence property tests).
    ///
    /// # Errors
    ///
    /// Same as [`Sanitizer::sanitize_fixes`].
    pub fn sanitize_dataset(&self, dataset: &Dataset) -> Result<SanitizeOutput, TrajError> {
        self.sanitize_fixes(dataset.name(), dataset_fixes(dataset))
    }

    /// Reads a dataset from the CSV format of [`crate::io`], applying
    /// the policy to malformed lines as well: Strict fails on them,
    /// Skip/Repair drop them (counted in
    /// [`SanitizeSummary::malformed_lines`]).
    ///
    /// # Errors
    ///
    /// I/O errors always propagate; parse and validation errors only
    /// under [`ErrorPolicy::Strict`].
    pub fn read<R: BufRead>(
        &self,
        name: impl Into<String>,
        r: R,
    ) -> Result<SanitizeOutput, TrajError> {
        if self.config.policy == ErrorPolicy::Strict {
            // Byte-for-byte the legacy path: same errors, same dataset.
            let dataset = crate::io::read_dataset(name, r)?;
            let reports = dataset
                .trajectories()
                .iter()
                .map(|tr| SanitizeReport {
                    id: tr.id(),
                    points_in: tr.len(),
                    points_out: tr.len(),
                    anomalies: Vec::new(),
                    action: SanitizeAction::Clean,
                })
                .collect::<Vec<_>>();
            let summary = SanitizeSummary {
                trajectories_in: dataset.len(),
                clean: dataset.len(),
                points_in: dataset.total_points(),
                points_out: dataset.total_points(),
                ..SanitizeSummary::default()
            };
            return Ok(SanitizeOutput {
                dataset,
                reports,
                summary,
                quarantined: Vec::new(),
            });
        }
        let raw = crate::io::read_raw_fixes(r)?;
        let mut out = self.sanitize_fixes(name, raw.fixes)?;
        out.summary.malformed_lines = raw.malformed.len();
        Ok(out)
    }

    fn apply_strict(
        &self,
        id: TrajectoryId,
        fixes: Vec<RawFix>,
        out: &mut SanitizeOutput,
    ) -> Result<(), TrajError> {
        let n = fixes.len();
        let tr = Trajectory::new(id, fixes.iter().map(RawFix::location).collect())?;
        out.dataset.push(tr);
        out.summary.clean += 1;
        out.summary.points_out += n;
        out.reports.push(SanitizeReport {
            id,
            points_in: n,
            points_out: n,
            anomalies: Vec::new(),
            action: SanitizeAction::Clean,
        });
        Ok(())
    }

    fn apply_skip(&self, id: TrajectoryId, fixes: Vec<RawFix>, out: &mut SanitizeOutput) {
        let anomalies = self.detect(&fixes);
        let n = fixes.len();
        if anomalies.is_empty() {
            let tr = Trajectory::new(id, fixes.iter().map(RawFix::location).collect())
                .expect("fixes with no anomalies satisfy trajectory invariants"); // lint:allow(L1) reason=anomaly-free fixes satisfy the trajectory invariants by definition
            out.dataset.push(tr);
            out.summary.clean += 1;
            out.summary.points_out += n;
            out.reports.push(SanitizeReport {
                id,
                points_in: n,
                points_out: n,
                anomalies,
                action: SanitizeAction::Clean,
            });
        } else {
            out.summary.quarantined += 1;
            out.quarantined.push(QuarantinedTrajectory {
                id,
                reason: describe(&anomalies),
                fixes,
            });
            out.reports.push(SanitizeReport {
                id,
                points_in: n,
                points_out: 0,
                anomalies,
                action: SanitizeAction::Quarantined,
            });
        }
    }

    fn apply_repair(
        &self,
        id: TrajectoryId,
        fixes: Vec<RawFix>,
        next_id: &mut u64,
        out: &mut SanitizeOutput,
    ) {
        let anomalies = self.detect(&fixes);
        let n = fixes.len();
        if anomalies.is_empty() {
            let tr = Trajectory::new(id, fixes.iter().map(RawFix::location).collect())
                .expect("fixes with no anomalies satisfy trajectory invariants"); // lint:allow(L1) reason=anomaly-free fixes satisfy the trajectory invariants by definition
            out.dataset.push(tr);
            out.summary.clean += 1;
            out.summary.points_out += n;
            out.reports.push(SanitizeReport {
                id,
                points_in: n,
                points_out: n,
                anomalies,
                action: SanitizeAction::Clean,
            });
            return;
        }
        let (parts, stats) = self.repair(&fixes);
        out.summary.points_deduped += stats.deduped;
        out.summary.points_reordered += stats.reordered;
        out.summary.points_clamped += stats.clamped;
        out.summary.points_dropped += stats.dropped;
        if parts.is_empty() {
            out.summary.quarantined += 1;
            out.quarantined.push(QuarantinedTrajectory {
                id,
                reason: format!("{} (unrepairable)", describe(&anomalies)),
                fixes,
            });
            out.reports.push(SanitizeReport {
                id,
                points_in: n,
                points_out: 0,
                anomalies,
                action: SanitizeAction::Quarantined,
            });
            return;
        }
        out.summary.repaired += 1;
        out.summary.splits += parts.len() - 1;
        let mut points_out = 0usize;
        for (i, part) in parts.into_iter().enumerate() {
            let part_id = if i == 0 {
                id
            } else {
                let fresh = TrajectoryId::new(*next_id);
                *next_id += 1;
                fresh
            };
            points_out += part.len();
            let tr = Trajectory::new(part_id, part.iter().map(RawFix::location).collect())
                .expect("repaired parts satisfy trajectory invariants"); // lint:allow(L1) reason=repair splits parts at every invariant violation
            out.dataset.push(tr);
        }
        out.summary.points_out += points_out;
        out.reports.push(SanitizeReport {
            id,
            points_in: n,
            points_out,
            anomalies,
            action: SanitizeAction::Repaired,
        });
    }

    /// Detects anomalies without modifying anything.
    pub fn detect(&self, fixes: &[RawFix]) -> Vec<Anomaly> {
        let mut anomalies = Vec::new();
        if fixes.len() < 2 {
            anomalies.push(Anomaly::TooFewPoints { got: fixes.len() });
            return anomalies;
        }
        for (i, w) in fixes.windows(2).enumerate() {
            let (a, b) = (&w[0], &w[1]);
            let dt = b.time - a.time;
            let dist = a.position.distance(b.position);
            let index = i + 1;
            if dt < 0.0 {
                anomalies.push(Anomaly::OutOfOrder { index });
                continue;
            }
            if same_place(a, b) && dt <= self.config.dedup_window_s {
                anomalies.push(Anomaly::Duplicate { index });
                continue;
            }
            if dt > self.config.max_gap_s {
                anomalies.push(Anomaly::LargeGap { index, gap_s: dt });
            }
            let speed = if dt > 0.0 {
                dist / dt
            } else if dist > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            if speed > self.config.max_speed_mps {
                anomalies.push(Anomaly::SpeedSpike {
                    index,
                    speed_mps: speed,
                });
            }
        }
        anomalies
    }

    /// Repairs one trajectory's fixes: reorder, clamp, dedup, then split
    /// on gaps. Returns the surviving parts (each with ≥ 2 time-ordered
    /// fixes) and what was done.
    fn repair(&self, fixes: &[RawFix]) -> (Vec<Vec<RawFix>>, RepairStats) {
        let mut stats = RepairStats::default();

        // 1. Bounded-window reorder: fixes arriving late are reinserted
        //    where their timestamp belongs, as long as that spot is
        //    within the lookback window; anything staler is dropped.
        let mut ordered: Vec<RawFix> = Vec::with_capacity(fixes.len());
        for &fix in fixes {
            match ordered.last() {
                Some(last) if fix.time < last.time => {
                    let lo = ordered.len().saturating_sub(self.config.reorder_window);
                    let mut j = ordered.len();
                    while j > lo && ordered[j - 1].time > fix.time {
                        j -= 1;
                    }
                    if j > 0 && ordered[j - 1].time > fix.time {
                        stats.dropped += 1;
                    } else {
                        ordered.insert(j, fix);
                        stats.reordered += 1;
                    }
                }
                _ => ordered.push(fix),
            }
        }

        // 2. Clamp teleport spikes: pull the spiking fix back along the
        //    displacement direction to 95% of the plausible maximum, so
        //    a re-screen sees it comfortably under the limit.
        for i in 1..ordered.len() {
            let prev = ordered[i - 1];
            let cur = ordered[i];
            let dt = cur.time - prev.time;
            let dist = prev.position.distance(cur.position);
            let spike = if dt > 0.0 {
                dist / dt > self.config.max_speed_mps
            } else {
                dist > 0.0
            };
            if spike {
                let reach = 0.95 * self.config.max_speed_mps * dt;
                ordered[i].position = if dist <= f64::EPSILON || reach <= 0.0 {
                    prev.position
                } else {
                    prev.position.lerp(cur.position, reach / dist)
                };
                stats.clamped += 1;
            }
        }

        // 3. Dedup: a fix at the identical position as the last kept fix
        //    within the dedup window is a retransmission; drop it.
        let mut deduped: Vec<RawFix> = Vec::with_capacity(ordered.len());
        for fix in ordered {
            if let Some(prev) = deduped.last() {
                if same_place(prev, &fix) && fix.time - prev.time <= self.config.dedup_window_s {
                    stats.deduped += 1;
                    continue;
                }
            }
            deduped.push(fix);
        }

        // 4. Split on over-long gaps; parts too short to stand alone are
        //    dropped (their fixes counted).
        let mut parts: Vec<Vec<RawFix>> = Vec::new();
        let mut current: Vec<RawFix> = Vec::new();
        let mut push_part = |part: Vec<RawFix>, stats: &mut RepairStats| {
            if part.len() >= 2 {
                parts.push(part);
            } else {
                stats.dropped += part.len();
            }
        };
        for fix in deduped {
            if let Some(prev) = current.last() {
                if fix.time - prev.time > self.config.max_gap_s {
                    push_part(std::mem::take(&mut current), &mut stats);
                }
            }
            current.push(fix);
        }
        push_part(current, &mut stats);
        (parts, stats)
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct RepairStats {
    reordered: usize,
    deduped: usize,
    clamped: usize,
    dropped: usize,
}

fn same_place(a: &RawFix, b: &RawFix) -> bool {
    a.segment == b.segment && a.position.x == b.position.x && a.position.y == b.position.y
}

fn describe(anomalies: &[Anomaly]) -> String {
    const SHOWN: usize = 4;
    let mut parts: Vec<String> = anomalies
        .iter()
        .take(SHOWN)
        .map(|a| a.to_string())
        .collect();
    if anomalies.len() > SHOWN {
        parts.push(format!("+{} more", anomalies.len() - SHOWN));
    }
    parts.join("; ")
}

fn group_by_trid(fixes: Vec<RawFix>) -> Vec<(TrajectoryId, Vec<RawFix>)> {
    let mut groups: Vec<(TrajectoryId, Vec<RawFix>)> = Vec::new();
    for fix in fixes {
        match groups.last_mut() {
            Some((id, run)) if id.value() == fix.trid => run.push(fix),
            _ => groups.push((TrajectoryId::new(fix.trid), vec![fix])),
        }
    }
    groups
}

/// Flattens a dataset back into raw fixes (dataset order).
pub fn dataset_fixes(dataset: &Dataset) -> Vec<RawFix> {
    let mut fixes = Vec::with_capacity(dataset.total_points());
    for tr in dataset.trajectories() {
        for p in tr.points() {
            fixes.push(RawFix::new(tr.id().value(), p.segment, p.position, p.time));
        }
    }
    fixes
}

/// Writes quarantined trajectories in the dataset CSV format, each
/// preceded by a comment carrying its rejection reason, so the file both
/// documents the rejects and can be re-read as raw fixes later.
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_quarantine<W: Write>(
    quarantined: &[QuarantinedTrajectory],
    mut w: W,
) -> Result<(), TrajError> {
    writeln!(w, "# quarantine: {} trajectories", quarantined.len())?;
    writeln!(w, "# trid,sid,x,y,t")?;
    for q in quarantined {
        writeln!(w, "# {}: {}", q.id, q.reason)?;
        for fix in &q.fixes {
            writeln!(
                w,
                "{},{},{},{},{}",
                fix.trid,
                fix.segment.index(),
                fix.position.x,
                fix.position.y,
                fix.time
            )?;
        }
    }
    Ok(())
}

/// What a capped quarantine write actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuarantineWriteReport {
    /// Trajectories written in full.
    pub written: usize,
    /// Trajectories dropped to honour the byte budget. Dropping happens
    /// from the *end* of the list: the earliest rejects — usually the
    /// ones being debugged — survive.
    pub dropped: usize,
    /// Bytes emitted (including the trailer noting any drops).
    pub bytes: usize,
}

impl QuarantineWriteReport {
    /// True when every quarantined trajectory landed in the file.
    pub fn is_complete(&self) -> bool {
        self.dropped == 0
    }
}

/// [`write_quarantine`] under a byte budget: trajectory blocks are
/// emitted in order until the next block would exceed `max_bytes`; the
/// rest are dropped and counted, and a trailer comment records the drop
/// so a truncated file is self-describing.
///
/// With `max_bytes = None` (or a budget every block fits under) the
/// output is byte-identical to [`write_quarantine`].
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_quarantine_capped<W: Write>(
    quarantined: &[QuarantinedTrajectory],
    mut w: W,
    max_bytes: Option<usize>,
) -> Result<QuarantineWriteReport, TrajError> {
    let mut header = Vec::new();
    writeln!(header, "# quarantine: {} trajectories", quarantined.len())?;
    writeln!(header, "# trid,sid,x,y,t")?;

    let mut report = QuarantineWriteReport {
        bytes: header.len(),
        ..QuarantineWriteReport::default()
    };
    w.write_all(&header)?;

    for q in quarantined {
        let mut block = Vec::new();
        writeln!(block, "# {}: {}", q.id, q.reason)?;
        for fix in &q.fixes {
            writeln!(
                block,
                "{},{},{},{},{}",
                fix.trid,
                fix.segment.index(),
                fix.position.x,
                fix.position.y,
                fix.time
            )?;
        }
        if let Some(cap) = max_bytes {
            if report.bytes + block.len() > cap {
                report.dropped = quarantined.len() - report.written;
                break;
            }
        }
        w.write_all(&block)?;
        report.bytes += block.len();
        report.written += 1;
    }
    if report.dropped > 0 {
        let mut trailer = Vec::new();
        writeln!(
            trailer,
            "# truncated: {} trajectories dropped (byte budget {})",
            report.dropped,
            max_bytes.unwrap_or(0)
        )?;
        w.write_all(&trailer)?;
        report.bytes += trailer.len();
    }
    Ok(report)
}

/// Atomically saves quarantined trajectories to `path` in the
/// [`write_quarantine`] format: the file is staged in full, written to a
/// temporary sibling and renamed into place, so a crash mid-save never
/// leaves a truncated or half-written quarantine file behind.
///
/// # Errors
///
/// Propagates formatting and filesystem failures; on error the
/// destination is either absent or still holds its previous contents.
pub fn save_quarantine<P: AsRef<std::path::Path>>(
    quarantined: &[QuarantinedTrajectory],
    path: P,
) -> Result<(), TrajError> {
    let mut buf = Vec::new();
    write_quarantine(quarantined, &mut buf)?;
    neat_durability::write_atomic_std(path.as_ref(), &buf)
        .map_err(|e| TrajError::Io(std::io::Error::other(e.to_string())))?;
    Ok(())
}

/// The path the previous quarantine generation is rotated to by
/// [`save_quarantine_capped`]: `<path>.1`.
pub fn rotated_quarantine_path(path: &std::path::Path) -> std::path::PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".1");
    std::path::PathBuf::from(name)
}

/// [`save_quarantine`] with a byte budget and single-generation
/// rotation: an existing file at `path` is first renamed to `<path>.1`
/// (replacing any older generation), then the capped content is written
/// atomically. Long-running sessions that quarantine on every batch thus
/// hold at most two bounded files instead of growing without limit.
///
/// # Errors
///
/// Propagates formatting and filesystem failures; the previous
/// generation is preserved (at `path` or `<path>.1`) on failure.
pub fn save_quarantine_capped<P: AsRef<std::path::Path>>(
    quarantined: &[QuarantinedTrajectory],
    path: P,
    max_bytes: Option<usize>,
) -> Result<QuarantineWriteReport, TrajError> {
    let path = path.as_ref();
    let mut buf = Vec::new();
    let report = write_quarantine_capped(quarantined, &mut buf, max_bytes)?;
    if path.exists() {
        std::fs::rename(path, rotated_quarantine_path(path))?;
    }
    neat_durability::write_atomic_std(path, &buf)
        .map_err(|e| TrajError::Io(std::io::Error::other(e.to_string())))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix(trid: u64, seg: usize, x: f64, t: f64) -> RawFix {
        RawFix::new(trid, SegmentId::new(seg), Point::new(x, 0.0), t)
    }

    fn clean_run(trid: u64, n: usize) -> Vec<RawFix> {
        (0..n)
            .map(|i| fix(trid, 0, i as f64 * 10.0, i as f64 * 3.0))
            .collect()
    }

    #[test]
    fn policy_parses_cli_names() {
        assert_eq!("fail".parse::<ErrorPolicy>().unwrap(), ErrorPolicy::Strict);
        assert_eq!(
            "strict".parse::<ErrorPolicy>().unwrap(),
            ErrorPolicy::Strict
        );
        assert_eq!("skip".parse::<ErrorPolicy>().unwrap(), ErrorPolicy::Skip);
        assert_eq!(
            "repair".parse::<ErrorPolicy>().unwrap(),
            ErrorPolicy::Repair
        );
        assert!("abort".parse::<ErrorPolicy>().is_err());
    }

    #[test]
    fn clean_fixes_pass_under_every_policy() {
        let fixes: Vec<RawFix> = (0..3).flat_map(|id| clean_run(id, 5)).collect();
        for policy in [ErrorPolicy::Strict, ErrorPolicy::Skip, ErrorPolicy::Repair] {
            let out = Sanitizer::with_policy(policy)
                .sanitize_fixes("clean", fixes.clone())
                .unwrap();
            assert_eq!(out.dataset.len(), 3, "{policy:?}");
            assert_eq!(out.summary.clean, 3);
            assert!(out.summary.is_clean());
            assert!(out.quarantined.is_empty());
        }
    }

    #[test]
    fn strict_fails_fast_on_backwards_time() {
        let mut fixes = clean_run(0, 4);
        fixes[2].time = 1.0; // goes backwards
        let err = Sanitizer::with_policy(ErrorPolicy::Strict)
            .sanitize_fixes("bad", fixes)
            .unwrap_err();
        assert!(matches!(err, TrajError::NonMonotonicTime { .. }));
    }

    #[test]
    fn skip_quarantines_only_the_faulty_trajectory() {
        let mut fixes = clean_run(0, 4);
        let mut bad = clean_run(1, 4);
        bad[2].time = 0.5;
        fixes.extend(bad);
        fixes.extend(clean_run(2, 4));
        let out = Sanitizer::with_policy(ErrorPolicy::Skip)
            .sanitize_fixes("mixed", fixes)
            .unwrap();
        assert_eq!(out.dataset.len(), 2);
        assert_eq!(out.summary.quarantined, 1);
        assert_eq!(out.quarantined.len(), 1);
        assert_eq!(out.quarantined[0].id, TrajectoryId::new(1));
        assert!(!out.quarantined[0].reason.is_empty());
        assert_eq!(out.quarantined[0].fixes.len(), 4);
    }

    #[test]
    fn repair_reorders_within_window() {
        let mut fixes = clean_run(0, 6);
        fixes.swap(2, 3); // adjacent out-of-order pair
        let out = Sanitizer::with_policy(ErrorPolicy::Repair)
            .sanitize_fixes("swap", fixes)
            .unwrap();
        assert_eq!(out.dataset.len(), 1);
        assert_eq!(out.summary.repaired, 1);
        assert_eq!(out.summary.points_reordered, 1);
        assert_eq!(out.dataset.trajectories()[0].len(), 6);
        let times: Vec<f64> = out.dataset.trajectories()[0]
            .points()
            .iter()
            .map(|p| p.time)
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn repair_drops_fixes_staler_than_the_window() {
        let mut cfg = SanitizeConfig::with_policy(ErrorPolicy::Repair);
        cfg.reorder_window = 2;
        let mut fixes = clean_run(0, 8);
        // A fix from the distant past arrives late.
        fixes.push(fix(0, 0, 1.0, 0.5));
        let out = Sanitizer::new(cfg).sanitize_fixes("stale", fixes).unwrap();
        assert_eq!(out.summary.points_dropped, 1);
        assert_eq!(out.dataset.trajectories()[0].len(), 8);
    }

    #[test]
    fn repair_dedups_exact_and_stale_duplicates() {
        let mut fixes = clean_run(0, 5);
        // Exact duplicate of fix 2 and a stale retransmission of fix 3.
        fixes.insert(3, fixes[2]);
        let mut stale = fixes[5];
        stale.time -= 0.8;
        fixes.insert(6, stale);
        let out = Sanitizer::with_policy(ErrorPolicy::Repair)
            .sanitize_fixes("dup", fixes)
            .unwrap();
        assert_eq!(out.summary.points_deduped, 2);
        assert_eq!(out.dataset.trajectories()[0].len(), 5);
    }

    #[test]
    fn repair_clamps_teleport_spikes() {
        let mut fixes = clean_run(0, 5);
        fixes[2].position = Point::new(50_000.0, 40_000.0); // ~60 km jump in 3 s
        let out = Sanitizer::with_policy(ErrorPolicy::Repair)
            .sanitize_fixes("spike", fixes)
            .unwrap();
        assert!(out.summary.points_clamped >= 1);
        let tr = &out.dataset.trajectories()[0];
        for w in tr.points().windows(2) {
            let dt = w[1].time - w[0].time;
            if dt > 0.0 {
                assert!(w[0].position.distance(w[1].position) / dt <= 70.0);
            }
        }
    }

    #[test]
    fn repair_splits_on_large_gaps() {
        let mut fixes = clean_run(0, 4);
        let mut tail = clean_run(0, 4);
        for f in &mut tail {
            f.time += 2_000.0; // far beyond max_gap_s
            f.position.x += 500.0;
        }
        fixes.extend(tail);
        let out = Sanitizer::with_policy(ErrorPolicy::Repair)
            .sanitize_fixes("gap", fixes)
            .unwrap();
        assert_eq!(out.summary.splits, 1);
        assert_eq!(out.dataset.len(), 2);
        // First part keeps the original id; the split part gets a fresh
        // id above every input id.
        assert_eq!(out.dataset.trajectories()[0].id(), TrajectoryId::new(0));
        assert_eq!(out.dataset.trajectories()[1].id(), TrajectoryId::new(1));
        assert!(out.dataset.validate_unique_ids().is_ok());
    }

    #[test]
    fn repair_quarantines_unrepairable_stubs() {
        let fixes = vec![fix(0, 0, 0.0, 0.0)]; // single fix: nothing to repair
        let out = Sanitizer::with_policy(ErrorPolicy::Repair)
            .sanitize_fixes("stub", fixes)
            .unwrap();
        assert!(out.dataset.is_empty());
        assert_eq!(out.summary.quarantined, 1);
        assert!(out.quarantined[0].reason.contains("unrepairable"));
    }

    #[test]
    fn repair_is_idempotent_on_its_own_output() {
        let mut fixes = clean_run(0, 8);
        fixes.swap(1, 2);
        fixes.insert(4, fixes[3]);
        fixes[6].position = Point::new(90_000.0, 0.0);
        let mut tail = clean_run(0, 3);
        for f in &mut tail {
            f.time += 5_000.0;
        }
        fixes.extend(tail);
        let sanitizer = Sanitizer::with_policy(ErrorPolicy::Repair);
        let once = sanitizer.sanitize_fixes("idem", fixes).unwrap();
        let twice = sanitizer.sanitize_dataset(&once.dataset).unwrap();
        assert!(twice.summary.is_clean(), "{}", twice.summary.digest());
        assert_eq!(once.dataset.trajectories(), twice.dataset.trajectories());
    }

    #[test]
    fn quarantine_roundtrips_through_the_writer() {
        let mut fixes = clean_run(3, 4);
        fixes[2].time = 0.5;
        let out = Sanitizer::with_policy(ErrorPolicy::Skip)
            .sanitize_fixes("q", fixes)
            .unwrap();
        let mut buf = Vec::new();
        write_quarantine(&out.quarantined, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("# quarantine: 1 trajectories"));
        assert!(text.contains("# tr3:"));
        // The raw rows re-read as the same fixes.
        let raw = crate::io::read_raw_fixes(text.as_bytes()).unwrap();
        assert_eq!(raw.fixes, out.quarantined[0].fixes);
        assert!(raw.malformed.is_empty());
    }

    #[test]
    fn detect_flags_each_fault_class() {
        let s = Sanitizer::with_policy(ErrorPolicy::Skip);
        let mut ooo = clean_run(0, 4);
        ooo[2].time = 0.5;
        assert!(matches!(s.detect(&ooo)[0], Anomaly::OutOfOrder { .. }));

        let mut dup = clean_run(0, 4);
        dup.insert(2, dup[1]);
        assert!(matches!(s.detect(&dup)[0], Anomaly::Duplicate { .. }));

        let mut spike = clean_run(0, 4);
        spike[2].position = Point::new(1e6, 0.0);
        assert!(s
            .detect(&spike)
            .iter()
            .any(|a| matches!(a, Anomaly::SpeedSpike { .. })));

        let mut gap = clean_run(0, 4);
        gap[3].time += 1e4;
        assert!(s
            .detect(&gap)
            .iter()
            .any(|a| matches!(a, Anomaly::LargeGap { .. })));

        assert!(matches!(
            s.detect(&clean_run(0, 1))[0],
            Anomaly::TooFewPoints { got: 1 }
        ));
    }

    #[test]
    fn strict_read_matches_legacy_reader() {
        let text = "# dataset: x\n0,1,0.0,0.0,0.0\n0,1,5.0,0.0,1.0\n";
        let out = Sanitizer::with_policy(ErrorPolicy::Strict)
            .read("x", text.as_bytes())
            .unwrap();
        let legacy = crate::io::read_dataset("x", text.as_bytes()).unwrap();
        assert_eq!(out.dataset.trajectories(), legacy.trajectories());
        let bad = "0,1,0.0,0.0,5.0\n0,1,5.0,0.0,1.0\n";
        assert!(Sanitizer::with_policy(ErrorPolicy::Strict)
            .read("x", bad.as_bytes())
            .is_err());
    }

    #[test]
    fn lenient_read_skips_malformed_lines() {
        let text = "0,1,0.0,0.0,0.0\nnot,a,row\n0,1,5.0,0.0,1.0\n";
        let out = Sanitizer::with_policy(ErrorPolicy::Repair)
            .read("m", text.as_bytes())
            .unwrap();
        assert_eq!(out.summary.malformed_lines, 1);
        assert_eq!(out.dataset.len(), 1);
        assert_eq!(out.dataset.total_points(), 2);
    }

    fn many_quarantined(n: usize) -> Vec<QuarantinedTrajectory> {
        (0..n)
            .map(|i| QuarantinedTrajectory {
                id: TrajectoryId::new(i as u64),
                reason: format!("reject {i}"),
                fixes: clean_run(i as u64, 3),
            })
            .collect()
    }

    #[test]
    fn capped_writer_matches_uncapped_when_budget_fits() {
        let qs = many_quarantined(5);
        let mut plain = Vec::new();
        write_quarantine(&qs, &mut plain).unwrap();
        for cap in [None, Some(plain.len()), Some(plain.len() * 10)] {
            let mut capped = Vec::new();
            let report = write_quarantine_capped(&qs, &mut capped, cap).unwrap();
            assert_eq!(capped, plain, "cap {cap:?} must be byte-identical");
            assert_eq!(report.written, 5);
            assert_eq!(report.dropped, 0);
            assert!(report.is_complete());
            assert_eq!(report.bytes, plain.len());
        }
    }

    #[test]
    fn capped_writer_drops_tail_and_records_it() {
        let qs = many_quarantined(6);
        let mut full = Vec::new();
        write_quarantine(&qs, &mut full).unwrap();
        // Budget for roughly half the file: the tail is dropped, the
        // trailer says so, and every surviving block is intact.
        let mut out = Vec::new();
        let report = write_quarantine_capped(&qs, &mut out, Some(full.len() / 2)).unwrap();
        assert!(report.dropped > 0);
        assert_eq!(report.written + report.dropped, 6);
        assert_eq!(report.bytes, out.len());
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains(&format!(
            "# truncated: {} trajectories dropped",
            report.dropped
        )));
        // Early rejects survive; the dropped ones are the latest.
        assert!(text.contains("# tr0: reject 0"));
        assert!(!text.contains("# tr5: reject 5"));
    }

    #[test]
    fn tiny_budget_keeps_only_the_header() {
        let qs = many_quarantined(3);
        let mut out = Vec::new();
        let report = write_quarantine_capped(&qs, &mut out, Some(0)).unwrap();
        assert_eq!(report.written, 0);
        assert_eq!(report.dropped, 3);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("# quarantine: 3 trajectories"));
        assert!(text.contains("# truncated: 3 trajectories dropped"));
    }

    #[test]
    fn capped_save_rotates_previous_generation() {
        let dir = std::env::temp_dir().join(format!("neat-traj-quarantine-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quarantine.csv");

        let gen1 = many_quarantined(2);
        let r1 = save_quarantine_capped(&gen1, &path, Some(10_000)).unwrap();
        assert!(r1.is_complete());
        let first = std::fs::read(&path).unwrap();

        let gen2 = many_quarantined(3);
        save_quarantine_capped(&gen2, &path, Some(10_000)).unwrap();
        let rotated = rotated_quarantine_path(&path);
        assert_eq!(
            std::fs::read(&rotated).unwrap(),
            first,
            "previous generation must move to <path>.1"
        );
        let current = String::from_utf8(std::fs::read(&path).unwrap()).unwrap();
        assert!(current.starts_with("# quarantine: 3 trajectories"));

        // A third save replaces the old generation: never more than two
        // bounded files on disk.
        save_quarantine_capped(&gen1, &path, Some(10_000)).unwrap();
        let kept = String::from_utf8(std::fs::read(&rotated).unwrap()).unwrap();
        assert!(kept.starts_with("# quarantine: 3 trajectories"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sustained_capped_saves_stay_bounded_and_keep_newest() {
        let dir = std::env::temp_dir().join(format!(
            "neat-traj-quarantine-sustained-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("quarantine.csv");
        let rotated = rotated_quarantine_path(&path);
        // Small enough that most generations overflow it.
        let cap = 400usize;
        // The cap bounds the record blocks; the header and the
        // one-line truncation trailer ride on top.
        let slack = 128usize;

        for generation in 1..=12usize {
            let qs = many_quarantined(generation);
            let report = save_quarantine_capped(&qs, &path, Some(cap)).unwrap();
            let bytes = std::fs::read(&path).unwrap();
            assert_eq!(bytes.len(), report.bytes, "gen {generation}: report lies");
            assert!(
                report.bytes <= cap + slack,
                "gen {generation}: {} bytes exceeds cap {cap} (+{slack} slack)",
                report.bytes
            );
            let current = String::from_utf8(bytes).unwrap();
            // Rotation never loses the newest generation: `path` always
            // holds it, complete with its earliest records.
            assert!(
                current.starts_with(&format!("# quarantine: {generation} trajectories")),
                "gen {generation}: current file is not the newest generation"
            );
            assert!(current.contains("# tr0: reject 0"), "gen {generation}");
            if generation >= 2 {
                let prev = String::from_utf8(std::fs::read(&rotated).unwrap()).unwrap();
                assert!(
                    prev.starts_with(&format!("# quarantine: {} trajectories", generation - 1)),
                    "gen {generation}: rotated file is not the previous generation"
                );
            }
            // Never more than two bounded files, no matter how long the
            // session runs.
            let mut names: Vec<String> = std::fs::read_dir(&dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect();
            names.sort();
            let expected = if generation == 1 {
                vec!["quarantine.csv".to_string()]
            } else {
                vec!["quarantine.csv".to_string(), "quarantine.csv.1".to_string()]
            };
            assert_eq!(names, expected, "gen {generation}");
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}
