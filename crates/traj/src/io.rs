//! Plain-text dataset I/O.
//!
//! Datasets are stored as a simple line format, one location per line:
//!
//! ```text
//! # comment lines and blank lines are skipped
//! trid,sid,x,y,t
//! 0,17,1032.5,88.0,0.0
//! 0,17,1120.1,90.2,8.0
//! ```
//!
//! Lines must be grouped by trajectory id (all points of a trajectory are
//! contiguous, in time order), which is how the simulator emits them.

use crate::dataset::Dataset;
use crate::error::TrajError;
use crate::sanitize::RawFix;
use crate::trajectory::{Trajectory, TrajectoryId};
use neat_rnet::{Point, RoadLocation, SegmentId};
use std::io::{BufRead, Write};

/// Writes a dataset in the line format described in the module docs.
///
/// # Errors
///
/// Propagates any I/O failure from the writer.
pub fn write_dataset<W: Write>(dataset: &Dataset, mut w: W) -> Result<(), TrajError> {
    writeln!(w, "# dataset: {}", dataset.name())?;
    writeln!(w, "# trid,sid,x,y,t")?;
    for tr in dataset.trajectories() {
        for p in tr.points() {
            writeln!(
                w,
                "{},{},{},{},{}",
                tr.id().value(),
                p.segment.index(),
                p.position.x,
                p.position.y,
                p.time
            )?;
        }
    }
    Ok(())
}

/// Reads a dataset written by [`write_dataset`]. A `&mut` reference to any
/// `BufRead` can be passed.
///
/// # Errors
///
/// Returns [`TrajError::Parse`] with the 1-based line number for malformed
/// lines, or the underlying I/O error.
pub fn read_dataset<R: BufRead>(name: impl Into<String>, r: R) -> Result<Dataset, TrajError> {
    let mut dataset = Dataset::new(name);
    let mut current: Option<(TrajectoryId, Vec<RoadLocation>)> = None;

    let flush = |cur: &mut Option<(TrajectoryId, Vec<RoadLocation>)>,
                 ds: &mut Dataset,
                 line: usize|
     -> Result<(), TrajError> {
        if let Some((id, pts)) = cur.take() {
            let tr = Trajectory::new(id, pts).map_err(|e| TrajError::Parse {
                line,
                message: format!("invalid trajectory {id}: {e}"),
            })?;
            ds.push(tr);
        }
        Ok(())
    };

    for (lineno, line) in r.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',');
        let mut next_field = |what: &str| -> Result<&str, TrajError> {
            fields.next().ok_or_else(|| TrajError::Parse {
                line: lineno,
                message: format!("missing field `{what}`"),
            })
        };
        let parse_f64 = |s: &str, what: &str| -> Result<f64, TrajError> {
            s.parse().map_err(|_| TrajError::Parse {
                line: lineno,
                message: format!("bad {what}: `{s}`"),
            })
        };
        let trid: u64 = {
            let s = next_field("trid")?;
            s.parse().map_err(|_| TrajError::Parse {
                line: lineno,
                message: format!("bad trid: `{s}`"),
            })?
        };
        let sid: usize = {
            let s = next_field("sid")?;
            s.parse().map_err(|_| TrajError::Parse {
                line: lineno,
                message: format!("bad sid: `{s}`"),
            })?
        };
        let x = parse_f64(next_field("x")?, "x")?;
        let y = parse_f64(next_field("y")?, "y")?;
        let t = parse_f64(next_field("t")?, "t")?;
        let loc = RoadLocation::new(SegmentId::new(sid), Point::new(x, y), t);
        let id = TrajectoryId::new(trid);
        match &mut current {
            Some((cur_id, pts)) if *cur_id == id => pts.push(loc),
            _ => {
                flush(&mut current, &mut dataset, lineno)?;
                current = Some((id, vec![loc]));
            }
        }
    }
    flush(&mut current, &mut dataset, usize::MAX)?;
    Ok(dataset)
}

/// Result of a lenient raw read: every parseable row, plus the lines
/// that could not be parsed (1-based line number and reason).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawReadOutcome {
    /// Parsed fixes in file order, not validated in any way.
    pub fixes: Vec<RawFix>,
    /// Malformed lines, skipped rather than fatal.
    pub malformed: Vec<(usize, String)>,
}

/// Reads raw fixes from the same line format as [`read_dataset`], but
/// leniently: malformed lines are recorded and skipped, and no
/// trajectory invariants are enforced. This is the entry point for
/// [`crate::sanitize`], which decides what to do with the damage.
///
/// # Errors
///
/// Only I/O failures are fatal.
pub fn read_raw_fixes<R: BufRead>(r: R) -> Result<RawReadOutcome, TrajError> {
    let mut out = RawReadOutcome::default();
    for (lineno, line) in r.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_raw_line(line) {
            Ok(fix) => out.fixes.push(fix),
            Err(message) => out.malformed.push((lineno, message)),
        }
    }
    Ok(out)
}

fn parse_raw_line(line: &str) -> Result<RawFix, String> {
    let mut fields = line.split(',');
    let mut next_field = |what: &str| {
        fields
            .next()
            .ok_or_else(|| format!("missing field `{what}`"))
    };
    let trid: u64 = {
        let s = next_field("trid")?;
        s.parse().map_err(|_| format!("bad trid: `{s}`"))?
    };
    let sid: usize = {
        let s = next_field("sid")?;
        s.parse().map_err(|_| format!("bad sid: `{s}`"))?
    };
    let parse_f64 = |s: &str, what: &str| -> Result<f64, String> {
        s.parse().map_err(|_| format!("bad {what}: `{s}`"))
    };
    let x = parse_f64(next_field("x")?, "x")?;
    let y = parse_f64(next_field("y")?, "y")?;
    let t = parse_f64(next_field("t")?, "t")?;
    Ok(RawFix::new(trid, SegmentId::new(sid), Point::new(x, y), t))
}

/// Writes raw fixes in the dataset line format (readable by both
/// [`read_raw_fixes`] and — if the data happens to be valid —
/// [`read_dataset`]).
///
/// # Errors
///
/// Propagates any I/O failure from the writer.
pub fn write_raw_fixes<W: Write>(name: &str, fixes: &[RawFix], mut w: W) -> Result<(), TrajError> {
    writeln!(w, "# dataset: {name}")?;
    writeln!(w, "# trid,sid,x,y,t")?;
    for fix in fixes {
        writeln!(
            w,
            "{},{},{},{},{}",
            fix.trid,
            fix.segment.index(),
            fix.position.x,
            fix.position.y,
            fix.time
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::{Point, SegmentId};

    fn sample_dataset() -> Dataset {
        let mut d = Dataset::new("roundtrip");
        for id in 0..3u64 {
            let pts = (0..4)
                .map(|i| {
                    RoadLocation::new(
                        SegmentId::new(i % 2),
                        Point::new(i as f64 * 10.0 + id as f64, -(i as f64)),
                        i as f64 * 2.0,
                    )
                })
                .collect();
            d.push(Trajectory::new(TrajectoryId::new(id), pts).unwrap());
        }
        d
    }

    #[test]
    fn roundtrip_preserves_dataset() {
        let d = sample_dataset();
        let mut buf = Vec::new();
        write_dataset(&d, &mut buf).unwrap();
        let d2 = read_dataset("roundtrip", buf.as_slice()).unwrap();
        assert_eq!(d.trajectories(), d2.trajectories());
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n0,1,0.0,0.0,0.0\n0,1,5.0,0.0,1.0\n";
        let d = read_dataset("c", text.as_bytes()).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.total_points(), 2);
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let text = "0,1,0.0,0.0,0.0\n0,1,notanumber,0.0,1.0\n";
        let err = read_dataset("bad", text.as_bytes()).unwrap_err();
        match err {
            TrajError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("x"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_field_is_an_error() {
        let text = "0,1,0.0\n";
        assert!(matches!(
            read_dataset("m", text.as_bytes()),
            Err(TrajError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn single_point_trajectory_is_rejected() {
        let text = "0,1,0.0,0.0,0.0\n1,1,0.0,0.0,0.0\n1,1,2.0,0.0,1.0\n";
        let err = read_dataset("short", text.as_bytes()).unwrap_err();
        assert!(matches!(err, TrajError::Parse { .. }));
    }

    #[test]
    fn empty_input_gives_empty_dataset() {
        let d = read_dataset("empty", "".as_bytes()).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn raw_read_keeps_invalid_rows_and_reports_malformed() {
        // Backwards time and a single-fix trajectory: both fatal for
        // read_dataset, both fine as raw fixes. One unparseable line.
        let text = "3,1,0.0,0.0,9.0\n3,1,5.0,0.0,2.0\nbogus line\n7,2,1.0,1.0,0.0\n";
        let out = read_raw_fixes(text.as_bytes()).unwrap();
        assert_eq!(out.fixes.len(), 3);
        assert_eq!(out.fixes[0].trid, 3);
        assert_eq!(out.fixes[2].trid, 7);
        assert_eq!(out.malformed.len(), 1);
        assert_eq!(out.malformed[0].0, 3);
    }

    #[test]
    fn raw_fixes_roundtrip() {
        let fixes = vec![
            RawFix::new(0, SegmentId::new(4), Point::new(1.5, -2.0), 0.0),
            RawFix::new(0, SegmentId::new(4), Point::new(2.5, -2.0), 7.0),
            RawFix::new(1, SegmentId::new(0), Point::new(0.0, 0.0), 3.0),
        ];
        let mut buf = Vec::new();
        write_raw_fixes("raw", &fixes, &mut buf).unwrap();
        let out = read_raw_fixes(buf.as_slice()).unwrap();
        assert_eq!(out.fixes, fixes);
        assert!(out.malformed.is_empty());
    }

    #[test]
    fn raw_writer_output_is_readable_as_a_dataset_when_valid() {
        let d = sample_dataset();
        let fixes = crate::sanitize::dataset_fixes(&d);
        let mut buf = Vec::new();
        write_raw_fixes(d.name(), &fixes, &mut buf).unwrap();
        let d2 = read_dataset(d.name(), buf.as_slice()).unwrap();
        assert_eq!(d.trajectories(), d2.trajectories());
    }
}
