//! Trajectories: validated time-ordered location sequences.

use crate::error::TrajError;
use neat_rnet::RoadLocation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a trajectory (the paper's `trid`).
///
/// ```
/// use neat_traj::TrajectoryId;
/// let id = TrajectoryId::new(12);
/// assert_eq!(id.value(), 12);
/// assert_eq!(id.to_string(), "tr12");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TrajectoryId(u64);

impl TrajectoryId {
    /// Creates a trajectory id.
    pub fn new(value: u64) -> Self {
        TrajectoryId(value)
    }

    /// Returns the raw identifier value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TrajectoryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tr{}", self.0)
    }
}

/// A time-ordered sequence of road-network locations for one trip
/// (`TR = (trid, l0 l1 … ln)` in the paper).
///
/// Invariants enforced at construction:
/// * at least two points,
/// * non-decreasing timestamps.
///
/// ```
/// use neat_traj::{Trajectory, TrajectoryId};
/// use neat_rnet::{RoadLocation, SegmentId, Point};
///
/// # fn main() -> Result<(), neat_traj::TrajError> {
/// let s = SegmentId::new(0);
/// let tr = Trajectory::new(TrajectoryId::new(1), vec![
///     RoadLocation::new(s, Point::new(0.0, 0.0), 0.0),
///     RoadLocation::new(s, Point::new(50.0, 0.0), 5.0),
/// ])?;
/// assert_eq!(tr.len(), 2);
/// assert_eq!(tr.duration(), 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    id: TrajectoryId,
    points: Vec<RoadLocation>,
}

impl Trajectory {
    /// Creates a trajectory, validating its invariants.
    ///
    /// # Errors
    ///
    /// Returns [`TrajError::TooFewPoints`] for fewer than two points and
    /// [`TrajError::NonMonotonicTime`] if a timestamp decreases.
    pub fn new(id: TrajectoryId, points: Vec<RoadLocation>) -> Result<Self, TrajError> {
        if points.len() < 2 {
            return Err(TrajError::TooFewPoints { got: points.len() });
        }
        for (i, w) in points.windows(2).enumerate() {
            if w[1].time < w[0].time {
                return Err(TrajError::NonMonotonicTime {
                    index: i + 1,
                    prev: w[0].time,
                    next: w[1].time,
                });
            }
        }
        Ok(Trajectory { id, points })
    }

    /// The trajectory identifier.
    pub fn id(&self) -> TrajectoryId {
        self.id
    }

    /// The location sequence.
    pub fn points(&self) -> &[RoadLocation] {
        &self.points
    }

    /// Number of recorded locations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always `false`: a valid trajectory has at least two points.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// First recorded location (trip origin).
    pub fn first(&self) -> &RoadLocation {
        &self.points[0]
    }

    /// Last recorded location (trip destination).
    pub fn last(&self) -> &RoadLocation {
        self.points.last().expect("trajectory is non-empty") // lint:allow(L1) reason=the constructor rejects empty point lists
    }

    /// Trip duration in seconds.
    pub fn duration(&self) -> f64 {
        self.last().time - self.first().time
    }

    /// Sum of straight-line distances between consecutive samples, in
    /// metres — a lower bound on the distance actually travelled.
    pub fn sampled_length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].position.distance(w[1].position))
            .sum()
    }

    /// Iterates over the distinct segment ids in visit order, collapsing
    /// consecutive repeats (`A A B A` → `A B A`).
    pub fn segment_sequence(&self) -> Vec<neat_rnet::SegmentId> {
        let mut out: Vec<neat_rnet::SegmentId> = Vec::new();
        for p in &self.points {
            if out.last() != Some(&p.segment) {
                out.push(p.segment);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::{Point, SegmentId};

    fn loc(seg: usize, x: f64, t: f64) -> RoadLocation {
        RoadLocation::new(SegmentId::new(seg), Point::new(x, 0.0), t)
    }

    #[test]
    fn valid_trajectory() {
        let tr = Trajectory::new(
            TrajectoryId::new(1),
            vec![loc(0, 0.0, 0.0), loc(0, 10.0, 1.0), loc(1, 20.0, 2.0)],
        )
        .unwrap();
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.id().value(), 1);
        assert_eq!(tr.first().time, 0.0);
        assert_eq!(tr.last().time, 2.0);
        assert_eq!(tr.duration(), 2.0);
        assert!(!tr.is_empty());
    }

    #[test]
    fn too_few_points_rejected() {
        assert!(matches!(
            Trajectory::new(TrajectoryId::new(1), vec![]),
            Err(TrajError::TooFewPoints { got: 0 })
        ));
        assert!(matches!(
            Trajectory::new(TrajectoryId::new(1), vec![loc(0, 0.0, 0.0)]),
            Err(TrajError::TooFewPoints { got: 1 })
        ));
    }

    #[test]
    fn time_going_backwards_rejected() {
        let err = Trajectory::new(
            TrajectoryId::new(1),
            vec![loc(0, 0.0, 5.0), loc(0, 1.0, 4.0)],
        )
        .unwrap_err();
        assert!(matches!(err, TrajError::NonMonotonicTime { index: 1, .. }));
    }

    #[test]
    fn equal_timestamps_allowed() {
        // Two samples in the same second are legal (GPS burst).
        let tr = Trajectory::new(
            TrajectoryId::new(1),
            vec![loc(0, 0.0, 1.0), loc(0, 1.0, 1.0)],
        );
        assert!(tr.is_ok());
    }

    #[test]
    fn sampled_length_sums_hops() {
        let tr = Trajectory::new(
            TrajectoryId::new(1),
            vec![loc(0, 0.0, 0.0), loc(0, 30.0, 1.0), loc(0, 70.0, 2.0)],
        )
        .unwrap();
        assert!((tr.sampled_length() - 70.0).abs() < 1e-9);
    }

    #[test]
    fn segment_sequence_collapses_repeats() {
        let tr = Trajectory::new(
            TrajectoryId::new(1),
            vec![
                loc(0, 0.0, 0.0),
                loc(0, 10.0, 1.0),
                loc(1, 20.0, 2.0),
                loc(1, 30.0, 3.0),
                loc(0, 40.0, 4.0),
            ],
        )
        .unwrap();
        let seq = tr.segment_sequence();
        assert_eq!(
            seq,
            vec![SegmentId::new(0), SegmentId::new(1), SegmentId::new(0)]
        );
    }
}
