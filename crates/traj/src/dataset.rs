//! Named trajectory datasets and their aggregate statistics.
//!
//! The paper's Table II reports the number of points of each dataset
//! (e.g. ATL500 has 114 878 points); [`DatasetStats`] computes the same
//! quantities for our synthetic datasets.

use crate::error::TrajError;
use crate::trajectory::{Trajectory, TrajectoryId};
use serde::{Deserialize, Serialize};

/// A named collection of trajectories, e.g. `ATL500`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    name: String,
    trajectories: Vec<Trajectory>,
}

impl Dataset {
    /// Creates an empty dataset with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Dataset {
            name: name.into(),
            trajectories: Vec::new(),
        }
    }

    /// Creates a dataset from parts.
    pub fn from_trajectories(name: impl Into<String>, trajectories: Vec<Trajectory>) -> Self {
        Dataset {
            name: name.into(),
            trajectories,
        }
    }

    /// Dataset name (used in experiment labels, e.g. "ATL500").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The trajectories in insertion order.
    pub fn trajectories(&self) -> &[Trajectory] {
        &self.trajectories
    }

    /// Number of trajectories.
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// Whether the dataset holds no trajectories.
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// Adds a trajectory.
    pub fn push(&mut self, tr: Trajectory) {
        self.trajectories.push(tr);
    }

    /// Looks up a trajectory by id (linear scan; datasets are iterated far
    /// more often than point-queried).
    pub fn get(&self, id: TrajectoryId) -> Option<&Trajectory> {
        self.trajectories.iter().find(|t| t.id() == id)
    }

    /// Total number of location points across all trajectories — the
    /// quantity reported in Table II.
    pub fn total_points(&self) -> usize {
        self.trajectories.iter().map(Trajectory::len).sum()
    }

    /// Computes the aggregate statistics of this dataset.
    pub fn stats(&self) -> DatasetStats {
        let points = self.total_points();
        let n = self.trajectories.len();
        DatasetStats {
            trajectories: n,
            points,
            avg_points_per_trajectory: if n == 0 {
                0.0
            } else {
                points as f64 / n as f64
            },
            avg_duration_s: if n == 0 {
                0.0
            } else {
                self.trajectories
                    .iter()
                    .map(Trajectory::duration)
                    .sum::<f64>()
                    / n as f64
            },
        }
    }

    /// Returns the sub-dataset of trajectories overlapping the time
    /// window `[start, end]` (sliced to the window, boundary points
    /// interpolated). Useful for replaying a recorded dataset into an
    /// online clusterer batch by batch.
    pub fn window(&self, start: f64, end: f64) -> Dataset {
        Dataset {
            name: format!("{}[{start:.0},{end:.0}]", self.name),
            trajectories: self
                .trajectories
                .iter()
                .filter_map(|t| crate::ops::slice_time(t, start, end))
                .collect(),
        }
    }

    /// Splits the dataset into `n` consecutive equal-duration windows
    /// covering its full time span.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn split_windows(&self, n: usize) -> Vec<Dataset> {
        assert!(n > 0, "need at least one window");
        if self.trajectories.is_empty() {
            return vec![Dataset::new(self.name.clone()); n];
        }
        let t0 = self
            .trajectories
            .iter()
            .map(|t| t.first().time)
            .fold(f64::INFINITY, f64::min);
        let t1 = self
            .trajectories
            .iter()
            .map(|t| t.last().time)
            .fold(f64::NEG_INFINITY, f64::max);
        let step = ((t1 - t0) / n as f64).max(f64::MIN_POSITIVE);
        (0..n)
            .map(|k| {
                let lo = t0 + k as f64 * step;
                // Last window absorbs rounding at the top end.
                let hi = if k + 1 == n {
                    t1
                } else {
                    t0 + (k + 1) as f64 * step
                };
                self.window(lo, hi)
            })
            .collect()
    }

    /// Keeps only trajectories satisfying the predicate.
    pub fn retain(&mut self, mut keep: impl FnMut(&Trajectory) -> bool) {
        self.trajectories.retain(|t| keep(t));
    }

    /// Validates that all trajectory ids are distinct.
    ///
    /// # Errors
    ///
    /// Returns a [`TrajError::Parse`]-style error naming the duplicated id.
    pub fn validate_unique_ids(&self) -> Result<(), TrajError> {
        let mut seen = std::collections::HashSet::new();
        for t in &self.trajectories {
            if !seen.insert(t.id()) {
                return Err(TrajError::Parse {
                    line: 0,
                    message: format!("duplicate trajectory id {}", t.id()),
                });
            }
        }
        Ok(())
    }
}

impl Extend<Trajectory> for Dataset {
    fn extend<T: IntoIterator<Item = Trajectory>>(&mut self, iter: T) {
        self.trajectories.extend(iter);
    }
}

impl FromIterator<Trajectory> for Dataset {
    fn from_iter<T: IntoIterator<Item = Trajectory>>(iter: T) -> Self {
        Dataset {
            name: String::new(),
            trajectories: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Dataset {
    type Item = Trajectory;
    type IntoIter = std::vec::IntoIter<Trajectory>;
    fn into_iter(self) -> Self::IntoIter {
        self.trajectories.into_iter()
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Trajectory;
    type IntoIter = std::slice::Iter<'a, Trajectory>;
    fn into_iter(self) -> Self::IntoIter {
        self.trajectories.iter()
    }
}

/// Aggregate statistics of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of trajectories.
    pub trajectories: usize,
    /// Total number of location points (Table II's quantity).
    pub points: usize,
    /// Mean points per trajectory.
    pub avg_points_per_trajectory: f64,
    /// Mean trip duration in seconds.
    pub avg_duration_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::{Point, RoadLocation, SegmentId};

    fn mk_traj(id: u64, n: usize) -> Trajectory {
        let pts = (0..n)
            .map(|i| RoadLocation::new(SegmentId::new(0), Point::new(i as f64, 0.0), i as f64))
            .collect();
        Trajectory::new(TrajectoryId::new(id), pts).unwrap()
    }

    #[test]
    fn push_and_counts() {
        let mut d = Dataset::new("test");
        assert!(d.is_empty());
        d.push(mk_traj(1, 3));
        d.push(mk_traj(2, 5));
        assert_eq!(d.len(), 2);
        assert_eq!(d.total_points(), 8);
        assert_eq!(d.name(), "test");
    }

    #[test]
    fn stats_computation() {
        let mut d = Dataset::new("s");
        d.push(mk_traj(1, 3)); // duration 2
        d.push(mk_traj(2, 5)); // duration 4
        let st = d.stats();
        assert_eq!(st.trajectories, 2);
        assert_eq!(st.points, 8);
        assert!((st.avg_points_per_trajectory - 4.0).abs() < 1e-12);
        assert!((st.avg_duration_s - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let st = Dataset::new("e").stats();
        assert_eq!(st.points, 0);
        assert_eq!(st.avg_points_per_trajectory, 0.0);
        assert_eq!(st.avg_duration_s, 0.0);
    }

    #[test]
    fn get_by_id() {
        let mut d = Dataset::new("g");
        d.push(mk_traj(7, 2));
        assert!(d.get(TrajectoryId::new(7)).is_some());
        assert!(d.get(TrajectoryId::new(8)).is_none());
    }

    #[test]
    fn duplicate_ids_detected() {
        let mut d = Dataset::new("dup");
        d.push(mk_traj(1, 2));
        d.push(mk_traj(1, 2));
        assert!(d.validate_unique_ids().is_err());
        let mut ok = Dataset::new("ok");
        ok.push(mk_traj(1, 2));
        ok.push(mk_traj(2, 2));
        assert!(ok.validate_unique_ids().is_ok());
    }

    #[test]
    fn window_slices_and_filters() {
        let mut d = Dataset::new("w");
        d.push(mk_traj(1, 11)); // t in [0, 10]
        d.push(mk_traj(2, 3)); // t in [0, 2]
        let w = d.window(4.0, 8.0);
        // Trajectory 2 ends before the window: filtered out.
        assert_eq!(w.len(), 1);
        assert_eq!(w.trajectories()[0].first().time, 4.0);
        assert_eq!(w.trajectories()[0].last().time, 8.0);
        assert!(w.name().contains("[4,8]"));
    }

    #[test]
    fn split_windows_cover_the_span() {
        let mut d = Dataset::new("s");
        d.push(mk_traj(1, 13)); // t in [0, 12]
        let parts = d.split_windows(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].trajectories()[0].first().time, 0.0);
        assert_eq!(parts[2].trajectories()[0].last().time, 12.0);
        // Boundaries line up.
        assert!(
            (parts[0].trajectories()[0].last().time - parts[1].trajectories()[0].first().time)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn split_windows_of_empty_dataset() {
        let parts = Dataset::new("e").split_windows(4);
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(Dataset::is_empty));
    }

    #[test]
    #[should_panic(expected = "at least one window")]
    fn zero_windows_panics() {
        let _ = Dataset::new("z").split_windows(0);
    }

    #[test]
    fn retain_filters_in_place() {
        let mut d = Dataset::new("r");
        d.push(mk_traj(1, 3));
        d.push(mk_traj(2, 9));
        d.retain(|t| t.len() > 5);
        assert_eq!(d.len(), 1);
        assert_eq!(d.trajectories()[0].id().value(), 2);
    }

    #[test]
    fn collect_and_extend() {
        let d: Dataset = (1..4).map(|i| mk_traj(i, 2)).collect();
        assert_eq!(d.len(), 3);
        let mut d2 = Dataset::new("x");
        d2.extend(d.trajectories().to_vec());
        assert_eq!(d2.len(), 3);
        // Borrowing iteration.
        let ids: Vec<u64> = (&d2).into_iter().map(|t| t.id().value()).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        // Owning iteration.
        assert_eq!(d2.into_iter().count(), 3);
    }
}
