//! Trajectory transformations: time slicing, resampling and
//! interpolation.
//!
//! Downstream consumers often need a uniform temporal view of a
//! trajectory: the whole-trajectory baseline samples positions on a fixed
//! clock, online clustering slices arriving data into time windows, and
//! visual comparisons want equal-rate polylines. These operations keep
//! every invariant of [`Trajectory`] (ordering, minimum length).

use crate::error::TrajError;
use crate::trajectory::Trajectory;
use neat_rnet::{Point, RoadLocation};

/// Position of the object at absolute time `t`, linearly interpolated
/// between the surrounding samples; `None` outside the recorded interval.
///
/// The returned location carries the segment id of the sample *before*
/// `t` (the object was still on that segment when interpolation starts).
pub fn position_at(tr: &Trajectory, t: f64) -> Option<RoadLocation> {
    let pts = tr.points();
    if t < pts[0].time || t > pts[pts.len() - 1].time {
        return None;
    }
    let idx = pts.partition_point(|p| p.time <= t);
    if idx == 0 {
        return Some(pts[0]);
    }
    if idx >= pts.len() {
        return Some(pts[pts.len() - 1]);
    }
    let (a, b) = (&pts[idx - 1], &pts[idx]);
    let span = b.time - a.time;
    let frac = if span <= f64::EPSILON {
        0.0
    } else {
        (t - a.time) / span
    };
    Some(RoadLocation::new(
        a.segment,
        a.position.lerp(b.position, frac),
        t,
    ))
}

/// Restricts a trajectory to the closed time window `[start, end]`,
/// interpolating boundary points so the result spans exactly the
/// intersection of the window and the recorded interval.
///
/// Returns `None` when the intersection is empty or degenerates to fewer
/// than two points.
pub fn slice_time(tr: &Trajectory, start: f64, end: f64) -> Option<Trajectory> {
    let lo = start.max(tr.first().time);
    let hi = end.min(tr.last().time);
    if hi <= lo {
        return None;
    }
    let mut pts: Vec<RoadLocation> = Vec::new();
    pts.push(position_at(tr, lo)?);
    for p in tr.points() {
        if p.time > lo && p.time < hi {
            pts.push(*p);
        }
    }
    pts.push(position_at(tr, hi)?);
    Trajectory::new(tr.id(), pts).ok()
}

/// Resamples a trajectory on a uniform clock of period `dt`, starting at
/// the first sample. The final recorded point is always included.
///
/// # Errors
///
/// Returns [`TrajError::Parse`]-style invalid-argument errors when `dt`
/// is not strictly positive.
pub fn resample(tr: &Trajectory, dt: f64) -> Result<Trajectory, TrajError> {
    if dt <= 0.0 {
        return Err(TrajError::Parse {
            line: 0,
            message: format!("resample period must be positive, got {dt}"),
        });
    }
    let (t0, t1) = (tr.first().time, tr.last().time);
    let mut pts = Vec::new();
    let mut t = t0;
    while t < t1 {
        pts.push(position_at(tr, t).expect("t within recorded interval")); // lint:allow(L1) reason=t stays in [t0, t1) inside the recorded interval
        t += dt;
    }
    pts.push(*tr.last());
    Trajectory::new(tr.id(), pts)
}

/// Simplifies a trajectory with the Douglas–Peucker algorithm: the
/// returned trajectory keeps a subset of the original samples such that
/// every dropped sample lies within `tolerance_m` of the simplified
/// polyline. Endpoints are always kept.
///
/// Useful for thinning dense traces before storage or visualisation; the
/// clustering pipeline itself never needs it (Phase 1 collapses samples
/// into t-fragments anyway).
///
/// # Panics
///
/// Panics if `tolerance_m` is negative.
pub fn simplify(tr: &Trajectory, tolerance_m: f64) -> Trajectory {
    assert!(tolerance_m >= 0.0, "tolerance must be non-negative");
    let pts = tr.points();
    let mut keep = vec![false; pts.len()];
    keep[0] = true;
    keep[pts.len() - 1] = true;
    let mut stack = vec![(0usize, pts.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (a, b) = (pts[lo].position, pts[hi].position);
        let (mut worst, mut worst_d) = (lo, -1.0f64);
        for (i, p) in pts.iter().enumerate().take(hi).skip(lo + 1) {
            let d = neat_rnet::geometry::point_segment_distance(p.position, a, b);
            if d > worst_d {
                worst = i;
                worst_d = d;
            }
        }
        if worst_d > tolerance_m {
            keep[worst] = true;
            stack.push((lo, worst));
            stack.push((worst, hi));
        }
    }
    let kept: Vec<RoadLocation> = pts
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(p, _)| *p)
        .collect();
    // lint:allow(L1) reason=an ordered subset of a valid trajectory stays valid
    Trajectory::new(tr.id(), kept).expect("subset of a valid trajectory is valid")
}

/// Total straight-line length of a point sequence in metres.
pub fn polyline_length(points: &[Point]) -> f64 {
    points.windows(2).map(|w| w[0].distance(w[1])).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::TrajectoryId;
    use neat_rnet::SegmentId;

    fn tr(coords: &[(f64, f64)]) -> Trajectory {
        let pts = coords
            .iter()
            .map(|&(x, t)| RoadLocation::new(SegmentId::new(0), Point::new(x, 0.0), t))
            .collect();
        Trajectory::new(TrajectoryId::new(1), pts).unwrap()
    }

    #[test]
    fn interpolation_midpoint() {
        let t = tr(&[(0.0, 0.0), (100.0, 10.0)]);
        let p = position_at(&t, 5.0).unwrap();
        assert_eq!(p.position, Point::new(50.0, 0.0));
        assert_eq!(p.time, 5.0);
        assert!(position_at(&t, -1.0).is_none());
        assert!(position_at(&t, 11.0).is_none());
    }

    #[test]
    fn slice_interpolates_boundaries() {
        let t = tr(&[(0.0, 0.0), (100.0, 10.0), (200.0, 20.0)]);
        let s = slice_time(&t, 5.0, 15.0).unwrap();
        assert_eq!(s.first().position, Point::new(50.0, 0.0));
        assert_eq!(s.last().position, Point::new(150.0, 0.0));
        assert_eq!(s.len(), 3); // boundary, sample at t=10, boundary
        assert_eq!(s.points()[1].time, 10.0);
    }

    #[test]
    fn slice_outside_interval_is_none() {
        let t = tr(&[(0.0, 0.0), (100.0, 10.0)]);
        assert!(slice_time(&t, 20.0, 30.0).is_none());
        assert!(slice_time(&t, 5.0, 5.0).is_none());
    }

    #[test]
    fn slice_covering_everything_is_identity_shape() {
        let t = tr(&[(0.0, 0.0), (100.0, 10.0), (200.0, 20.0)]);
        let s = slice_time(&t, -100.0, 100.0).unwrap();
        assert_eq!(s.first().time, 0.0);
        assert_eq!(s.last().time, 20.0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn resample_uniform_clock() {
        let t = tr(&[(0.0, 0.0), (100.0, 10.0)]);
        let r = resample(&t, 2.5).unwrap();
        let times: Vec<f64> = r.points().iter().map(|p| p.time).collect();
        assert_eq!(times, vec![0.0, 2.5, 5.0, 7.5, 10.0]);
        // Positions advance uniformly.
        assert_eq!(r.points()[2].position, Point::new(50.0, 0.0));
    }

    #[test]
    fn resample_preserves_final_point() {
        let t = tr(&[(0.0, 0.0), (100.0, 10.0)]);
        let r = resample(&t, 3.0).unwrap();
        assert_eq!(r.last().time, 10.0);
        assert_eq!(r.last().position, Point::new(100.0, 0.0));
    }

    #[test]
    fn resample_rejects_bad_period() {
        let t = tr(&[(0.0, 0.0), (100.0, 10.0)]);
        assert!(resample(&t, 0.0).is_err());
        assert!(resample(&t, -3.0).is_err());
    }

    fn xy(coords: &[(f64, f64)]) -> Trajectory {
        let pts = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| RoadLocation::new(SegmentId::new(0), Point::new(x, y), i as f64))
            .collect();
        Trajectory::new(TrajectoryId::new(1), pts).unwrap()
    }

    #[test]
    fn simplify_straight_line_keeps_endpoints_only() {
        let t = xy(&[
            (0.0, 0.0),
            (25.0, 0.2),
            (50.0, 0.0),
            (75.0, -0.3),
            (100.0, 0.0),
        ]);
        let s = simplify(&t, 1.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.first().time, 0.0);
        assert_eq!(s.last().time, 4.0);
    }

    #[test]
    fn simplify_keeps_significant_corners() {
        // An L-shape: the corner deviates far from the chord.
        let pts = vec![
            RoadLocation::new(SegmentId::new(0), Point::new(0.0, 0.0), 0.0),
            RoadLocation::new(SegmentId::new(0), Point::new(100.0, 0.0), 1.0),
            RoadLocation::new(SegmentId::new(0), Point::new(100.0, 100.0), 2.0),
        ];
        let t = Trajectory::new(TrajectoryId::new(1), pts).unwrap();
        let s = simplify(&t, 5.0);
        assert_eq!(s.len(), 3, "corner must survive");
    }

    #[test]
    fn simplify_zero_tolerance_is_lossless_for_nonlinear_traces() {
        let t = xy(&[(0.0, 0.0), (10.0, 5.0), (20.0, -3.0), (30.0, 0.0)]);
        let s = simplify(&t, 0.0);
        assert_eq!(s.len(), t.len());
    }

    #[test]
    fn simplified_points_are_within_tolerance() {
        // Wiggly trace; every original point must lie within tolerance of
        // the simplified polyline.
        let coords: Vec<(f64, f64)> = (0..40)
            .map(|i| (i as f64 * 10.0, ((i * 7) % 11) as f64))
            .collect();
        let t = xy(&coords);
        let tol = 3.0;
        let s = simplify(&t, tol);
        assert!(s.len() < t.len());
        for p in t.points() {
            let d = s
                .points()
                .windows(2)
                .map(|w| {
                    neat_rnet::geometry::point_segment_distance(
                        p.position,
                        w[0].position,
                        w[1].position,
                    )
                })
                .fold(f64::INFINITY, f64::min);
            assert!(d <= tol + 1e-9, "point {p} off by {d}");
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn simplify_rejects_negative_tolerance() {
        let t = tr(&[(0.0, 0.0), (10.0, 1.0)]);
        let _ = simplify(&t, -1.0);
    }

    #[test]
    fn polyline_length_sums() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(3.0, 14.0),
        ];
        assert_eq!(polyline_length(&pts), 15.0);
        assert_eq!(polyline_length(&pts[..1]), 0.0);
        assert_eq!(polyline_length(&[]), 0.0);
    }
}
