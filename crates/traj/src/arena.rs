//! Flat struct-of-arrays sample storage for the phases 1–2 front end.
//!
//! A [`SampleArena`] holds every sample of a dataset in four contiguous
//! parallel arrays (`x`, `y`, `t`, segment index) plus per-trajectory
//! offset ranges. Scanning a trajectory's samples — the inner loop of
//! NEAT Phase 1 — then walks a dense `&[u32]` of segment indices instead
//! of hopping through per-trajectory `Vec<RoadLocation>` allocations,
//! which keeps the scan in cache and lets the fragment-boundary detector
//! run branch-light over plain integers.
//!
//! The arena is a *view representation*: it is built from an existing
//! [`Dataset`] by copying the sample fields verbatim (`f64` bits are
//! preserved exactly), and any sample can be reconstructed as a
//! [`RoadLocation`] with identical bits. Algorithms that consume the
//! arena therefore produce output bit-identical to the per-trajectory
//! representation — see `DESIGN.md` §17 for the determinism argument.

use crate::dataset::Dataset;
use crate::error::TrajError;
use crate::fragment::TFragment;
use crate::trajectory::{Trajectory, TrajectoryId};
use neat_rnet::{Point, RoadLocation, SegmentId};

/// Contiguous struct-of-arrays storage for every sample in a dataset.
///
/// ```
/// use neat_traj::{Dataset, SampleArena, Trajectory, TrajectoryId};
/// use neat_rnet::{Point, RoadLocation, SegmentId};
///
/// # fn main() -> Result<(), neat_traj::TrajError> {
/// let s = SegmentId::new(0);
/// let mut data = Dataset::new("d");
/// data.push(Trajectory::new(TrajectoryId::new(1), vec![
///     RoadLocation::new(s, Point::new(0.0, 0.0), 0.0),
///     RoadLocation::new(s, Point::new(50.0, 0.0), 5.0),
/// ])?);
/// let arena = SampleArena::from_dataset(&data);
/// assert_eq!(arena.len(), 1);
/// assert_eq!(arena.total_samples(), 2);
/// let view = arena.view(0);
/// assert_eq!(view.segs(), &[0, 0]);
/// assert_eq!(view.location(1).time, 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SampleArena {
    ids: Vec<TrajectoryId>,
    /// `offsets[i]..offsets[i + 1]` is trajectory `i`'s sample range;
    /// always `ids.len() + 1` entries (a lone `0` when empty).
    offsets: Vec<usize>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    ts: Vec<f64>,
    /// Raw segment indices (`SegmentId::index() as u32`).
    segs: Vec<u32>,
}

impl SampleArena {
    /// Builds an arena from a dataset, copying every sample field
    /// verbatim. Trajectory order and per-trajectory sample order are
    /// preserved.
    pub fn from_dataset(dataset: &Dataset) -> Self {
        Self::from_trajectories(dataset.trajectories())
    }

    /// Builds an arena from a trajectory slice (same layout contract as
    /// [`SampleArena::from_dataset`]).
    pub fn from_trajectories(trajectories: &[Trajectory]) -> Self {
        let total: usize = trajectories.iter().map(Trajectory::len).sum();
        let mut arena = SampleArena {
            ids: Vec::with_capacity(trajectories.len()),
            offsets: Vec::with_capacity(trajectories.len() + 1),
            xs: Vec::with_capacity(total),
            ys: Vec::with_capacity(total),
            ts: Vec::with_capacity(total),
            segs: Vec::with_capacity(total),
        };
        arena.offsets.push(0);
        for tr in trajectories {
            arena.ids.push(tr.id());
            let pts = tr.points();
            arena.xs.extend(pts.iter().map(|p| p.position.x));
            arena.ys.extend(pts.iter().map(|p| p.position.y));
            arena.ts.extend(pts.iter().map(|p| p.time));
            arena
                .segs
                .extend(pts.iter().map(|p| p.segment.index() as u32)); // lint:allow(L4) reason=SegmentId is u32-backed, so index() round-trips losslessly
            arena.offsets.push(arena.xs.len());
        }
        arena
    }

    /// Number of trajectories in the arena.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the arena holds no trajectories.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Total number of samples across all trajectories.
    pub fn total_samples(&self) -> usize {
        self.xs.len()
    }

    /// Total samples across the trajectories in `range` — an O(1)
    /// offsets lookup, used to pre-size per-chunk fragment buffers.
    pub fn samples_in(&self, range: std::ops::Range<usize>) -> usize {
        self.offsets[range.end] - self.offsets[range.start]
    }

    /// The id of trajectory `i`.
    pub fn id(&self, i: usize) -> TrajectoryId {
        self.ids[i]
    }

    /// A borrowed struct-of-arrays view of trajectory `i`'s samples.
    pub fn view(&self, i: usize) -> TrajView<'_> {
        let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
        TrajView {
            id: self.ids[i],
            xs: &self.xs[lo..hi],
            ys: &self.ys[lo..hi],
            ts: &self.ts[lo..hi],
            segs: &self.segs[lo..hi],
        }
    }

    /// Rebuilds the per-trajectory representation. Round-trips
    /// bit-identically: `SampleArena::from_dataset(&d).rebuild(d.name())`
    /// equals `d` for any valid dataset.
    ///
    /// # Errors
    ///
    /// Propagates [`TrajError`] from trajectory validation; unreachable
    /// when the arena was built from valid trajectories, whose invariants
    /// the arena preserves.
    pub fn rebuild(&self, name: impl Into<String>) -> Result<Dataset, TrajError> {
        let mut out = Dataset::new(name);
        for i in 0..self.len() {
            let view = self.view(i);
            let pts = (0..view.len()).map(|j| view.location(j)).collect();
            out.push(Trajectory::new(view.id, pts)?);
        }
        Ok(out)
    }
}

/// Borrowed struct-of-arrays view of one trajectory inside a
/// [`SampleArena`]. All slices have equal length ≥ 2.
#[derive(Debug, Clone, Copy)]
pub struct TrajView<'a> {
    /// The trajectory's id.
    pub id: TrajectoryId,
    xs: &'a [f64],
    ys: &'a [f64],
    ts: &'a [f64],
    segs: &'a [u32],
}

impl<'a> TrajView<'a> {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Always `false`: valid trajectories have at least two samples.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The contiguous run of raw segment indices — the fragment-boundary
    /// scan input.
    pub fn segs(&self) -> &'a [u32] {
        self.segs
    }

    /// Sample x coordinates.
    pub fn xs(&self) -> &'a [f64] {
        self.xs
    }

    /// Sample y coordinates.
    pub fn ys(&self) -> &'a [f64] {
        self.ys
    }

    /// Sample timestamps.
    pub fn ts(&self) -> &'a [f64] {
        self.ts
    }

    /// Reconstructs sample `j` as a [`RoadLocation`] with bit-identical
    /// fields to the original dataset point.
    pub fn location(&self, j: usize) -> RoadLocation {
        RoadLocation::new(
            SegmentId::new(self.segs[j] as usize),
            Point::new(self.xs[j], self.ys[j]),
            self.ts[j],
        )
    }

    /// Splits the view into t-fragments, equivalent to
    /// [`crate::fragment::split_into_fragments`] on the rebuilt
    /// trajectory: consecutive samples with equal segment indices group
    /// into one fragment. The boundary detector scans the dense `u32`
    /// run; endpoint locations are reconstructed bit-identically.
    pub fn split_into_fragments(&self) -> Vec<TFragment> {
        let mut out = Vec::new();
        self.split_into_fragments_into(&mut out);
        out
    }

    /// Appends this view's t-fragments to `out` (allocation-reusing
    /// variant of [`TrajView::split_into_fragments`]).
    pub fn split_into_fragments_into(&self, out: &mut Vec<TFragment>) {
        let segs = self.segs;
        let mut start = 0usize;
        for i in 1..=segs.len() {
            let boundary = i == segs.len() || segs[i] != segs[start];
            if boundary {
                out.push(TFragment {
                    trajectory: self.id,
                    segment: SegmentId::new(segs[start] as usize),
                    first: self.location(start),
                    last: self.location(i - 1),
                    point_count: i - start,
                });
                start = i;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::split_into_fragments;

    fn loc(seg: usize, x: f64, t: f64) -> RoadLocation {
        RoadLocation::new(SegmentId::new(seg), Point::new(x, 0.5 * x), t)
    }

    fn dataset() -> Dataset {
        let mut d = Dataset::new("arena");
        d.push(
            Trajectory::new(
                TrajectoryId::new(1),
                vec![loc(0, 0.0, 0.0), loc(0, 10.0, 1.0), loc(1, 20.0, 2.0)],
            )
            .unwrap(),
        );
        d.push(
            Trajectory::new(
                TrajectoryId::new(7),
                vec![loc(2, 5.0, 0.0), loc(2, 6.0, 3.0)],
            )
            .unwrap(),
        );
        d
    }

    #[test]
    fn layout_matches_dataset() {
        let d = dataset();
        let a = SampleArena::from_dataset(&d);
        assert_eq!(a.len(), 2);
        assert_eq!(a.total_samples(), 5);
        assert_eq!(a.id(0), TrajectoryId::new(1));
        let v = a.view(0);
        assert_eq!(v.len(), 3);
        assert_eq!(v.segs(), &[0, 0, 1]);
        assert_eq!(v.ts(), &[0.0, 1.0, 2.0]);
        let v1 = a.view(1);
        assert_eq!(v1.segs(), &[2, 2]);
        assert_eq!(v1.xs(), &[5.0, 6.0]);
    }

    #[test]
    fn locations_round_trip_bit_identically() {
        let d = dataset();
        let a = SampleArena::from_dataset(&d);
        for (i, tr) in d.trajectories().iter().enumerate() {
            let v = a.view(i);
            for (j, p) in tr.points().iter().enumerate() {
                let q = v.location(j);
                assert_eq!(p.segment, q.segment);
                assert_eq!(p.position.x.to_bits(), q.position.x.to_bits());
                assert_eq!(p.position.y.to_bits(), q.position.y.to_bits());
                assert_eq!(p.time.to_bits(), q.time.to_bits());
            }
        }
    }

    #[test]
    fn rebuild_round_trips() {
        let d = dataset();
        let a = SampleArena::from_dataset(&d);
        let back = a.rebuild(d.name()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn view_fragments_match_trajectory_fragments() {
        let d = dataset();
        let a = SampleArena::from_dataset(&d);
        for (i, tr) in d.trajectories().iter().enumerate() {
            assert_eq!(a.view(i).split_into_fragments(), split_into_fragments(tr));
        }
    }

    #[test]
    fn empty_dataset_yields_empty_arena() {
        let a = SampleArena::from_dataset(&Dataset::new("e"));
        assert!(a.is_empty());
        assert_eq!(a.total_samples(), 0);
        assert_eq!(a.rebuild("e").unwrap(), Dataset::new("e"));
    }
}
