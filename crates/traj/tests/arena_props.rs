//! Property tests for the flat struct-of-arrays sample arena: for any
//! valid dataset, flattening into a [`SampleArena`] and reading it back
//! must be lossless down to the bit level — sample fields, fragment
//! extraction, and the full rebuild round trip.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use neat_rnet::{Point, RoadLocation, SegmentId};
use neat_traj::fragment::split_into_fragments;
use neat_traj::{Dataset, SampleArena, Trajectory, TrajectoryId};
use proptest::prelude::*;

/// Builds a dataset from raw generated samples: a small segment universe
/// (so runs of equal segments — multi-sample fragments — are common),
/// strictly increasing times, and full-range coordinates.
fn dataset_from(raw: Vec<Vec<(usize, f64, f64)>>) -> Dataset {
    let mut d = Dataset::new("prop");
    for (i, samples) in raw.into_iter().enumerate() {
        let pts: Vec<RoadLocation> = samples
            .into_iter()
            .enumerate()
            .map(|(j, (seg, x, y))| {
                RoadLocation::new(SegmentId::new(seg), Point::new(x, y), j as f64)
            })
            .collect();
        d.push(Trajectory::new(TrajectoryId::new(i as u64), pts).expect("valid by construction"));
    }
    d
}

fn raw_strategy() -> impl Strategy<Value = Vec<Vec<(usize, f64, f64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0usize..6, -1.0e4f64..1.0e4, -1.0e4f64..1.0e4), 2..25),
        0..8,
    )
}

proptest! {
    /// Build → iterate: every sample reads back with bit-identical
    /// coordinates, time, and segment.
    #[test]
    fn arena_views_are_bit_identical_to_the_dataset(raw in raw_strategy()) {
        let d = dataset_from(raw);
        let arena = SampleArena::from_dataset(&d);
        prop_assert_eq!(arena.len(), d.len());
        let total: usize = d.trajectories().iter().map(Trajectory::len).sum();
        prop_assert_eq!(arena.total_samples(), total);
        for (i, tr) in d.trajectories().iter().enumerate() {
            let view = arena.view(i);
            prop_assert_eq!(view.id, tr.id());
            prop_assert_eq!(view.len(), tr.len());
            for (j, p) in tr.points().iter().enumerate() {
                let q = view.location(j);
                prop_assert_eq!(p.segment, q.segment);
                prop_assert_eq!(p.position.x.to_bits(), q.position.x.to_bits());
                prop_assert_eq!(p.position.y.to_bits(), q.position.y.to_bits());
                prop_assert_eq!(p.time.to_bits(), q.time.to_bits());
                prop_assert_eq!(view.segs()[j] as usize, p.segment.index());
            }
        }
    }

    /// Build → rebuild: the arena reconstructs the exact dataset.
    #[test]
    fn arena_rebuild_round_trips(raw in raw_strategy()) {
        let d = dataset_from(raw);
        let arena = SampleArena::from_dataset(&d);
        let back = arena.rebuild(d.name()).expect("rebuild of valid data");
        prop_assert_eq!(back, d);
    }

    /// Fragment extraction over the flat segment run matches the
    /// per-trajectory splitter exactly (endpoints included, bit for bit —
    /// TFragment derives PartialEq over its RoadLocation fields).
    #[test]
    fn arena_fragments_match_trajectory_fragments(raw in raw_strategy()) {
        let d = dataset_from(raw);
        let arena = SampleArena::from_dataset(&d);
        for (i, tr) in d.trajectories().iter().enumerate() {
            let view = arena.view(i);
            prop_assert_eq!(view.split_into_fragments(), split_into_fragments(tr));
            // The reusable-buffer variant appends the same fragments.
            let mut buf = vec![];
            view.split_into_fragments_into(&mut buf);
            prop_assert_eq!(buf, split_into_fragments(tr));
        }
    }
}
