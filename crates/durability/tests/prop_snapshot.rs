//! Property-based coverage of the durable wire formats: snapshot frames
//! and journal records must round-trip arbitrary payloads byte for byte,
//! and no single-byte corruption anywhere in the encoded bytes may ever
//! be *silently* accepted — every flip is either detected as a structured
//! error or (for a journal) degrades to a clean prefix of the original
//! records, never to altered payloads.

use neat_durability::journal::{append_record, read_journal};
use neat_durability::snapshot::{decode_snapshot, encode_snapshot};
use neat_durability::{Dec, DurabilityError, Enc, Fs, MemFs};
use proptest::prelude::*;
use std::path::PathBuf;

fn journal_path() -> PathBuf {
    PathBuf::from("/prop/journal.neatlog")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snapshot_round_trips_any_payload(
        payload in proptest::collection::vec(0u8..=255, 0..512),
        version in 1u32..1000,
    ) {
        let framed = encode_snapshot(version, &payload);
        let decoded = decode_snapshot(&journal_path(), version, &framed).unwrap();
        prop_assert_eq!(decoded, &payload[..]);
    }

    #[test]
    fn snapshot_single_byte_corruption_always_detected(
        payload in proptest::collection::vec(0u8..=255, 1..256),
        version in 1u32..100,
        offset in 0usize..1_000_000,
        mask in 1u8..=255,
    ) {
        let mut framed = encode_snapshot(version, &payload);
        let i = offset % framed.len();
        framed[i] ^= mask;
        let r = decode_snapshot(&journal_path(), version, &framed);
        prop_assert!(r.is_err(), "flip at byte {} (mask {:#04x}) was silently accepted", i, mask);
    }

    #[test]
    fn snapshot_any_truncation_is_detected(
        payload in proptest::collection::vec(0u8..=255, 1..128),
        version in 1u32..100,
        cut in 0usize..1_000_000,
    ) {
        let framed = encode_snapshot(version, &payload);
        let keep = cut % framed.len(); // strictly shorter than framed
        let r = decode_snapshot(&journal_path(), version, &framed[..keep]);
        prop_assert!(r.is_err(), "truncation to {} bytes was silently accepted", keep);
    }

    #[test]
    fn journal_round_trips_any_records(
        payloads in proptest::collection::vec(proptest::collection::vec(0u8..=255, 0..96), 0..12),
    ) {
        let fs = MemFs::new();
        for p in &payloads {
            append_record(&fs, &journal_path(), p).unwrap();
        }
        let scan = read_journal(&fs, &journal_path()).unwrap();
        prop_assert_eq!(scan.records, payloads);
        prop_assert_eq!(scan.torn_tail_bytes, 0);
    }

    #[test]
    fn journal_single_byte_corruption_never_silently_accepted(
        payloads in proptest::collection::vec(proptest::collection::vec(0u8..=255, 1..64), 1..6),
        offset in 0usize..1_000_000,
        mask in 1u8..=255,
    ) {
        let fs = MemFs::new();
        for p in &payloads {
            append_record(&fs, &journal_path(), p).unwrap();
        }
        let mut bytes = fs.read(&journal_path()).unwrap();
        let i = offset % bytes.len();
        bytes[i] ^= mask;
        fs.write(&journal_path(), &bytes).unwrap();
        match read_journal(&fs, &journal_path()) {
            // Detected: the normal outcome.
            Err(DurabilityError::Corrupt { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error kind: {}", e),
            // A flip in a length field can make the reader treat the rest
            // of the file as a torn tail. Whatever survives must be an
            // unmodified prefix of the original records — corrupt
            // payloads must never surface as data.
            Ok(scan) => {
                prop_assert!(scan.records.len() < payloads.len(),
                    "flip at byte {} (mask {:#04x}) preserved every record", i, mask);
                for (k, rec) in scan.records.iter().enumerate() {
                    prop_assert_eq!(rec, &payloads[k],
                        "flip at byte {} surfaced an altered record {}", i, k);
                }
            }
        }
    }

    #[test]
    fn codec_encodings_are_self_delimiting(
        payload in proptest::collection::vec(0u8..=255, 0..64),
        text_bytes in proptest::collection::vec(b'a'..=b'z', 0..24),
        a in 0u64..=u64::MAX,
        b in -1.0e12f64..1.0e12,
    ) {
        // The Enc/Dec pair underlying every checkpoint payload must
        // round-trip and consume exactly what it wrote.
        let text = String::from_utf8(text_bytes).unwrap();
        let mut e = Enc::new();
        e.u64(a);
        e.f64(b);
        e.bytes(&payload);
        e.str(&text);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        prop_assert_eq!(d.u64("a").unwrap(), a);
        prop_assert_eq!(d.f64("b").unwrap().to_bits(), b.to_bits());
        prop_assert_eq!(d.bytes("payload").unwrap(), &payload[..]);
        prop_assert_eq!(d.str("text").unwrap(), text);
        d.expect_exhausted("frame").unwrap();
    }
}

/// Exhaustive (non-proptest) sweep: every byte of a two-record journal,
/// every bit — small enough to brute-force, so do.
#[test]
fn journal_every_single_bit_flip_is_safe() {
    let fs = MemFs::new();
    let originals: Vec<Vec<u8>> = vec![b"first payload".to_vec(), b"second payload".to_vec()];
    for p in &originals {
        append_record(&fs, &journal_path(), p).unwrap();
    }
    let clean = fs.read(&journal_path()).unwrap();
    for i in 0..clean.len() {
        for bit in 0..8 {
            let mut bad = clean.clone();
            bad[i] ^= 1 << bit;
            let fs2 = MemFs::new();
            fs2.write(&journal_path(), &bad).unwrap();
            match read_journal(&fs2, &journal_path()) {
                Err(DurabilityError::Corrupt { .. }) => {}
                Err(e) => panic!("byte {i} bit {bit}: unexpected error kind {e}"),
                Ok(scan) => {
                    assert!(
                        scan.records.len() < originals.len(),
                        "byte {i} bit {bit}: flip preserved every record"
                    );
                    for (k, rec) in scan.records.iter().enumerate() {
                        assert_eq!(
                            rec, &originals[k],
                            "byte {i} bit {bit}: altered record {k} surfaced"
                        );
                    }
                }
            }
        }
    }
}
