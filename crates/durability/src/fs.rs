//! Filesystem abstraction the durability layer writes through.
//!
//! All snapshot and journal I/O goes through the [`Fs`] trait, so a test
//! harness can substitute a fault-injecting implementation (see
//! `neat_mobisim::faults::FaultFs`) and a chaos test can run thousands
//! of crash/restart cycles against the in-memory [`MemFs`] without
//! touching a real disk. Production code uses [`StdFs`], which fsyncs
//! files after every write and syncs parent directories after renames —
//! the two steps POSIX requires for rename-based atomicity to survive
//! power loss.

use crate::error::DurabilityError;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Suffix of in-flight atomic writes; readers and directory scans must
/// ignore files carrying it (a crash can leave one behind).
pub const TMP_SUFFIX: &str = ".tmp";

/// Minimal filesystem surface needed for crash-safe persistence.
///
/// Mutating operations (`write`, `append`, `rename`, `remove_file`) are
/// required to be durable on return: implementations flush *and* sync.
pub trait Fs {
    /// Reads a whole file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (including not-found).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates/truncates `path` and durably writes `bytes`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Durably appends `bytes` to `path`, creating it if absent.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` to `to` (same directory).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Creates a directory and all parents.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Lists the files directly inside `dir`, sorted by path for
    /// deterministic scans.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// Syncs the directory entry itself (after renames/removals). A
    /// no-op where the platform cannot express it.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Whether `path` currently exists.
    fn exists(&self, path: &Path) -> bool;
}

/// The real filesystem, with fsync on every mutation.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdFs;

impl Fs for StdFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        File::open(path)?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it persists the
        // directory entries on POSIX; on platforms where directories
        // cannot be opened this way, rename durability is best-effort.
        match File::open(dir) {
            Ok(f) => f.sync_all().or(Ok(())),
            Err(_) => Ok(()),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// In-memory filesystem: a path → bytes map behind a mutex.
///
/// Clones share the same storage (the map is reference-counted), so a
/// chaos harness can "crash" one handle and reopen the surviving state
/// through another — exactly the semantics of a process dying while its
/// files persist.
#[derive(Debug, Clone, Default)]
pub struct MemFs {
    files: Arc<Mutex<BTreeMap<PathBuf, Vec<u8>>>>,
}

impl MemFs {
    /// Creates an empty in-memory filesystem.
    pub fn new() -> Self {
        MemFs::default()
    }

    /// Snapshot of every `(path, contents)` pair, sorted by path — used
    /// by tests to diff and hex-dump post-crash disk state.
    pub fn dump(&self) -> Vec<(PathBuf, Vec<u8>)> {
        self.files
            .lock() // lint:allow(L6) reason=MemFs deliberately propagates poison (its map mutates in multi-step operations), opting out of the ride-through Lock::enter policy
            .expect("MemFs mutex poisoned") // lint:allow(L1) reason=a poisoned test-fs mutex means a panic already happened on another thread; propagating it is the only sound option
            .iter()
            .map(|(p, b)| (p.clone(), b.clone()))
            .collect()
    }

    fn with<R>(&self, f: impl FnOnce(&mut BTreeMap<PathBuf, Vec<u8>>) -> R) -> R {
        f(&mut self.files.lock().expect("MemFs mutex poisoned")) // lint:allow(L1,L6) reason=MemFs deliberately propagates poison (a panicked multi-step fs operation leaves the map suspect), opting out of the ride-through Lock::enter policy
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("no such file: {}", path.display()),
    )
}

impl Fs for MemFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.with(|m| m.get(path).cloned().ok_or_else(|| not_found(path)))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.with(|m| {
            m.insert(path.to_path_buf(), bytes.to_vec());
            Ok(())
        })
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.with(|m| {
            m.entry(path.to_path_buf())
                .or_default()
                .extend_from_slice(bytes);
            Ok(())
        })
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.with(|m| {
            let bytes = m.remove(from).ok_or_else(|| not_found(from))?;
            m.insert(to.to_path_buf(), bytes);
            Ok(())
        })
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.with(|m| m.remove(path).map(|_| ()).ok_or_else(|| not_found(path)))
    }

    fn create_dir_all(&self, _path: &Path) -> io::Result<()> {
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.with(|m| {
            Ok(m.keys()
                .filter(|p| p.parent() == Some(dir))
                .cloned()
                .collect())
        })
    }

    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.with(|m| m.contains_key(path))
    }
}

/// Writes `bytes` to `path` atomically: the data first lands in a
/// sibling temp file (`<name>.tmp`), is synced, and is then renamed over
/// the destination. A crash at any instant leaves either the old file,
/// the new file, or an ignorable temp file — never a half-written
/// destination.
///
/// # Errors
///
/// [`DurabilityError::Io`] naming the failing operation; on a failed
/// rename the temp file is removed best-effort so retries start clean.
pub fn write_atomic<F: Fs>(fs: &F, path: &Path, bytes: &[u8]) -> Result<(), DurabilityError> {
    let tmp = tmp_path(path);
    fs.write(&tmp, bytes)
        .map_err(|e| DurabilityError::io("write", &tmp, e))?;
    if let Err(e) = fs.rename(&tmp, path) {
        let _ = fs.remove_file(&tmp);
        return Err(DurabilityError::io("rename", path, e));
    }
    if let Some(dir) = path.parent() {
        fs.sync_dir(dir)
            .map_err(|e| DurabilityError::io("sync_dir", dir, e))?;
    }
    Ok(())
}

/// The sibling temp path used by [`write_atomic`].
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(TMP_SUFFIX);
    PathBuf::from(name)
}

/// `true` when `path` is an in-flight temp file that scans must skip.
pub fn is_tmp(path: &Path) -> bool {
    path.to_string_lossy().ends_with(TMP_SUFFIX)
}

/// Convenience: atomic write on the real filesystem. This is the writer
/// every artifact emitter in the workspace (quarantine files, result
/// JSON, SVGs) routes through so a crash can never leave a partial file
/// at the destination path.
///
/// # Errors
///
/// As [`write_atomic`].
pub fn write_atomic_std(path: &Path, bytes: &[u8]) -> Result<(), DurabilityError> {
    write_atomic(&StdFs, path, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("neat-durability-tests")
            .join(format!("{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn stdfs_write_read_append_roundtrip() {
        let dir = temp_dir("rw");
        let p = dir.join("a.bin");
        StdFs.write(&p, b"one").unwrap();
        StdFs.append(&p, b"two").unwrap();
        assert_eq!(StdFs.read(&p).unwrap(), b"onetwo");
        assert!(StdFs.exists(&p));
        let listed = StdFs.list(&dir).unwrap();
        assert!(listed.contains(&p));
        StdFs.remove_file(&p).unwrap();
        assert!(!StdFs.exists(&p));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn atomic_write_lands_and_leaves_no_tmp() {
        let dir = temp_dir("atomic");
        let p = dir.join("out.txt");
        write_atomic(&StdFs, &p, b"v1").unwrap();
        write_atomic(&StdFs, &p, b"v2").unwrap();
        assert_eq!(StdFs.read(&p).unwrap(), b"v2");
        assert!(!StdFs.exists(&tmp_path(&p)));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn memfs_clones_share_state() {
        let fs = MemFs::new();
        let other = fs.clone();
        fs.write(Path::new("/d/a"), b"x").unwrap();
        assert_eq!(other.read(Path::new("/d/a")).unwrap(), b"x");
        other.append(Path::new("/d/a"), b"y").unwrap();
        assert_eq!(fs.read(Path::new("/d/a")).unwrap(), b"xy");
    }

    #[test]
    fn memfs_rename_and_list() {
        let fs = MemFs::new();
        fs.write(Path::new("/d/a"), b"1").unwrap();
        fs.write(Path::new("/d/b"), b"2").unwrap();
        fs.write(Path::new("/other/c"), b"3").unwrap();
        fs.rename(Path::new("/d/a"), Path::new("/d/z")).unwrap();
        let listed = fs.list(Path::new("/d")).unwrap();
        assert_eq!(
            listed,
            vec![PathBuf::from("/d/b"), PathBuf::from("/d/z")],
            "sorted, dir-scoped listing"
        );
        assert!(fs.read(Path::new("/d/a")).is_err());
    }

    #[test]
    fn tmp_naming_is_recognised() {
        let p = Path::new("/x/snap-1.neatsnap");
        assert!(is_tmp(&tmp_path(p)));
        assert!(!is_tmp(p));
    }

    #[test]
    fn failed_rename_cleans_up_tmp() {
        // MemFs rename fails when the source vanished; simulate by
        // wrapping: here we just verify write_atomic error carries path
        // context when the destination directory cannot take a rename.
        #[derive(Debug, Clone, Default)]
        struct NoRename(MemFs);
        impl Fs for NoRename {
            fn read(&self, p: &Path) -> io::Result<Vec<u8>> {
                self.0.read(p)
            }
            fn write(&self, p: &Path, b: &[u8]) -> io::Result<()> {
                self.0.write(p, b)
            }
            fn append(&self, p: &Path, b: &[u8]) -> io::Result<()> {
                self.0.append(p, b)
            }
            fn rename(&self, _: &Path, _: &Path) -> io::Result<()> {
                Err(io::Error::other("rename refused"))
            }
            fn remove_file(&self, p: &Path) -> io::Result<()> {
                self.0.remove_file(p)
            }
            fn create_dir_all(&self, p: &Path) -> io::Result<()> {
                self.0.create_dir_all(p)
            }
            fn list(&self, d: &Path) -> io::Result<Vec<PathBuf>> {
                self.0.list(d)
            }
            fn sync_dir(&self, d: &Path) -> io::Result<()> {
                self.0.sync_dir(d)
            }
            fn exists(&self, p: &Path) -> bool {
                self.0.exists(p)
            }
        }
        let fs = NoRename::default();
        let err = write_atomic(&fs, Path::new("/d/file"), b"data").unwrap_err();
        assert!(matches!(err, DurabilityError::Io { op: "rename", .. }));
        // The temp file was cleaned up.
        assert!(!fs.0.exists(&tmp_path(Path::new("/d/file"))));
    }
}
