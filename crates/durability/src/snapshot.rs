//! The snapshot container frame: magic, version, length and CRC around
//! an opaque payload.
//!
//! Wire format (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"NEATSNAP"
//! 8       4     format version (u32)
//! 12      8     payload length (u64) — must equal exactly the bytes after the header
//! 20      4     CRC-32 (IEEE) of the payload bytes
//! 24      n     payload
//! ```
//!
//! Every field is validated on decode, in order: magic, version, length,
//! checksum. A single flipped bit anywhere in the file — header or
//! payload — fails at least one of those checks, so corruption is always
//! reported as a structured [`DurabilityError`], never silently accepted.

use crate::codec::crc32;
use crate::error::DurabilityError;
use std::path::Path;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"NEATSNAP";

/// Fixed header size preceding the payload.
pub const SNAPSHOT_HEADER_LEN: usize = 8 + 4 + 8 + 4;

/// Frames `payload` into the snapshot container format.
pub fn encode_snapshot(version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SNAPSHOT_HEADER_LEN + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a framed snapshot and returns its payload.
///
/// `path` is only used for error messages.
///
/// # Errors
///
/// [`DurabilityError::BadMagic`] / [`DurabilityError::UnsupportedVersion`]
/// / [`DurabilityError::Corrupt`] depending on which check fails first.
pub fn decode_snapshot<'a>(
    path: &Path,
    version: u32,
    bytes: &'a [u8],
) -> Result<&'a [u8], DurabilityError> {
    let display = || path.display().to_string();
    if bytes.len() < SNAPSHOT_HEADER_LEN {
        return Err(DurabilityError::Corrupt {
            path: display(),
            offset: 0,
            detail: format!(
                "file is {} bytes, shorter than the {SNAPSHOT_HEADER_LEN}-byte header",
                bytes.len()
            ),
        });
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(DurabilityError::BadMagic {
            path: display(),
            found: bytes[..8].to_vec(),
        });
    }
    let got_version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if got_version != version {
        return Err(DurabilityError::UnsupportedVersion {
            path: display(),
            got: got_version,
            supported: version,
        });
    }
    let declared_len = u64::from_le_bytes([
        bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
    ]);
    let payload = &bytes[SNAPSHOT_HEADER_LEN..];
    if declared_len != payload.len() as u64 {
        return Err(DurabilityError::Corrupt {
            path: display(),
            offset: 12,
            detail: format!(
                "declared payload length {declared_len} but {} bytes follow the header \
                 (torn or short write)",
                payload.len()
            ),
        });
    }
    let declared_crc = u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]);
    let actual_crc = crc32(payload);
    if declared_crc != actual_crc {
        return Err(DurabilityError::Corrupt {
            path: display(),
            offset: 20,
            detail: format!(
                "payload CRC mismatch: header says {declared_crc:#010x}, \
                 payload hashes to {actual_crc:#010x}"
            ),
        });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: u32 = 3;

    fn p() -> &'static Path {
        Path::new("snap-test.neatsnap")
    }

    #[test]
    fn frame_round_trips() {
        let payload = b"the retained flows";
        let framed = encode_snapshot(V, payload);
        assert_eq!(decode_snapshot(p(), V, &framed).unwrap(), payload);
    }

    #[test]
    fn empty_payload_round_trips() {
        let framed = encode_snapshot(V, b"");
        assert_eq!(decode_snapshot(p(), V, &framed).unwrap(), b"");
    }

    #[test]
    fn torn_tail_is_reported_as_corrupt() {
        let framed = encode_snapshot(V, b"0123456789");
        // Simulate a torn write: only a prefix reached the disk.
        for cut in SNAPSHOT_HEADER_LEN..framed.len() {
            let err = decode_snapshot(p(), V, &framed[..cut]).unwrap_err();
            assert!(
                matches!(err, DurabilityError::Corrupt { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn header_shorter_than_fixed_size_is_corrupt() {
        let framed = encode_snapshot(V, b"x");
        for cut in 0..SNAPSHOT_HEADER_LEN {
            assert!(
                decode_snapshot(p(), V, &framed[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_structured() {
        let mut framed = encode_snapshot(V, b"payload");
        framed[0] ^= 0xFF;
        assert!(matches!(
            decode_snapshot(p(), V, &framed).unwrap_err(),
            DurabilityError::BadMagic { .. }
        ));
        let framed = encode_snapshot(V + 1, b"payload");
        assert!(matches!(
            decode_snapshot(p(), V, &framed).unwrap_err(),
            DurabilityError::UnsupportedVersion { got, supported, .. }
                if got == V + 1 && supported == V
        ));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let framed = encode_snapshot(V, b"some payload worth protecting");
        for i in 0..framed.len() {
            for flip in [0x01u8, 0x10, 0xFF] {
                let mut bad = framed.clone();
                bad[i] ^= flip;
                assert!(
                    decode_snapshot(p(), V, &bad).is_err(),
                    "flip {flip:02x} at byte {i} was silently accepted"
                );
            }
        }
    }

    #[test]
    fn appended_garbage_is_detected() {
        let mut framed = encode_snapshot(V, b"payload");
        framed.extend_from_slice(b"trailing junk");
        assert!(matches!(
            decode_snapshot(p(), V, &framed).unwrap_err(),
            DurabilityError::Corrupt { offset: 12, .. }
        ));
    }
}
