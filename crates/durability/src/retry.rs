//! Retry decorator over [`Fs`] for transient I/O errors.
//!
//! Network filesystems and overloaded disks surface transient failures
//! (`EINTR`, `EAGAIN`, timeouts) that succeed on a simple retry. Rather
//! than teach every call site a retry loop, [`RetryFs`] wraps any [`Fs`]
//! and replays *idempotent* operations a bounded number of times with an
//! injectable backoff.
//!
//! `append` is deliberately **not** retried: a failed append may have
//! landed partially, and replaying it could duplicate journal records.
//! The journal layer already tolerates a torn tail, so the safe recovery
//! for a failed append is the caller's (re-ingest after resume), not a
//! blind replay.

use crate::fs::Fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// How to pause between retry attempts.
///
/// Injected so tests (and deterministic replay harnesses) never sleep:
/// the durability layer is not an algorithm crate, but keeping wall-time
/// behind a seam mirrors the `Clock` discipline used by `neat-runctl`.
pub trait Backoff: Send + Sync {
    /// Pauses before retry number `attempt` (1-based).
    fn pause(&self, attempt: u32);
}

/// Exponential backoff that actually sleeps: `base * 2^(attempt-1)`,
/// capped at `max`.
#[derive(Debug, Clone)]
pub struct SleepBackoff {
    base: Duration,
    max: Duration,
}

impl SleepBackoff {
    /// Backoff starting at `base`, doubling per attempt, capped at `max`.
    pub fn new(base: Duration, max: Duration) -> Self {
        SleepBackoff { base, max }
    }
}

impl Default for SleepBackoff {
    /// 10 ms base, 500 ms cap — tuned for local-disk hiccups, not WAN.
    fn default() -> Self {
        SleepBackoff::new(Duration::from_millis(10), Duration::from_millis(500))
    }
}

impl Backoff for SleepBackoff {
    fn pause(&self, attempt: u32) {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        std::thread::sleep(self.base.saturating_mul(factor).min(self.max));
    }
}

/// No pause at all — for tests and for callers that retry in a loop that
/// already paces itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBackoff;

impl Backoff for NoBackoff {
    fn pause(&self, _attempt: u32) {}
}

/// How a [`JitterBackoff`] actually spends its computed delay.
///
/// Injected so deterministic harnesses never sleep: the schedule (which
/// is the part that matters for contention) is reproducible from the
/// seed alone, while wall-time only enters through this seam.
pub trait Sleep: Send + Sync {
    /// Spends `delay` (or records it, in tests).
    fn sleep(&self, delay: Duration);
}

/// Really sleeps the thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadSleep;

impl Sleep for ThreadSleep {
    fn sleep(&self, delay: Duration) {
        std::thread::sleep(delay);
    }
}

/// Discards the delay — for tests and self-pacing callers.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSleep;

impl Sleep for NoSleep {
    fn sleep(&self, _delay: Duration) {}
}

/// `splitmix64` step — a tiny, dependency-free deterministic generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shared mutable core of a [`JitterBackoff`]: the generator plus the
/// cumulative delay it has handed out (for the max-elapsed cap).
#[derive(Debug)]
struct BackoffState {
    seed: u64,
    scheduled: Duration,
}

/// Deterministic full-jitter exponential backoff.
///
/// Attempt `n` draws uniformly from `[0, min(max, base * 2^(n-1))]`
/// using a seeded `splitmix64` stream — the classic full-jitter schedule
/// that decorrelates retry storms, but reproducible: the same seed
/// yields the same delay sequence, so chaos harnesses can assert on it.
/// Clones share the generator state (and therefore the stream), mirroring
/// how [`RetryFs`] clones share their counters.
///
/// Growth is optionally bounded with [`JitterBackoff::with_caps`]: a
/// maximum attempt count and/or a maximum cumulative scheduled delay.
/// [`JitterBackoff::next_delay_checked`] enforces both and returns
/// `None` once the budget is spent — the shared give-up signal for
/// `neat push` retries and the server's `Defer{retry_after_ms}` hints,
/// which are drawn from this same schedule.
///
/// The sleeper is injectable; use [`NoSleep`] in tests to keep the
/// schedule observable without wall-time.
#[derive(Debug)]
pub struct JitterBackoff<S: Sleep = ThreadSleep> {
    base: Duration,
    max: Duration,
    max_attempts: Option<u32>,
    max_elapsed: Option<Duration>,
    state: Arc<Mutex<BackoffState>>,
    sleeper: S,
}

impl JitterBackoff<ThreadSleep> {
    /// Seeded full-jitter schedule that really sleeps; 10 ms base,
    /// 500 ms cap unless overridden with [`JitterBackoff::with_sleeper`].
    pub fn seeded(seed: u64) -> Self {
        JitterBackoff::with_sleeper(
            seed,
            Duration::from_millis(10),
            Duration::from_millis(500),
            ThreadSleep,
        )
    }
}

impl<S: Sleep> JitterBackoff<S> {
    /// Full control: seed, exponential envelope, and sleeper.
    pub fn with_sleeper(seed: u64, base: Duration, max: Duration, sleeper: S) -> Self {
        JitterBackoff {
            base,
            max,
            max_attempts: None,
            max_elapsed: None,
            state: Arc::new(Mutex::new(BackoffState {
                seed,
                scheduled: Duration::ZERO,
            })),
            sleeper,
        }
    }

    /// Bounds the schedule: at most `max_attempts` retries and/or at
    /// most `max_elapsed` of cumulative scheduled delay. `None` leaves
    /// the respective dimension unbounded (the pre-cap behavior).
    pub fn with_caps(mut self, max_attempts: Option<u32>, max_elapsed: Option<Duration>) -> Self {
        self.max_attempts = max_attempts;
        self.max_elapsed = max_elapsed;
        self
    }

    /// The envelope-capped draw for `attempt`, advancing the stream.
    /// Runs under the state lock held by the caller.
    fn draw(&self, state: &mut BackoffState, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        let cap = self.base.saturating_mul(factor).min(self.max);
        let cap_nanos = cap.as_nanos().min(u128::from(u64::MAX)) as u64;
        let draw = splitmix64(&mut state.seed);
        Duration::from_nanos(match cap_nanos {
            0 => 0,
            n => draw % (n + 1),
        })
    }

    /// Draws the next delay for retry `attempt` (1-based) and advances
    /// the deterministic stream. Ignores the caps — see
    /// [`JitterBackoff::next_delay_checked`] for the bounded draw.
    pub fn next_delay(&self, attempt: u32) -> Duration {
        // lint:allow(L6) reason=neat-durability sits below neat-runctl in the crate graph, so it inlines the same ride-through policy Lock::enter provides
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let d = self.draw(&mut state, attempt);
        state.scheduled = state.scheduled.saturating_add(d);
        d
    }

    /// The bounded draw: `None` once `attempt` exceeds the attempt cap
    /// or the cumulative scheduled delay has reached the elapsed cap;
    /// otherwise the next delay, clamped so the cumulative total never
    /// overshoots the elapsed cap.
    pub fn next_delay_checked(&self, attempt: u32) -> Option<Duration> {
        if self.max_attempts.is_some_and(|n| attempt > n) {
            return None;
        }
        // lint:allow(L6) reason=neat-durability sits below neat-runctl in the crate graph, so it inlines the same ride-through policy Lock::enter provides
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let remaining = match self.max_elapsed {
            Some(cap) => {
                if state.scheduled >= cap {
                    return None;
                }
                Some(cap - state.scheduled)
            }
            None => None,
        };
        let mut d = self.draw(&mut state, attempt);
        if let Some(r) = remaining {
            d = d.min(r);
        }
        state.scheduled = state.scheduled.saturating_add(d);
        Some(d)
    }

    /// Cumulative delay the schedule has handed out so far.
    pub fn scheduled(&self) -> Duration {
        // lint:allow(L6) reason=neat-durability sits below neat-runctl in the crate graph, so it inlines the same ride-through policy Lock::enter provides
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.scheduled
    }
}

impl<S: Sleep + Clone> Clone for JitterBackoff<S> {
    fn clone(&self) -> Self {
        JitterBackoff {
            base: self.base,
            max: self.max,
            max_attempts: self.max_attempts,
            max_elapsed: self.max_elapsed,
            state: Arc::clone(&self.state),
            sleeper: self.sleeper.clone(),
        }
    }
}

impl<S: Sleep> Backoff for JitterBackoff<S> {
    fn pause(&self, attempt: u32) {
        self.sleeper.sleep(self.next_delay(attempt));
    }
}

/// `true` for error kinds that plausibly succeed on retry.
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// An [`Fs`] decorator that retries transient failures of idempotent
/// operations.
///
/// Retried: `read`, `write`, `rename`, `remove_file`, `create_dir_all`,
/// `list`, `sync_dir`. Not retried: `append` (see module docs) and any
/// error whose kind is not transient (`Interrupted` / `WouldBlock` /
/// `TimedOut`).
///
/// ```
/// use neat_durability::fs::{Fs, MemFs};
/// use neat_durability::retry::{NoBackoff, RetryFs};
/// use std::path::Path;
///
/// let fs = RetryFs::new(MemFs::new(), 3, NoBackoff);
/// fs.write(Path::new("/d/a"), b"payload").unwrap();
/// assert_eq!(fs.read(Path::new("/d/a")).unwrap(), b"payload");
/// assert_eq!(fs.retries(), 0); // MemFs never fails transiently
/// ```
#[derive(Debug)]
pub struct RetryFs<F, B = SleepBackoff> {
    inner: F,
    max_retries: u32,
    backoff: B,
    retries: Arc<AtomicU64>,
    exhausted: Arc<AtomicU64>,
}

/// Snapshot of a [`RetryFs`]'s observability counters, surfaced through
/// service health reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Transient failures that were retried.
    pub retries: u64,
    /// Operations that kept failing transiently until the retry budget
    /// ran out — the error reached the caller.
    pub exhausted: u64,
}

impl<F: Clone, B: Clone> Clone for RetryFs<F, B> {
    /// Clones share the counters (and, for seeded backoffs, the jitter
    /// stream), so a service holding one handle and a store holding
    /// another report one combined tally.
    fn clone(&self) -> Self {
        RetryFs {
            inner: self.inner.clone(),
            max_retries: self.max_retries,
            backoff: self.backoff.clone(),
            retries: Arc::clone(&self.retries),
            exhausted: Arc::clone(&self.exhausted),
        }
    }
}

impl<F: Fs> RetryFs<F> {
    /// Wraps `inner` with the default [`SleepBackoff`].
    pub fn with_default_backoff(inner: F, max_retries: u32) -> Self {
        RetryFs::new(inner, max_retries, SleepBackoff::default())
    }
}

impl<F: Fs, B: Backoff> RetryFs<F, B> {
    /// Wraps `inner`, retrying each idempotent operation up to
    /// `max_retries` extra times with `backoff` pauses in between.
    pub fn new(inner: F, max_retries: u32, backoff: B) -> Self {
        RetryFs {
            inner,
            max_retries,
            backoff,
            retries: Arc::new(AtomicU64::new(0)),
            exhausted: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Total retry attempts performed (across all operations) — an
    /// observability counter for flaky-storage diagnostics.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Operations whose transient failure survived every allowed retry
    /// and surfaced to the caller.
    pub fn retries_exhausted(&self) -> u64 {
        self.exhausted.load(Ordering::Relaxed)
    }

    /// Both counters as one snapshot for health reporting.
    pub fn stats(&self) -> RetryStats {
        RetryStats {
            retries: self.retries(),
            exhausted: self.retries_exhausted(),
        }
    }

    /// The wrapped filesystem.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    fn run<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(&e) && attempt < self.max_retries => {
                    attempt += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    self.backoff.pause(attempt);
                }
                Err(e) => {
                    if is_transient(&e) {
                        // Still transient after every allowed retry: the
                        // caller sees the failure, and the health report
                        // sees that retrying stopped helping.
                        self.exhausted.fetch_add(1, Ordering::Relaxed);
                    }
                    return Err(e);
                }
            }
        }
    }
}

impl<F: Fs, B: Backoff> Fs for RetryFs<F, B> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.run(|| self.inner.read(path))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.run(|| self.inner.write(path, bytes))
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        // Never retried: a partial landing would duplicate records.
        self.inner.append(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.run(|| self.inner.rename(from, to))
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.run(|| self.inner.remove_file(path))
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.run(|| self.inner.create_dir_all(path))
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.run(|| self.inner.list(dir))
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.run(|| self.inner.sync_dir(dir))
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;
    use std::sync::atomic::AtomicU32;
    use std::sync::Mutex;

    /// Fails each operation's first `fail_first` calls with `kind`.
    #[derive(Debug, Clone)]
    struct Flaky {
        inner: MemFs,
        fail_first: u32,
        kind: io::ErrorKind,
        calls: Arc<AtomicU32>,
    }

    impl Flaky {
        fn new(fail_first: u32, kind: io::ErrorKind) -> Self {
            Flaky {
                inner: MemFs::new(),
                fail_first,
                kind,
                calls: Arc::new(AtomicU32::new(0)),
            }
        }

        fn gate(&self) -> io::Result<()> {
            if self.calls.fetch_add(1, Ordering::SeqCst) < self.fail_first {
                Err(io::Error::new(self.kind, "injected transient fault"))
            } else {
                Ok(())
            }
        }
    }

    impl Fs for Flaky {
        fn read(&self, p: &Path) -> io::Result<Vec<u8>> {
            self.gate()?;
            self.inner.read(p)
        }
        fn write(&self, p: &Path, b: &[u8]) -> io::Result<()> {
            self.gate()?;
            self.inner.write(p, b)
        }
        fn append(&self, p: &Path, b: &[u8]) -> io::Result<()> {
            self.gate()?;
            self.inner.append(p, b)
        }
        fn rename(&self, f: &Path, t: &Path) -> io::Result<()> {
            self.gate()?;
            self.inner.rename(f, t)
        }
        fn remove_file(&self, p: &Path) -> io::Result<()> {
            self.gate()?;
            self.inner.remove_file(p)
        }
        fn create_dir_all(&self, p: &Path) -> io::Result<()> {
            self.gate()?;
            self.inner.create_dir_all(p)
        }
        fn list(&self, d: &Path) -> io::Result<Vec<PathBuf>> {
            self.gate()?;
            self.inner.list(d)
        }
        fn sync_dir(&self, d: &Path) -> io::Result<()> {
            self.gate()?;
            self.inner.sync_dir(d)
        }
        fn exists(&self, p: &Path) -> bool {
            self.inner.exists(p)
        }
    }

    #[test]
    fn transient_write_errors_are_retried() {
        let fs = RetryFs::new(Flaky::new(2, io::ErrorKind::Interrupted), 3, NoBackoff);
        fs.write(Path::new("/d/a"), b"ok").unwrap();
        assert_eq!(fs.retries(), 2);
        assert_eq!(fs.inner().inner.read(Path::new("/d/a")).unwrap(), b"ok");
    }

    #[test]
    fn retries_are_bounded() {
        let fs = RetryFs::new(Flaky::new(10, io::ErrorKind::TimedOut), 3, NoBackoff);
        let err = fs.write(Path::new("/d/a"), b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(fs.retries(), 3, "exactly max_retries attempts");
    }

    #[test]
    fn non_transient_errors_fail_immediately() {
        let fs = RetryFs::new(Flaky::new(5, io::ErrorKind::PermissionDenied), 3, NoBackoff);
        let err = fs.write(Path::new("/d/a"), b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(fs.retries(), 0);
    }

    #[test]
    fn append_is_never_retried() {
        let fs = RetryFs::new(Flaky::new(1, io::ErrorKind::Interrupted), 3, NoBackoff);
        let err = fs.append(Path::new("/d/log"), b"rec").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(fs.retries(), 0);
        // The next append succeeds (fault consumed) and nothing doubled.
        fs.append(Path::new("/d/log"), b"rec").unwrap();
        assert_eq!(fs.inner().inner.read(Path::new("/d/log")).unwrap(), b"rec");
    }

    #[test]
    fn backoff_sees_increasing_attempt_numbers() {
        #[derive(Default)]
        struct Recording(Mutex<Vec<u32>>);
        impl Backoff for Recording {
            fn pause(&self, attempt: u32) {
                self.0
                    .lock()
                    .expect("test mutex") // lint:allow(L1) reason=test-only recorder; poisoning implies a prior panic
                    .push(attempt);
            }
        }
        let fs = RetryFs::new(
            Flaky::new(3, io::ErrorKind::WouldBlock),
            5,
            Recording::default(),
        );
        fs.read(Path::new("/missing")).unwrap_err(); // NotFound after retries
                                                     // Three transient faults, then the real NotFound surfaces.
        assert_eq!(*fs.backoff.0.lock().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn exhausted_counter_tracks_giving_up() {
        let fs = RetryFs::new(Flaky::new(10, io::ErrorKind::TimedOut), 2, NoBackoff);
        fs.write(Path::new("/d/a"), b"x").unwrap_err();
        assert_eq!(
            fs.stats(),
            RetryStats {
                retries: 2,
                exhausted: 1
            }
        );
        // Non-transient failures never count as exhausted.
        let fs = RetryFs::new(Flaky::new(5, io::ErrorKind::PermissionDenied), 2, NoBackoff);
        fs.write(Path::new("/d/a"), b"x").unwrap_err();
        assert_eq!(fs.retries_exhausted(), 0);
    }

    #[test]
    fn clones_share_counters() {
        let fs = RetryFs::new(Flaky::new(2, io::ErrorKind::Interrupted), 3, NoBackoff);
        let other = fs.clone();
        fs.write(Path::new("/d/a"), b"ok").unwrap();
        assert_eq!(other.retries(), 2, "clone must see the same tally");
    }

    #[test]
    fn jitter_schedule_is_deterministic_and_enveloped() {
        #[derive(Default, Clone)]
        struct Recording(Arc<Mutex<Vec<Duration>>>);
        impl Sleep for Recording {
            fn sleep(&self, d: Duration) {
                self.0
                    .lock()
                    .expect("test mutex") // lint:allow(L1) reason=test-only recorder; poisoning implies a prior panic
                    .push(d);
            }
        }
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(80);
        let schedule = |seed: u64| -> Vec<Duration> {
            let rec = Recording::default();
            let b = JitterBackoff::with_sleeper(seed, base, max, rec.clone());
            for attempt in 1..=6 {
                b.pause(attempt);
            }
            let delays = rec.0.lock().unwrap().clone();
            delays
        };
        let a = schedule(42);
        assert_eq!(a, schedule(42), "same seed, same schedule");
        assert_ne!(a, schedule(43), "different seed decorrelates");
        for (i, d) in a.iter().enumerate() {
            let cap = base.saturating_mul(1 << i).min(max);
            assert!(*d <= cap, "attempt {} delay {d:?} over cap {cap:?}", i + 1);
        }
    }

    #[test]
    fn jitter_clones_share_the_stream() {
        let a = JitterBackoff::with_sleeper(
            7,
            Duration::from_millis(10),
            Duration::from_secs(1),
            NoSleep,
        );
        let b = a.clone();
        let first = a.next_delay(1);
        let second = b.next_delay(1);
        // The clone continued the stream rather than replaying it.
        assert_ne!(first, second);
    }

    #[test]
    fn attempt_cap_ends_the_checked_schedule() {
        let b = JitterBackoff::with_sleeper(
            9,
            Duration::from_millis(10),
            Duration::from_millis(100),
            NoSleep,
        )
        .with_caps(Some(3), None);
        assert!(b.next_delay_checked(1).is_some());
        assert!(b.next_delay_checked(2).is_some());
        assert!(b.next_delay_checked(3).is_some());
        assert!(b.next_delay_checked(4).is_none(), "attempt cap exhausted");
    }

    #[test]
    fn elapsed_cap_clamps_then_ends_the_schedule() {
        let cap = Duration::from_millis(25);
        let b = JitterBackoff::with_sleeper(
            11,
            Duration::from_millis(20),
            Duration::from_secs(1),
            NoSleep,
        )
        .with_caps(None, Some(cap));
        let mut total = Duration::ZERO;
        let mut attempts = 0u32;
        while let Some(d) = b.next_delay_checked(attempts + 1) {
            attempts += 1;
            total += d;
            assert!(total <= cap, "cumulative {total:?} overshot cap {cap:?}");
            assert!(attempts < 10_000, "schedule must terminate");
        }
        assert_eq!(b.scheduled(), total);
        assert!(total <= cap);
    }

    #[test]
    fn uncapped_draws_match_the_legacy_schedule() {
        // next_delay (uncapped) and next_delay_checked with no caps must
        // produce the same stream for the same seed: one schedule shared
        // by server Defer hints and client retries.
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(500);
        let a = JitterBackoff::with_sleeper(77, base, max, NoSleep);
        let b = JitterBackoff::with_sleeper(77, base, max, NoSleep).with_caps(None, None);
        for attempt in 1..=8 {
            assert_eq!(Some(a.next_delay(attempt)), b.next_delay_checked(attempt));
        }
    }

    #[test]
    fn retryfs_composes_with_write_atomic() {
        let fs = RetryFs::new(Flaky::new(2, io::ErrorKind::Interrupted), 4, NoBackoff);
        crate::fs::write_atomic(&fs, Path::new("/d/snap"), b"payload").unwrap();
        assert_eq!(
            fs.inner().inner.read(Path::new("/d/snap")).unwrap(),
            b"payload"
        );
    }
}
