//! Structured errors of the durability layer.
//!
//! Every storage defect — a checksum mismatch, a truncated record, an
//! unknown format version — is reported as a dedicated variant carrying
//! enough position information (path, byte offset) that an operator can
//! inspect the damaged file. Corruption is *never* surfaced as a panic:
//! the recovery state machine in `neat_core::checkpoint` keys off these
//! variants to decide between falling back to an older snapshot and
//! refusing to resume.

use std::error::Error;
use std::fmt;
use std::io;
use std::path::Path;

/// Errors produced by the durability primitives.
#[derive(Debug)]
#[non_exhaustive]
pub enum DurabilityError {
    /// An underlying filesystem operation failed.
    Io {
        /// Operation that failed (`"write"`, `"rename"`, …).
        op: &'static str,
        /// Path the operation targeted.
        path: String,
        /// The I/O error.
        source: io::Error,
    },
    /// A file does not start with the expected magic bytes — it is not a
    /// snapshot/journal at all, or its header was destroyed.
    BadMagic {
        /// Offending file.
        path: String,
        /// The bytes actually found (at most 8).
        found: Vec<u8>,
    },
    /// The file's format version is not supported by this build.
    UnsupportedVersion {
        /// Offending file.
        path: String,
        /// Version recorded in the file.
        got: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// A length or checksum check failed: the payload does not match its
    /// header.
    Corrupt {
        /// Offending file.
        path: String,
        /// Byte offset of the damaged region (0 for whole-file checks).
        offset: u64,
        /// What exactly failed.
        detail: String,
    },
    /// A buffer ended before a declared field; raised by the binary
    /// decoder when a length prefix points past the end of the data.
    Truncated {
        /// What was being decoded.
        context: String,
        /// Bytes still available.
        remaining: usize,
        /// Bytes the field needed.
        needed: usize,
    },
    /// A decoded value is structurally impossible (e.g. an element count
    /// larger than the bytes that could hold it).
    Malformed {
        /// What was being decoded.
        context: String,
        /// Why the value is impossible.
        detail: String,
    },
    /// No snapshot could be loaded from the store (directory empty, or
    /// every candidate was corrupt — the per-file failures are listed).
    NoSnapshot {
        /// Store directory.
        dir: String,
        /// `(file, reason)` for every rejected candidate.
        rejected: Vec<(String, String)>,
    },
}

impl DurabilityError {
    /// Convenience constructor for [`DurabilityError::Io`].
    pub fn io(op: &'static str, path: &Path, source: io::Error) -> Self {
        DurabilityError::Io {
            op,
            path: path.display().to_string(),
            source,
        }
    }
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io { op, path, source } => {
                write!(f, "{op} `{path}`: {source}")
            }
            DurabilityError::BadMagic { path, found } => {
                write!(f, "`{path}` has no snapshot magic (found {found:02x?})")
            }
            DurabilityError::UnsupportedVersion {
                path,
                got,
                supported,
            } => write!(
                f,
                "`{path}` is format version {got}, this build supports {supported}"
            ),
            DurabilityError::Corrupt {
                path,
                offset,
                detail,
            } => write!(f, "`{path}` corrupt at byte {offset}: {detail}"),
            DurabilityError::Truncated {
                context,
                remaining,
                needed,
            } => write!(
                f,
                "truncated {context}: needed {needed} bytes, {remaining} left"
            ),
            DurabilityError::Malformed { context, detail } => {
                write!(f, "malformed {context}: {detail}")
            }
            DurabilityError::NoSnapshot { dir, rejected } => {
                if rejected.is_empty() {
                    write!(f, "no snapshot in `{dir}`")
                } else {
                    write!(
                        f,
                        "no loadable snapshot in `{dir}` ({} rejected: {})",
                        rejected.len(),
                        rejected
                            .iter()
                            .map(|(file, why)| format!("{file}: {why}"))
                            .collect::<Vec<_>>()
                            .join("; ")
                    )
                }
            }
        }
    }
}

impl Error for DurabilityError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DurabilityError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_for_all_variants() {
        let variants = [
            DurabilityError::io("write", Path::new("/x"), io::Error::other("boom")),
            DurabilityError::BadMagic {
                path: "a".into(),
                found: vec![1, 2],
            },
            DurabilityError::UnsupportedVersion {
                path: "a".into(),
                got: 9,
                supported: 1,
            },
            DurabilityError::Corrupt {
                path: "a".into(),
                offset: 12,
                detail: "crc".into(),
            },
            DurabilityError::Truncated {
                context: "flow".into(),
                remaining: 1,
                needed: 8,
            },
            DurabilityError::Malformed {
                context: "count".into(),
                detail: "too large".into(),
            },
            DurabilityError::NoSnapshot {
                dir: "d".into(),
                rejected: vec![("f".into(), "crc".into())],
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn io_variant_has_source() {
        let e = DurabilityError::io("read", Path::new("/x"), io::Error::other("eio"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DurabilityError>();
    }
}
