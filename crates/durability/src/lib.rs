//! Crash-safe storage primitives for the NEAT reproduction.
//!
//! Long-running incremental clustering (Section III-C of the paper) is
//! only deployable if the process can be killed at any instant and
//! resume with byte-identical results. This crate provides the storage
//! layer that makes that possible:
//!
//! * [`fs::Fs`] — the filesystem surface everything writes through, with
//!   a production [`fs::StdFs`] (fsync on every mutation), an in-memory
//!   [`fs::MemFs`] for hermetic chaos tests, and room for the
//!   fault-injecting `FaultFs` in `neat-mobisim`.
//! * [`fs::write_atomic`] — temp-file + fsync + rename, so a crash never
//!   leaves a partial file at a destination path.
//! * [`codec`] — a deterministic little-endian binary codec whose
//!   decoder bounds-checks every length against the bytes actually
//!   present, plus CRC-32 and FNV-64.
//! * [`snapshot`] — the versioned, checksummed, length-prefixed
//!   container frame; any single-bit flip is detected.
//! * [`journal`] — an append-only record log that tolerates a torn tail
//!   (crash mid-append) but treats interior corruption as a hard error.
//! * [`retry::RetryFs`] — a decorator retrying transient I/O errors of
//!   idempotent operations with injectable backoff (never `append`,
//!   which could duplicate journal records).
//! * [`store::Store`] — a checkpoint directory combining numbered
//!   snapshots with a segmented, sequence-tagged journal, including
//!   retention, crash-safe journal compaction (rewrite live records
//!   into a fresh segment, fsync, rename, then prune the old ones) and
//!   fallback-to-previous-snapshot recovery.
//!
//! The NEAT-specific state encoding lives in `neat_core::checkpoint`;
//! this crate is deliberately dependency-free and knows nothing about
//! clusters.
//!
//! ```
//! use neat_durability::fs::MemFs;
//! use neat_durability::store::Store;
//!
//! # fn main() -> Result<(), neat_durability::DurabilityError> {
//! let store = Store::open(MemFs::new(), "/ckpt", 1)?;
//! store.append_journal(1, b"batch one")?;
//! let retention = store.write_snapshot(1, b"state after batch one")?;
//! assert!(retention.error.is_none());
//! let recovered = store.load()?;
//! assert_eq!(recovered.snapshot.unwrap().1, b"state after batch one");
//! # Ok(())
//! # }
//! ```

pub mod codec;
pub mod error;
pub mod fs;
pub mod journal;
pub mod retry;
pub mod snapshot;
pub mod store;

pub use codec::{crc32, fnv64, Dec, Enc};
pub use error::DurabilityError;
pub use fs::{write_atomic, write_atomic_std, Fs, MemFs, StdFs};
pub use retry::{Backoff, JitterBackoff, NoBackoff, RetryFs, RetryStats, SleepBackoff};
pub use store::{CompactionOutcome, JournalEntry, Recovery, RetentionReport, Store};
