//! Append-only batch journal with per-record framing.
//!
//! Record wire format (little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"NJR1"
//! 4       4     payload length (u32)
//! 8       4     CRC-32 (IEEE) of the payload bytes
//! 12      n     payload
//! ```
//!
//! The reader distinguishes the two kinds of damage a journal can carry:
//!
//! * **Torn tail** — the final record is incomplete because the process
//!   died mid-append. This is *expected* damage: the reader stops at the
//!   last complete record and reports how many trailing bytes it
//!   dropped. Dropping it is safe under the checkpoint protocol (append
//!   only after a batch is applied, treat only a complete append as an
//!   acknowledgement): the durable state simply ends one batch earlier
//!   and the driver re-feeds the un-acknowledged batch.
//! * **Interior corruption** — a complete record whose CRC or magic does
//!   not match, i.e. silent media damage. This is *not* recoverable by
//!   truncation (later records may describe batches that were applied),
//!   so it is a hard [`DurabilityError::Corrupt`].

use crate::codec::crc32;
use crate::error::DurabilityError;
use crate::fs::Fs;
use std::path::Path;

/// Magic bytes opening every journal record.
pub const RECORD_MAGIC: [u8; 4] = *b"NJR1";

/// Fixed per-record header size.
pub const RECORD_HEADER_LEN: usize = 4 + 4 + 4;

/// Frames one record for appending.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(&RECORD_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Durably appends one record to the journal at `path`.
///
/// # Errors
///
/// [`DurabilityError::Io`] on filesystem failure. The append is a single
/// `write(2)`-style call through [`Fs::append`], so a crash leaves at
/// worst a torn tail that the reader drops.
pub fn append_record<F: Fs>(fs: &F, path: &Path, payload: &[u8]) -> Result<(), DurabilityError> {
    fs.append(path, &encode_record(payload))
        .map_err(|e| DurabilityError::io("append", path, e))
}

/// Result of scanning a journal file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalScan {
    /// Payloads of every complete, checksum-valid record, in file order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of an incomplete final record dropped as a torn tail
    /// (0 when the file ended exactly on a record boundary).
    pub torn_tail_bytes: usize,
}

/// Reads and validates a journal. A missing file is an empty journal.
///
/// # Errors
///
/// [`DurabilityError::Io`] on read failure, [`DurabilityError::Corrupt`]
/// on interior corruption (bad magic or CRC on a complete record).
pub fn read_journal<F: Fs>(fs: &F, path: &Path) -> Result<JournalScan, DurabilityError> {
    let bytes = match fs.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(JournalScan::default()),
        Err(e) => return Err(DurabilityError::io("read", path, e)),
    };
    let mut scan = JournalScan::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < RECORD_HEADER_LEN {
            // Header itself is incomplete: torn tail.
            scan.torn_tail_bytes = rest.len();
            break;
        }
        if rest[..4] != RECORD_MAGIC {
            return Err(DurabilityError::Corrupt {
                path: path.display().to_string(),
                offset: pos as u64,
                detail: format!(
                    "record magic mismatch (found {:02x?}) — interior corruption",
                    &rest[..4]
                ),
            });
        }
        let len = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]) as usize;
        let declared_crc = u32::from_le_bytes([rest[8], rest[9], rest[10], rest[11]]);
        if rest.len() < RECORD_HEADER_LEN + len {
            // Payload is incomplete: torn tail.
            scan.torn_tail_bytes = rest.len();
            break;
        }
        let payload = &rest[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len];
        let actual_crc = crc32(payload);
        if declared_crc != actual_crc {
            // The record is complete but its bytes changed after the
            // append — silent corruption, not a torn write.
            return Err(DurabilityError::Corrupt {
                path: path.display().to_string(),
                offset: (pos + 8) as u64,
                detail: format!(
                    "record CRC mismatch: header says {declared_crc:#010x}, \
                     payload hashes to {actual_crc:#010x}"
                ),
            });
        }
        scan.records.push(payload.to_vec());
        pos += RECORD_HEADER_LEN + len;
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;
    use std::path::PathBuf;

    fn path() -> PathBuf {
        PathBuf::from("/store/journal.neatlog")
    }

    #[test]
    fn missing_journal_is_empty() {
        let fs = MemFs::new();
        let scan = read_journal(&fs, &path()).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.torn_tail_bytes, 0);
    }

    #[test]
    fn appended_records_read_back_in_order() {
        let fs = MemFs::new();
        for payload in [b"one".as_slice(), b"two", b"", b"four"] {
            append_record(&fs, &path(), payload).unwrap();
        }
        let scan = read_journal(&fs, &path()).unwrap();
        assert_eq!(
            scan.records,
            vec![b"one".to_vec(), b"two".to_vec(), vec![], b"four".to_vec()]
        );
        assert_eq!(scan.torn_tail_bytes, 0);
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let fs = MemFs::new();
        append_record(&fs, &path(), b"kept").unwrap();
        let torn = encode_record(b"lost in the crash");
        // Simulate a crash mid-append at every possible cut point.
        for cut in 1..torn.len() {
            let fs2 = MemFs::new();
            fs2.write(&path(), &fs.read(&path()).unwrap()).unwrap();
            fs2.append(&path(), &torn[..cut]).unwrap();
            let scan = read_journal(&fs2, &path()).unwrap();
            assert_eq!(scan.records, vec![b"kept".to_vec()], "cut at {cut}");
            assert_eq!(scan.torn_tail_bytes, cut, "cut at {cut}");
        }
    }

    #[test]
    fn interior_bit_flip_is_a_hard_error() {
        let fs = MemFs::new();
        append_record(&fs, &path(), b"first record payload").unwrap();
        append_record(&fs, &path(), b"second record payload").unwrap();
        let clean = fs.read(&path()).unwrap();
        let first_len = encode_record(b"first record payload").len();
        // Flip every byte of the *first* record: always detected because a
        // complete, valid second record follows.
        for i in 0..first_len {
            let mut bad = clean.clone();
            bad[i] ^= 0x40;
            let fs2 = MemFs::new();
            fs2.write(&path(), &bad).unwrap();
            let r = read_journal(&fs2, &path());
            match r {
                Err(DurabilityError::Corrupt { .. }) => {}
                // A flip in the length field can make the first record
                // swallow the second and then run past EOF — that reads
                // as a torn tail with only garbage recovered; the CRC
                // still prevents silent acceptance of altered payloads.
                Ok(scan) => assert!(
                    scan.records.len() < 2,
                    "flip at {i} silently preserved both records"
                ),
                Err(e) => panic!("unexpected error kind at {i}: {e}"),
            }
        }
    }

    #[test]
    fn payload_bit_flip_never_silently_accepted() {
        let fs = MemFs::new();
        append_record(&fs, &path(), b"abcdefgh").unwrap();
        let clean = fs.read(&path()).unwrap();
        for i in RECORD_HEADER_LEN..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x01;
            let fs2 = MemFs::new();
            fs2.write(&path(), &bad).unwrap();
            let r = read_journal(&fs2, &path());
            assert!(
                matches!(r, Err(DurabilityError::Corrupt { .. })),
                "payload flip at {i} not detected: {r:?}"
            );
        }
    }
}
