//! A checkpoint directory: numbered snapshots plus a segmented journal.
//!
//! Layout inside the store directory:
//!
//! ```text
//! snap-00000000000000000042.neatsnap   snapshot up to sequence 42
//! snap-00000000000000000045.neatsnap   snapshot up to sequence 45
//! journal.neatlog                      journal segment 0 (legacy name)
//! journal-00000000000000000001.neatlog journal segment 1
//! journal-00000000000000000002.neatlog journal segment 2 (append target)
//! *.tmp                                in-flight atomic writes (ignored)
//! ```
//!
//! Invariants the store maintains:
//!
//! * Snapshots are written atomically (temp + rename), so a crash never
//!   leaves a half-written `snap-*.neatsnap` — at worst a `.tmp` stray.
//! * The two most recent snapshots are retained. The journal is
//!   compacted only past the *previous* retained snapshot's sequence, so
//!   even if the latest snapshot is silently corrupted (bit rot), the
//!   previous one plus the journal still reconstructs the full state.
//! * Journal records carry their sequence number in the payload; replay
//!   filters on `seq > snapshot.seq`, which makes the
//!   snapshot-then-compact pair crash-safe in any interleaving.
//! * The journal is a list of **segments**: appends go to the
//!   highest-numbered segment, rolling to a fresh one past a size
//!   threshold. [`Store::compact_journal`] rewrites the live records
//!   into a brand-new segment (temp + fsync + atomic rename) and only
//!   then removes the old segment files — a crash at any step leaves
//!   either the old segments, both (duplicates resolved on load: the
//!   newer segment wins when the payloads agree byte-for-byte), or the
//!   compacted one. No step ever rewrites a file appends go to.

use crate::error::DurabilityError;
use crate::fs::{is_tmp, write_atomic, Fs};
use crate::journal::{append_record, encode_record, read_journal, JournalScan};
use crate::snapshot::{decode_snapshot, encode_snapshot};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// File name of journal segment 0 (the pre-segmentation journal name,
/// kept so existing store directories need no migration).
pub const JOURNAL_FILE: &str = "journal.neatlog";

/// Extension of snapshot files.
pub const SNAPSHOT_EXT: &str = "neatsnap";

/// How many snapshots [`Store::write_snapshot`] retains.
pub const RETAIN_SNAPSHOTS: usize = 2;

/// Default size past which [`Store::append_journal`] rolls to a fresh
/// journal segment.
pub const DEFAULT_JOURNAL_ROLL_BYTES: usize = 256 * 1024;

/// A store handle: a directory accessed through an [`Fs`].
#[derive(Debug, Clone)]
pub struct Store<F: Fs> {
    fs: F,
    dir: PathBuf,
    version: u32,
    roll_bytes: usize,
}

/// One journal entry surfaced to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Sequence number the record was tagged with.
    pub seq: u64,
    /// The caller's payload.
    pub payload: Vec<u8>,
}

/// What one [`Store::compact_journal`] pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// Records carried over into the new segment.
    pub live_records: usize,
    /// Records dropped because their sequence was at or below the cutoff.
    pub dropped_records: usize,
    /// Old segment files removed after the rewrite landed.
    pub segments_removed: usize,
    /// Index of the freshly written segment, when one was written.
    pub new_segment: Option<u64>,
}

/// What [`Store::write_snapshot`] did *after* the snapshot itself
/// landed: snapshot retention and journal compaction.
///
/// The snapshot write is the durability-critical step and failing it is
/// a hard error; retention only reclaims space, so its failure is
/// reported here instead of unwinding the caller — the store keeps
/// serving from the old segments and the caller retries later.
#[derive(Debug, Default)]
pub struct RetentionReport {
    /// Surplus snapshot files removed.
    pub snapshots_removed: usize,
    /// Journal compaction outcome, when compaction ran.
    pub compaction: Option<CompactionOutcome>,
    /// First error retention hit, if any; earlier steps still applied.
    pub error: Option<DurabilityError>,
}

/// What [`Store::load`] recovered from disk.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// Newest loadable snapshot, as `(sequence, payload)`.
    pub snapshot: Option<(u64, Vec<u8>)>,
    /// Journal entries with `seq` greater than the snapshot's sequence
    /// (all entries when there is no snapshot), in sequence order.
    pub journal: Vec<JournalEntry>,
    /// Snapshot files that failed validation and were skipped, as
    /// `(file name, reason)` — newest first.
    pub rejected_snapshots: Vec<(String, String)>,
    /// Bytes dropped from an incomplete final journal record.
    pub torn_tail_bytes: usize,
}

impl<F: Fs> Store<F> {
    /// Opens (creating if necessary) a store directory.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Io`] when the directory cannot be created.
    pub fn open(fs: F, dir: impl Into<PathBuf>, version: u32) -> Result<Self, DurabilityError> {
        let dir = dir.into();
        fs.create_dir_all(&dir)
            .map_err(|e| DurabilityError::io("create_dir_all", &dir, e))?;
        Ok(Store {
            fs,
            dir,
            version,
            roll_bytes: DEFAULT_JOURNAL_ROLL_BYTES,
        })
    }

    /// Overrides the journal segment roll threshold (bytes).
    #[must_use]
    pub fn with_journal_roll_bytes(mut self, roll_bytes: usize) -> Self {
        self.roll_bytes = roll_bytes.max(1);
        self
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The filesystem handle.
    pub fn fs(&self) -> &F {
        &self.fs
    }

    /// Path of journal segment 0 (the legacy single-file journal).
    pub fn journal_path(&self) -> PathBuf {
        self.segment_path(0)
    }

    /// Path of journal segment `idx`. Segment 0 keeps the historical
    /// `journal.neatlog` name so pre-segmentation stores load unchanged.
    pub fn segment_path(&self, idx: u64) -> PathBuf {
        if idx == 0 {
            self.dir.join(JOURNAL_FILE)
        } else {
            self.dir.join(format!("journal-{idx:020}.neatlog"))
        }
    }

    /// Parses a journal segment file name back into its index.
    fn parse_segment_name(path: &Path) -> Option<u64> {
        let name = path.file_name()?.to_str()?;
        if name == JOURNAL_FILE {
            return Some(0);
        }
        name.strip_prefix("journal-")?
            .strip_suffix(".neatlog")?
            .parse()
            .ok()
    }

    /// Journal segment indices currently on disk, ascending.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Io`] when the directory cannot be listed.
    pub fn journal_segments(&self) -> Result<Vec<u64>, DurabilityError> {
        let mut idxs: Vec<u64> = self
            .fs
            .list(&self.dir)
            .map_err(|e| DurabilityError::io("list", &self.dir, e))?
            .iter()
            .filter(|p| !is_tmp(p))
            .filter_map(|p| Self::parse_segment_name(p))
            .collect();
        idxs.sort_unstable();
        Ok(idxs)
    }

    /// Total bytes across all journal segments — the number a bounded
    /// retention loop keeps O(window).
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Io`] on filesystem failure.
    pub fn journal_bytes(&self) -> Result<usize, DurabilityError> {
        let mut total = 0usize;
        for idx in self.journal_segments()? {
            let path = self.segment_path(idx);
            match self.fs.read(&path) {
                Ok(bytes) => total += bytes.len(),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(DurabilityError::io("read", &path, e)),
            }
        }
        Ok(total)
    }

    fn snapshot_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("snap-{seq:020}.{SNAPSHOT_EXT}"))
    }

    /// Parses `snap-<seq>.neatsnap` back into its sequence number.
    fn parse_snapshot_name(path: &Path) -> Option<u64> {
        let name = path.file_name()?.to_str()?;
        let stem = name
            .strip_prefix("snap-")?
            .strip_suffix(&format!(".{SNAPSHOT_EXT}"))?;
        stem.parse().ok()
    }

    /// Snapshot sequences currently on disk, ascending.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Io`] when the directory cannot be listed.
    pub fn snapshot_seqs(&self) -> Result<Vec<u64>, DurabilityError> {
        let mut seqs: Vec<u64> = self
            .fs
            .list(&self.dir)
            .map_err(|e| DurabilityError::io("list", &self.dir, e))?
            .iter()
            .filter(|p| !is_tmp(p))
            .filter_map(|p| Self::parse_snapshot_name(p))
            .collect();
        seqs.sort_unstable();
        Ok(seqs)
    }

    /// Atomically writes a snapshot covering everything up to and
    /// including sequence `seq`, then applies the retention policy:
    /// snapshots older than the newest [`RETAIN_SNAPSHOTS`] are removed
    /// and the journal is compacted to records with `seq` greater than
    /// the *previous* retained snapshot.
    ///
    /// The write is crash-safe at every step: the snapshot lands via
    /// temp + rename, compaction writes a fresh segment before removing
    /// old ones, and a crash between the two leaves only
    /// already-snapshotted records in the journal, which replay skips by
    /// sequence.
    ///
    /// # Errors
    ///
    /// [`DurabilityError`] only when the snapshot itself failed to land
    /// — the store is then no worse than before the call. Retention
    /// failures (e.g. disk full while compacting) are *not* errors: the
    /// snapshot is durable, the old segments keep the store loadable,
    /// and the failure is surfaced in [`RetentionReport::error`] for the
    /// caller to count and retry.
    pub fn write_snapshot(
        &self,
        seq: u64,
        payload: &[u8],
    ) -> Result<RetentionReport, DurabilityError> {
        let framed = encode_snapshot(self.version, payload);
        write_atomic(&self.fs, &self.snapshot_path(seq), &framed)?;
        Ok(self.apply_retention())
    }

    /// Removes surplus snapshots and compacts the journal. Failures
    /// here leave only *extra* data behind, never less, so they are
    /// reported in the returned [`RetentionReport`] instead of unwound.
    fn apply_retention(&self) -> RetentionReport {
        let mut report = RetentionReport::default();
        let seqs = match self.snapshot_seqs() {
            Ok(seqs) => seqs,
            Err(e) => {
                report.error = Some(e);
                return report;
            }
        };
        if seqs.len() > RETAIN_SNAPSHOTS {
            for &old in &seqs[..seqs.len() - RETAIN_SNAPSHOTS] {
                let path = self.snapshot_path(old);
                if let Err(e) = self.fs.remove_file(&path) {
                    report.error = Some(DurabilityError::io("remove_file", &path, e));
                    return report;
                }
                report.snapshots_removed += 1;
            }
        }
        // Compact the journal to records newer than the *oldest
        // retained* snapshot: even if the newest snapshot later turns
        // out to be corrupt, the previous one plus the journal still
        // covers everything.
        let retained = &seqs[seqs.len().saturating_sub(RETAIN_SNAPSHOTS)..];
        if let Some(&cutoff) = retained.first() {
            match self.compact_journal(cutoff) {
                Ok(outcome) => report.compaction = Some(outcome),
                Err(e) => report.error = Some(e),
            }
        }
        report
    }

    /// Compacts the journal: records with `seq > cutoff` are rewritten
    /// into one fresh segment (temp file, fsync, atomic rename), and
    /// only after that rename lands are the old segment files removed.
    ///
    /// Crash-safety, step by step:
    ///
    /// * before the rename — only a `.tmp` stray exists; the old
    ///   segments are untouched.
    /// * between the rename and the removes — live records exist twice,
    ///   byte-identical; [`Store::load`] resolves the duplicate in the
    ///   newer segment's favour and the next compaction removes the
    ///   leftovers (the layout is self-healing).
    /// * mid-removes — same as above for whichever old segments remain.
    ///
    /// The rewrite never targets the append path: the new segment index
    /// is one past the current maximum, so a concurrent crash cannot
    /// interleave appended records with compacted ones.
    ///
    /// Skipped (returning a default outcome) when there is a single
    /// segment with nothing to drop — compacting then would only churn
    /// segment indices.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Io`] on filesystem failure (the store stays
    /// loadable from the old segments), [`DurabilityError::Corrupt`] /
    /// [`DurabilityError::Malformed`] on unreadable records.
    pub fn compact_journal(&self, cutoff: u64) -> Result<CompactionOutcome, DurabilityError> {
        let segments = self.scan_segments()?;
        let mut live: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut dropped = 0usize;
        let mut total = 0usize;
        for (idx, scan) in &segments {
            for payload in &scan.records {
                total += 1;
                match record_seq(payload) {
                    Some(seq) if seq <= cutoff => dropped += 1,
                    Some(seq) => {
                        live.insert(seq, payload.clone());
                    }
                    None => {
                        return Err(DurabilityError::Malformed {
                            context: format!(
                                "journal record in {}",
                                self.segment_path(*idx).display()
                            ),
                            detail: format!(
                                "{} bytes is too short for a sequence tag",
                                payload.len()
                            ),
                        });
                    }
                }
            }
        }
        let duplicates = total - dropped - live.len();
        if segments.len() <= 1 && dropped == 0 && duplicates == 0 {
            return Ok(CompactionOutcome::default()); // nothing worth rewriting
        }

        let max_idx = segments.last().map(|(idx, _)| *idx).unwrap_or(0);
        let mut removed = 0usize;
        let new_segment = if live.is_empty() {
            None
        } else {
            let idx = max_idx + 1;
            let mut bytes = Vec::new();
            for payload in live.values() {
                bytes.extend_from_slice(&encode_record(payload));
            }
            write_atomic(&self.fs, &self.segment_path(idx), &bytes)?;
            Some(idx)
        };
        for (idx, _) in &segments {
            let path = self.segment_path(*idx);
            self.fs
                .remove_file(&path)
                .map_err(|e| DurabilityError::io("remove_file", &path, e))?;
            removed += 1;
        }
        Ok(CompactionOutcome {
            live_records: live.len(),
            dropped_records: dropped,
            segments_removed: removed,
            new_segment,
        })
    }

    /// Appends one journal record tagged with `seq` to the current
    /// (highest-numbered) segment, rolling to a fresh segment once the
    /// current one exceeds the roll threshold.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Io`] on filesystem failure.
    pub fn append_journal(&self, seq: u64, payload: &[u8]) -> Result<(), DurabilityError> {
        let mut tagged = Vec::with_capacity(8 + payload.len());
        tagged.extend_from_slice(&seq.to_le_bytes());
        tagged.extend_from_slice(payload);
        let path = self.append_target()?;
        append_record(&self.fs, &path, &tagged)
    }

    /// Picks the segment the next append goes to.
    fn append_target(&self) -> Result<PathBuf, DurabilityError> {
        let idxs = self.journal_segments()?;
        let current = idxs.last().copied().unwrap_or(0);
        let path = self.segment_path(current);
        let size = match self.fs.read(&path) {
            Ok(bytes) => bytes.len(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
            Err(e) => return Err(DurabilityError::io("read", &path, e)),
        };
        if size >= self.roll_bytes {
            Ok(self.segment_path(current + 1))
        } else {
            Ok(path)
        }
    }

    /// Reads every journal segment ascending, truncating torn tails on
    /// disk as they are found (same atomic-rewrite repair [`Store::load`]
    /// documents). Returns `(segment index, scan)` pairs with the
    /// tails already dropped from the scans.
    fn scan_segments(&self) -> Result<Vec<(u64, JournalScan)>, DurabilityError> {
        let mut segments = Vec::new();
        for idx in self.journal_segments()? {
            let path = self.segment_path(idx);
            let scan = read_journal(&self.fs, &path)?;
            if scan.torn_tail_bytes > 0 {
                let mut kept = Vec::new();
                for payload in &scan.records {
                    kept.extend_from_slice(&encode_record(payload));
                }
                write_atomic(&self.fs, &path, &kept)?;
            }
            segments.push((idx, scan));
        }
        Ok(segments)
    }

    /// Every journal record across all segments, deduplicated and
    /// sorted by sequence — *not* filtered against any snapshot floor.
    ///
    /// Cross-segment duplicates (a crash between compaction's rename
    /// and its removes) are resolved in favour of the newer segment.
    ///
    /// # Errors
    ///
    /// Same as [`Store::load`] for the journal half.
    pub fn journal_records(&self) -> Result<Vec<JournalEntry>, DurabilityError> {
        let segments = self.scan_segments()?;
        let merged = merge_segments(&segments, u64::MAX, |idx| self.segment_path(idx))?;
        Ok(merged
            .into_iter()
            .map(|(seq, (_, payload))| JournalEntry { seq, payload })
            .collect())
    }

    /// Recovers the newest loadable snapshot and the journal records
    /// that post-date it.
    ///
    /// Snapshots are tried newest-first; a corrupt candidate is recorded
    /// in [`Recovery::rejected_snapshots`] and the scan falls back to
    /// the next older one. Journal records are then filtered to
    /// `seq > snapshot.seq`, sorted, and checked for duplicates.
    ///
    /// A torn final record (crash mid-append) is dropped *and truncated
    /// away on disk*: leaving it in place would put the next append
    /// behind garbage bytes, turning an expected torn tail into
    /// unrecoverable interior corruption. The truncation is itself an
    /// atomic rewrite, so a crash during recovery at worst leaves the
    /// torn tail to be truncated again.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Io`] on unreadable directory/journal,
    /// [`DurabilityError::Corrupt`] on interior journal corruption or a
    /// duplicated sequence, [`DurabilityError::Malformed`] on a record
    /// too short to carry its sequence tag.
    pub fn load(&self) -> Result<Recovery, DurabilityError> {
        let mut recovery = Recovery::default();

        let mut seqs = self.snapshot_seqs()?;
        seqs.reverse(); // newest first
        for seq in seqs {
            let path = self.snapshot_path(seq);
            let bytes = match self.fs.read(&path) {
                Ok(b) => b,
                Err(e) => {
                    recovery
                        .rejected_snapshots
                        .push((path.display().to_string(), e.to_string()));
                    continue;
                }
            };
            match decode_snapshot(&path, self.version, &bytes) {
                Ok(payload) => {
                    recovery.snapshot = Some((seq, payload.to_vec()));
                    break;
                }
                Err(e) => {
                    recovery
                        .rejected_snapshots
                        .push((path.display().to_string(), e.to_string()));
                }
            }
        }

        let segments = self.scan_segments()?;
        recovery.torn_tail_bytes = segments.iter().map(|(_, s)| s.torn_tail_bytes).sum();
        let floor = recovery.snapshot.as_ref().map(|(s, _)| *s).unwrap_or(0);
        let merged = merge_segments(&segments, floor, |idx| self.segment_path(idx))?;
        recovery.journal = merged
            .into_iter()
            .filter(|(seq, _)| *seq > floor)
            .map(|(seq, (_, payload))| JournalEntry { seq, payload })
            .collect();
        Ok(recovery)
    }
}

/// Merges per-segment journal scans into a `seq -> (segment, payload)`
/// map, enforcing the duplicate rules:
///
/// * same segment, `seq > floor` — [`DurabilityError::Corrupt`]: a live
///   sequence was genuinely recorded twice.
/// * same segment, `seq <= floor` — tolerated, last wins: a crash
///   between snapshot and prune can legitimately re-append a covered
///   sequence, and replay skips it anyway.
/// * different segments, byte-identical payload — tolerated, the newer
///   segment wins: this is the signature of a crash between
///   compaction's rename and its removes.
/// * different segments, differing payloads — [`DurabilityError::Corrupt`]:
///   two histories disagree and neither can be trusted.
fn merge_segments(
    segments: &[(u64, JournalScan)],
    floor: u64,
    segment_path: impl Fn(u64) -> PathBuf,
) -> Result<BTreeMap<u64, (u64, Vec<u8>)>, DurabilityError> {
    let mut by_seq: BTreeMap<u64, (u64, Vec<u8>)> = BTreeMap::new();
    for (idx, scan) in segments {
        for payload in &scan.records {
            let Some(seq) = record_seq(payload) else {
                return Err(DurabilityError::Malformed {
                    context: format!("journal record in {}", segment_path(*idx).display()),
                    detail: format!("{} bytes is too short for a sequence tag", payload.len()),
                });
            };
            let body = payload[8..].to_vec();
            if let Some((prev_idx, prev_body)) = by_seq.get(&seq) {
                if prev_idx == idx {
                    if seq > floor {
                        return Err(DurabilityError::Corrupt {
                            path: segment_path(*idx).display().to_string(),
                            offset: 0,
                            detail: format!("sequence {seq} recorded twice"),
                        });
                    }
                } else if *prev_body != body {
                    return Err(DurabilityError::Corrupt {
                        path: segment_path(*idx).display().to_string(),
                        offset: 0,
                        detail: format!("sequence {seq} differs across journal segments"),
                    });
                }
            }
            by_seq.insert(seq, (*idx, body));
        }
    }
    Ok(by_seq)
}

/// Extracts the sequence tag [`Store::append_journal`] prefixed.
fn record_seq(payload: &[u8]) -> Option<u64> {
    let head: [u8; 8] = payload.get(..8)?.try_into().ok()?;
    Some(u64::from_le_bytes(head))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;

    const V: u32 = 1;

    fn store() -> Store<MemFs> {
        Store::open(MemFs::new(), "/ckpt", V).unwrap()
    }

    #[test]
    fn empty_store_recovers_to_nothing() {
        let s = store();
        let r = s.load().unwrap();
        assert!(r.snapshot.is_none());
        assert!(r.journal.is_empty());
        assert!(r.rejected_snapshots.is_empty());
    }

    #[test]
    fn snapshot_then_journal_recovery() {
        let s = store();
        s.append_journal(1, b"batch-1").unwrap();
        s.append_journal(2, b"batch-2").unwrap();
        s.write_snapshot(2, b"state@2").unwrap();
        s.append_journal(3, b"batch-3").unwrap();
        let r = s.load().unwrap();
        assert_eq!(r.snapshot, Some((2, b"state@2".to_vec())));
        assert_eq!(
            r.journal,
            vec![JournalEntry {
                seq: 3,
                payload: b"batch-3".to_vec()
            }]
        );
    }

    #[test]
    fn journal_records_covered_by_snapshot_are_filtered() {
        let s = store();
        s.append_journal(1, b"b1").unwrap();
        s.write_snapshot(1, b"state@1").unwrap();
        // Crash-interleaving: journal still carries seq 1 (prune may not
        // have run); replay must skip it.
        s.append_journal(1, b"b1-duplicate-from-old-journal")
            .unwrap();
        s.append_journal(2, b"b2").unwrap();
        let r = s.load().unwrap();
        assert_eq!(r.snapshot.as_ref().unwrap().0, 1);
        assert_eq!(r.journal.len(), 1);
        assert_eq!(r.journal[0].seq, 2);
    }

    #[test]
    fn retention_keeps_two_snapshots_and_prunes_journal() {
        let s = store();
        for seq in 1..=5u64 {
            s.append_journal(seq, format!("batch-{seq}").as_bytes())
                .unwrap();
            s.write_snapshot(seq, format!("state@{seq}").as_bytes())
                .unwrap();
        }
        assert_eq!(s.snapshot_seqs().unwrap(), vec![4, 5]);
        // Journal was pruned to seq > 4 (the previous retained
        // snapshot); a corrupt newest snapshot still recovers fully.
        let r = s.load().unwrap();
        assert_eq!(r.snapshot.as_ref().unwrap().0, 5);
        assert!(r.journal.is_empty());
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_previous() {
        let s = store();
        s.append_journal(1, b"b1").unwrap();
        s.write_snapshot(1, b"state@1").unwrap();
        s.append_journal(2, b"b2").unwrap();
        s.write_snapshot(2, b"state@2").unwrap();
        // Bit-rot the newest snapshot in place.
        let snap2 = s.dir().join(format!("snap-{:020}.{SNAPSHOT_EXT}", 2u64));
        let mut bytes = s.fs().read(&snap2).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        s.fs().write(&snap2, &bytes).unwrap();

        let r = s.load().unwrap();
        assert_eq!(r.snapshot, Some((1, b"state@1".to_vec())));
        assert_eq!(r.rejected_snapshots.len(), 1);
        assert!(r.rejected_snapshots[0].1.contains("CRC"));
        // The journal still holds batch 2 because pruning only goes up
        // to the previous snapshot.
        assert_eq!(r.journal.len(), 1);
        assert_eq!(r.journal[0].seq, 2);
    }

    #[test]
    fn stray_tmp_files_are_ignored() {
        let s = store();
        s.write_snapshot(1, b"state@1").unwrap();
        s.fs()
            .write(
                &s.dir().join("snap-00000000000000000002.neatsnap.tmp"),
                b"torn",
            )
            .unwrap();
        assert_eq!(s.snapshot_seqs().unwrap(), vec![1]);
        let r = s.load().unwrap();
        assert_eq!(r.snapshot.as_ref().unwrap().0, 1);
    }

    #[test]
    fn duplicate_live_sequences_are_corrupt() {
        let s = store();
        s.append_journal(3, b"x").unwrap();
        s.append_journal(3, b"y").unwrap();
        assert!(matches!(
            s.load().unwrap_err(),
            DurabilityError::Corrupt { .. }
        ));
    }

    #[test]
    fn torn_journal_tail_is_reported() {
        let s = store();
        s.append_journal(1, b"complete").unwrap();
        // Torn second append: only 5 bytes of the record made it.
        let rec = crate::journal::encode_record(b"\x02\0\0\0\0\0\0\0torn");
        s.fs().append(&s.journal_path(), &rec[..5]).unwrap();
        let r = s.load().unwrap();
        assert_eq!(r.journal.len(), 1);
        assert_eq!(r.torn_tail_bytes, 5);
    }

    #[test]
    fn appends_roll_to_new_segments_past_threshold() {
        let s = store().with_journal_roll_bytes(64);
        for seq in 1..=20u64 {
            s.append_journal(seq, format!("batch-{seq}").as_bytes())
                .unwrap();
        }
        let segments = s.journal_segments().unwrap();
        assert!(
            segments.len() > 1,
            "expected rolling, got segments {segments:?}"
        );
        let r = s.load().unwrap();
        assert_eq!(r.journal.len(), 20);
        assert_eq!(r.journal[0].seq, 1);
        assert_eq!(r.journal[19].seq, 20);
    }

    #[test]
    fn compaction_merges_segments_and_drops_covered_records() {
        let s = store().with_journal_roll_bytes(32);
        for seq in 1..=10u64 {
            s.append_journal(seq, format!("batch-{seq}").as_bytes())
                .unwrap();
        }
        assert!(s.journal_segments().unwrap().len() > 1);
        let outcome = s.compact_journal(6).unwrap();
        assert_eq!(outcome.live_records, 4);
        assert_eq!(outcome.dropped_records, 6);
        assert!(outcome.new_segment.is_some());
        // All old segments replaced by exactly one compacted segment.
        assert_eq!(
            s.journal_segments().unwrap(),
            vec![outcome.new_segment.unwrap()]
        );
        let r = s.load().unwrap();
        assert_eq!(
            r.journal.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
    }

    #[test]
    fn compaction_to_empty_removes_all_segments() {
        let s = store();
        s.append_journal(1, b"b1").unwrap();
        s.append_journal(2, b"b2").unwrap();
        let outcome = s.compact_journal(2).unwrap();
        assert_eq!(outcome.live_records, 0);
        assert_eq!(outcome.new_segment, None);
        assert!(s.journal_segments().unwrap().is_empty());
        assert!(s.load().unwrap().journal.is_empty());
    }

    #[test]
    fn single_clean_segment_is_not_rewritten() {
        let s = store();
        s.append_journal(5, b"b5").unwrap();
        let before = s.fs().read(&s.journal_path()).unwrap();
        let outcome = s.compact_journal(2).unwrap();
        assert_eq!(outcome, CompactionOutcome::default());
        assert_eq!(s.fs().read(&s.journal_path()).unwrap(), before);
    }

    #[test]
    fn crash_between_compaction_rename_and_prune_self_heals() {
        let s = store().with_journal_roll_bytes(32);
        for seq in 1..=6u64 {
            s.append_journal(seq, format!("batch-{seq}").as_bytes())
                .unwrap();
        }
        // Keep a copy of a pre-compaction segment holding *live*
        // records, compact, then put the copy back — exactly the
        // on-disk state a crash between the compacted segment's rename
        // and the old segments' removal leaves behind: the same live
        // sequences present byte-identically in two segments.
        let live_segment = s.segment_path(1);
        let old = s.fs().read(&live_segment).unwrap();
        let outcome = s.compact_journal(2).unwrap();
        s.fs().write(&live_segment, &old).unwrap();

        // Load resolves the byte-identical duplicates (newer segment
        // wins) instead of declaring corruption.
        let r = s.load().unwrap();
        assert_eq!(
            r.journal.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![3, 4, 5, 6]
        );
        // And the next compaction sweeps the leftover segment away.
        let outcome2 = s.compact_journal(2).unwrap();
        assert!(outcome2.segments_removed >= 2);
        assert_ne!(outcome2.new_segment, outcome.new_segment);
        let r = s.load().unwrap();
        assert_eq!(
            r.journal.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![3, 4, 5, 6]
        );
    }

    #[test]
    fn conflicting_payloads_across_segments_are_corrupt() {
        let s = store();
        s.append_journal(7, b"history-a").unwrap();
        // Forge a second segment claiming a different payload for the
        // same live sequence.
        let mut tagged = 7u64.to_le_bytes().to_vec();
        tagged.extend_from_slice(b"history-b");
        s.fs()
            .append(&s.segment_path(1), &crate::journal::encode_record(&tagged))
            .unwrap();
        let err = s.load().unwrap_err();
        assert!(
            matches!(&err, DurabilityError::Corrupt { detail, .. } if detail.contains("differs across")),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn journal_records_ignores_the_snapshot_floor() {
        let s = store().with_journal_roll_bytes(32);
        for seq in 1..=5u64 {
            s.append_journal(seq, format!("batch-{seq}").as_bytes())
                .unwrap();
        }
        // Two snapshots: compaction's cutoff is the *oldest retained*
        // (1), while load()'s replay floor is the newest (5).
        let report = s.write_snapshot(1, b"state@1").unwrap();
        assert!(report.error.is_none());
        let report = s.write_snapshot(5, b"state@5").unwrap();
        assert!(report.error.is_none());
        // load() filters to seq > 5 …
        assert!(s.load().unwrap().journal.is_empty());
        // … while journal_records() reports everything still on disk,
        // which is what the replay-dedup index must be derived from.
        let all = s.journal_records().unwrap();
        assert_eq!(
            all.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
    }

    #[test]
    fn torn_tail_is_truncated_so_later_appends_stay_readable() {
        let s = store();
        s.append_journal(1, b"complete").unwrap();
        let rec = crate::journal::encode_record(b"\x02\0\0\0\0\0\0\0torn");
        // Every possible torn-tail length, including ones that leave a
        // partial magic which the next append would otherwise complete
        // into a mismatching one.
        for cut in 1..rec.len() {
            let s2 = store();
            s2.fs()
                .write(&s2.journal_path(), &s.fs().read(&s.journal_path()).unwrap())
                .unwrap();
            s2.fs().append(&s2.journal_path(), &rec[..cut]).unwrap();
            let r = s2.load().unwrap();
            assert_eq!(r.torn_tail_bytes, cut, "cut at {cut}");
            // Recovery truncated the tail; a fresh append must now read
            // back cleanly instead of tripping over the garbage bytes.
            s2.append_journal(2, b"after-recovery").unwrap();
            let r = s2.load().unwrap();
            assert_eq!(r.torn_tail_bytes, 0, "cut at {cut}");
            assert_eq!(r.journal.len(), 2, "cut at {cut}");
            assert_eq!(r.journal[1].payload, b"after-recovery".to_vec());
        }
    }
}
