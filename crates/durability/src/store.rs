//! A checkpoint directory: numbered snapshots plus one batch journal.
//!
//! Layout inside the store directory:
//!
//! ```text
//! snap-00000000000000000042.neatsnap   snapshot up to sequence 42
//! snap-00000000000000000045.neatsnap   snapshot up to sequence 45
//! journal.neatlog                      seq-tagged records since snapshot 42
//! *.tmp                                in-flight atomic writes (ignored)
//! ```
//!
//! Invariants the store maintains:
//!
//! * Snapshots are written atomically (temp + rename), so a crash never
//!   leaves a half-written `snap-*.neatsnap` — at worst a `.tmp` stray.
//! * The two most recent snapshots are retained. The journal is pruned
//!   only up to the *previous* snapshot's sequence, so even if the
//!   latest snapshot is silently corrupted (bit rot), the previous one
//!   plus the journal still reconstructs the full state.
//! * Journal records carry their sequence number in the payload; replay
//!   filters on `seq > snapshot.seq`, which makes the
//!   snapshot-then-prune pair crash-safe in any interleaving.

use crate::error::DurabilityError;
use crate::fs::{is_tmp, write_atomic, Fs};
use crate::journal::{append_record, read_journal};
use crate::snapshot::{decode_snapshot, encode_snapshot};
use std::path::{Path, PathBuf};

/// File name of the journal inside a store directory.
pub const JOURNAL_FILE: &str = "journal.neatlog";

/// Extension of snapshot files.
pub const SNAPSHOT_EXT: &str = "neatsnap";

/// How many snapshots [`Store::write_snapshot`] retains.
pub const RETAIN_SNAPSHOTS: usize = 2;

/// A store handle: a directory accessed through an [`Fs`].
#[derive(Debug, Clone)]
pub struct Store<F: Fs> {
    fs: F,
    dir: PathBuf,
    version: u32,
}

/// One journal entry surfaced to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Sequence number the record was tagged with.
    pub seq: u64,
    /// The caller's payload.
    pub payload: Vec<u8>,
}

/// What [`Store::load`] recovered from disk.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// Newest loadable snapshot, as `(sequence, payload)`.
    pub snapshot: Option<(u64, Vec<u8>)>,
    /// Journal entries with `seq` greater than the snapshot's sequence
    /// (all entries when there is no snapshot), in sequence order.
    pub journal: Vec<JournalEntry>,
    /// Snapshot files that failed validation and were skipped, as
    /// `(file name, reason)` — newest first.
    pub rejected_snapshots: Vec<(String, String)>,
    /// Bytes dropped from an incomplete final journal record.
    pub torn_tail_bytes: usize,
}

impl<F: Fs> Store<F> {
    /// Opens (creating if necessary) a store directory.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Io`] when the directory cannot be created.
    pub fn open(fs: F, dir: impl Into<PathBuf>, version: u32) -> Result<Self, DurabilityError> {
        let dir = dir.into();
        fs.create_dir_all(&dir)
            .map_err(|e| DurabilityError::io("create_dir_all", &dir, e))?;
        Ok(Store { fs, dir, version })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The filesystem handle.
    pub fn fs(&self) -> &F {
        &self.fs
    }

    /// Path of the journal file.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join(JOURNAL_FILE)
    }

    fn snapshot_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("snap-{seq:020}.{SNAPSHOT_EXT}"))
    }

    /// Parses `snap-<seq>.neatsnap` back into its sequence number.
    fn parse_snapshot_name(path: &Path) -> Option<u64> {
        let name = path.file_name()?.to_str()?;
        let stem = name
            .strip_prefix("snap-")?
            .strip_suffix(&format!(".{SNAPSHOT_EXT}"))?;
        stem.parse().ok()
    }

    /// Snapshot sequences currently on disk, ascending.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Io`] when the directory cannot be listed.
    pub fn snapshot_seqs(&self) -> Result<Vec<u64>, DurabilityError> {
        let mut seqs: Vec<u64> = self
            .fs
            .list(&self.dir)
            .map_err(|e| DurabilityError::io("list", &self.dir, e))?
            .iter()
            .filter(|p| !is_tmp(p))
            .filter_map(|p| Self::parse_snapshot_name(p))
            .collect();
        seqs.sort_unstable();
        Ok(seqs)
    }

    /// Atomically writes a snapshot covering everything up to and
    /// including sequence `seq`, then applies the retention policy:
    /// snapshots older than the newest [`RETAIN_SNAPSHOTS`] are removed
    /// and the journal is pruned to records with `seq` greater than the
    /// *previous* retained snapshot.
    ///
    /// The write is crash-safe at every step: the snapshot lands via
    /// temp + rename, pruning rewrites the journal atomically, and a
    /// crash between the two leaves only already-snapshotted records in
    /// the journal, which replay skips by sequence.
    ///
    /// # Errors
    ///
    /// [`DurabilityError`] on I/O failure; the store is left no worse
    /// than before the call (the previous snapshot and journal remain).
    pub fn write_snapshot(&self, seq: u64, payload: &[u8]) -> Result<(), DurabilityError> {
        let framed = encode_snapshot(self.version, payload);
        write_atomic(&self.fs, &self.snapshot_path(seq), &framed)?;
        self.apply_retention()?;
        Ok(())
    }

    /// Removes surplus snapshots and prunes the journal. Failures here
    /// are reported but leave only *extra* data behind, never less.
    fn apply_retention(&self) -> Result<(), DurabilityError> {
        let seqs = self.snapshot_seqs()?;
        if seqs.len() > RETAIN_SNAPSHOTS {
            for &old in &seqs[..seqs.len() - RETAIN_SNAPSHOTS] {
                let path = self.snapshot_path(old);
                self.fs
                    .remove_file(&path)
                    .map_err(|e| DurabilityError::io("remove_file", &path, e))?;
            }
        }
        // Prune the journal to records newer than the *oldest retained*
        // snapshot: even if the newest snapshot later turns out to be
        // corrupt, the previous one plus the journal still covers
        // everything.
        let retained = &seqs[seqs.len().saturating_sub(RETAIN_SNAPSHOTS)..];
        if let Some(&cutoff) = retained.first() {
            self.prune_journal(cutoff)?;
        }
        Ok(())
    }

    /// Rewrites the journal keeping only records with `seq > cutoff`.
    fn prune_journal(&self, cutoff: u64) -> Result<(), DurabilityError> {
        let path = self.journal_path();
        let scan = read_journal(&self.fs, &path)?;
        let mut kept = Vec::new();
        let mut dropped = 0usize;
        for payload in &scan.records {
            match record_seq(payload) {
                Some(seq) if seq <= cutoff => dropped += 1,
                _ => kept.extend_from_slice(&crate::journal::encode_record(payload)),
            }
        }
        if dropped == 0 && scan.torn_tail_bytes == 0 {
            return Ok(()); // nothing to rewrite
        }
        write_atomic(&self.fs, &path, &kept)
    }

    /// Appends one journal record tagged with `seq`.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Io`] on filesystem failure.
    pub fn append_journal(&self, seq: u64, payload: &[u8]) -> Result<(), DurabilityError> {
        let mut tagged = Vec::with_capacity(8 + payload.len());
        tagged.extend_from_slice(&seq.to_le_bytes());
        tagged.extend_from_slice(payload);
        append_record(&self.fs, &self.journal_path(), &tagged)
    }

    /// Recovers the newest loadable snapshot and the journal records
    /// that post-date it.
    ///
    /// Snapshots are tried newest-first; a corrupt candidate is recorded
    /// in [`Recovery::rejected_snapshots`] and the scan falls back to
    /// the next older one. Journal records are then filtered to
    /// `seq > snapshot.seq`, sorted, and checked for duplicates.
    ///
    /// A torn final record (crash mid-append) is dropped *and truncated
    /// away on disk*: leaving it in place would put the next append
    /// behind garbage bytes, turning an expected torn tail into
    /// unrecoverable interior corruption. The truncation is itself an
    /// atomic rewrite, so a crash during recovery at worst leaves the
    /// torn tail to be truncated again.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Io`] on unreadable directory/journal,
    /// [`DurabilityError::Corrupt`] on interior journal corruption or a
    /// duplicated sequence, [`DurabilityError::Malformed`] on a record
    /// too short to carry its sequence tag.
    pub fn load(&self) -> Result<Recovery, DurabilityError> {
        let mut recovery = Recovery::default();

        let mut seqs = self.snapshot_seqs()?;
        seqs.reverse(); // newest first
        for seq in seqs {
            let path = self.snapshot_path(seq);
            let bytes = match self.fs.read(&path) {
                Ok(b) => b,
                Err(e) => {
                    recovery
                        .rejected_snapshots
                        .push((path.display().to_string(), e.to_string()));
                    continue;
                }
            };
            match decode_snapshot(&path, self.version, &bytes) {
                Ok(payload) => {
                    recovery.snapshot = Some((seq, payload.to_vec()));
                    break;
                }
                Err(e) => {
                    recovery
                        .rejected_snapshots
                        .push((path.display().to_string(), e.to_string()));
                }
            }
        }

        let journal_path = self.journal_path();
        let scan = read_journal(&self.fs, &journal_path)?;
        recovery.torn_tail_bytes = scan.torn_tail_bytes;
        if scan.torn_tail_bytes > 0 {
            let mut kept = Vec::new();
            for payload in &scan.records {
                kept.extend_from_slice(&crate::journal::encode_record(payload));
            }
            write_atomic(&self.fs, &journal_path, &kept)?;
        }
        let floor = recovery.snapshot.as_ref().map(|(s, _)| *s).unwrap_or(0);
        for payload in scan.records {
            if payload.len() < 8 {
                return Err(DurabilityError::Malformed {
                    context: "journal record".into(),
                    detail: format!("{} bytes is too short for a sequence tag", payload.len()),
                });
            }
            let seq = u64::from_le_bytes([
                payload[0], payload[1], payload[2], payload[3], payload[4], payload[5], payload[6],
                payload[7],
            ]);
            if seq > floor {
                recovery.journal.push(JournalEntry {
                    seq,
                    payload: payload[8..].to_vec(),
                });
            }
        }
        recovery.journal.sort_by_key(|e| e.seq);
        for pair in recovery.journal.windows(2) {
            if pair[0].seq == pair[1].seq {
                return Err(DurabilityError::Corrupt {
                    path: journal_path.display().to_string(),
                    offset: 0,
                    detail: format!("sequence {} recorded twice", pair[0].seq),
                });
            }
        }
        Ok(recovery)
    }
}

/// Extracts the sequence tag [`Store::append_journal`] prefixed.
fn record_seq(payload: &[u8]) -> Option<u64> {
    let head: [u8; 8] = payload.get(..8)?.try_into().ok()?;
    Some(u64::from_le_bytes(head))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;

    const V: u32 = 1;

    fn store() -> Store<MemFs> {
        Store::open(MemFs::new(), "/ckpt", V).unwrap()
    }

    #[test]
    fn empty_store_recovers_to_nothing() {
        let s = store();
        let r = s.load().unwrap();
        assert!(r.snapshot.is_none());
        assert!(r.journal.is_empty());
        assert!(r.rejected_snapshots.is_empty());
    }

    #[test]
    fn snapshot_then_journal_recovery() {
        let s = store();
        s.append_journal(1, b"batch-1").unwrap();
        s.append_journal(2, b"batch-2").unwrap();
        s.write_snapshot(2, b"state@2").unwrap();
        s.append_journal(3, b"batch-3").unwrap();
        let r = s.load().unwrap();
        assert_eq!(r.snapshot, Some((2, b"state@2".to_vec())));
        assert_eq!(
            r.journal,
            vec![JournalEntry {
                seq: 3,
                payload: b"batch-3".to_vec()
            }]
        );
    }

    #[test]
    fn journal_records_covered_by_snapshot_are_filtered() {
        let s = store();
        s.append_journal(1, b"b1").unwrap();
        s.write_snapshot(1, b"state@1").unwrap();
        // Crash-interleaving: journal still carries seq 1 (prune may not
        // have run); replay must skip it.
        s.append_journal(1, b"b1-duplicate-from-old-journal")
            .unwrap();
        s.append_journal(2, b"b2").unwrap();
        let r = s.load().unwrap();
        assert_eq!(r.snapshot.as_ref().unwrap().0, 1);
        assert_eq!(r.journal.len(), 1);
        assert_eq!(r.journal[0].seq, 2);
    }

    #[test]
    fn retention_keeps_two_snapshots_and_prunes_journal() {
        let s = store();
        for seq in 1..=5u64 {
            s.append_journal(seq, format!("batch-{seq}").as_bytes())
                .unwrap();
            s.write_snapshot(seq, format!("state@{seq}").as_bytes())
                .unwrap();
        }
        assert_eq!(s.snapshot_seqs().unwrap(), vec![4, 5]);
        // Journal was pruned to seq > 4 (the previous retained
        // snapshot); a corrupt newest snapshot still recovers fully.
        let r = s.load().unwrap();
        assert_eq!(r.snapshot.as_ref().unwrap().0, 5);
        assert!(r.journal.is_empty());
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_previous() {
        let s = store();
        s.append_journal(1, b"b1").unwrap();
        s.write_snapshot(1, b"state@1").unwrap();
        s.append_journal(2, b"b2").unwrap();
        s.write_snapshot(2, b"state@2").unwrap();
        // Bit-rot the newest snapshot in place.
        let snap2 = s.dir().join(format!("snap-{:020}.{SNAPSHOT_EXT}", 2u64));
        let mut bytes = s.fs().read(&snap2).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        s.fs().write(&snap2, &bytes).unwrap();

        let r = s.load().unwrap();
        assert_eq!(r.snapshot, Some((1, b"state@1".to_vec())));
        assert_eq!(r.rejected_snapshots.len(), 1);
        assert!(r.rejected_snapshots[0].1.contains("CRC"));
        // The journal still holds batch 2 because pruning only goes up
        // to the previous snapshot.
        assert_eq!(r.journal.len(), 1);
        assert_eq!(r.journal[0].seq, 2);
    }

    #[test]
    fn stray_tmp_files_are_ignored() {
        let s = store();
        s.write_snapshot(1, b"state@1").unwrap();
        s.fs()
            .write(
                &s.dir().join("snap-00000000000000000002.neatsnap.tmp"),
                b"torn",
            )
            .unwrap();
        assert_eq!(s.snapshot_seqs().unwrap(), vec![1]);
        let r = s.load().unwrap();
        assert_eq!(r.snapshot.as_ref().unwrap().0, 1);
    }

    #[test]
    fn duplicate_live_sequences_are_corrupt() {
        let s = store();
        s.append_journal(3, b"x").unwrap();
        s.append_journal(3, b"y").unwrap();
        assert!(matches!(
            s.load().unwrap_err(),
            DurabilityError::Corrupt { .. }
        ));
    }

    #[test]
    fn torn_journal_tail_is_reported() {
        let s = store();
        s.append_journal(1, b"complete").unwrap();
        // Torn second append: only 5 bytes of the record made it.
        let rec = crate::journal::encode_record(b"\x02\0\0\0\0\0\0\0torn");
        s.fs().append(&s.journal_path(), &rec[..5]).unwrap();
        let r = s.load().unwrap();
        assert_eq!(r.journal.len(), 1);
        assert_eq!(r.torn_tail_bytes, 5);
    }

    #[test]
    fn torn_tail_is_truncated_so_later_appends_stay_readable() {
        let s = store();
        s.append_journal(1, b"complete").unwrap();
        let rec = crate::journal::encode_record(b"\x02\0\0\0\0\0\0\0torn");
        // Every possible torn-tail length, including ones that leave a
        // partial magic which the next append would otherwise complete
        // into a mismatching one.
        for cut in 1..rec.len() {
            let s2 = store();
            s2.fs()
                .write(&s2.journal_path(), &s.fs().read(&s.journal_path()).unwrap())
                .unwrap();
            s2.fs().append(&s2.journal_path(), &rec[..cut]).unwrap();
            let r = s2.load().unwrap();
            assert_eq!(r.torn_tail_bytes, cut, "cut at {cut}");
            // Recovery truncated the tail; a fresh append must now read
            // back cleanly instead of tripping over the garbage bytes.
            s2.append_journal(2, b"after-recovery").unwrap();
            let r = s2.load().unwrap();
            assert_eq!(r.torn_tail_bytes, 0, "cut at {cut}");
            assert_eq!(r.journal.len(), 2, "cut at {cut}");
            assert_eq!(r.journal[1].payload, b"after-recovery".to_vec());
        }
    }
}
