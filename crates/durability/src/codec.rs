//! Deterministic little-endian binary codec with bounds-checked decoding.
//!
//! The encoder produces byte-identical output for equal input — no
//! pointers, no hash order, no platform-dependent widths (`usize` is
//! always written as `u64`). The decoder validates every length prefix
//! against the bytes actually remaining, so a corrupted count can never
//! trigger an oversized allocation or an out-of-bounds read; it fails
//! with [`DurabilityError::Truncated`] / [`DurabilityError::Malformed`]
//! instead.

use crate::error::DurabilityError;

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// FNV-1a 64-bit hash, used for configuration hashes and road-network
/// fingerprints (stable across runs and platforms).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only binary encoder.
#[derive(Debug, Default, Clone)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Creates an encoder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Enc {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Consumes the encoder, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (platform-independent width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` via its IEEE-754 bit pattern (NaN-safe,
    /// byte-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked binary decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Creates a decoder over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Dec { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// `true` when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless the input is fully consumed — trailing garbage after
    /// a structurally valid payload is corruption, not slack.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Malformed`] naming `context` when bytes remain.
    pub fn expect_exhausted(&self, context: &str) -> Result<(), DurabilityError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(DurabilityError::Malformed {
                context: context.to_string(),
                detail: format!("{} trailing bytes after payload", self.remaining()),
            })
        }
    }

    fn take(&mut self, n: usize, context: &str) -> Result<&'a [u8], DurabilityError> {
        if self.remaining() < n {
            return Err(DurabilityError::Truncated {
                context: context.to_string(),
                remaining: self.remaining(),
                needed: n,
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Truncated`] when the input ends early.
    pub fn u8(&mut self, context: &str) -> Result<u8, DurabilityError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Truncated`] when the input ends early.
    pub fn u32(&mut self, context: &str) -> Result<u32, DurabilityError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Truncated`] when the input ends early.
    pub fn u64(&mut self, context: &str) -> Result<u64, DurabilityError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` written by [`Enc::usize`].
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Truncated`] on early end;
    /// [`DurabilityError::Malformed`] when the value exceeds this
    /// platform's `usize`.
    pub fn usize(&mut self, context: &str) -> Result<usize, DurabilityError> {
        let v = self.u64(context)?;
        usize::try_from(v).map_err(|_| DurabilityError::Malformed {
            context: context.to_string(),
            detail: format!("value {v} exceeds platform usize"),
        })
    }

    /// Reads an `f64` from its bit pattern.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Truncated`] when the input ends early.
    pub fn f64(&mut self, context: &str) -> Result<f64, DurabilityError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads an element count that prefixes a sequence whose elements
    /// occupy at least `min_elem_size` bytes each. The count is validated
    /// against the remaining input, so corrupt counts fail here instead
    /// of provoking a huge allocation downstream.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Malformed`] when `count * min_elem_size`
    /// exceeds the remaining bytes.
    pub fn count(&mut self, context: &str, min_elem_size: usize) -> Result<usize, DurabilityError> {
        let n = self.usize(context)?;
        let budget = self.remaining() / min_elem_size.max(1);
        if n > budget {
            return Err(DurabilityError::Malformed {
                context: context.to_string(),
                detail: format!(
                    "count {n} cannot fit in {} remaining bytes (≥{} each)",
                    self.remaining(),
                    min_elem_size
                ),
            });
        }
        Ok(n)
    }

    /// Reads a length-prefixed byte string written by [`Enc::bytes`].
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Truncated`] when the declared length exceeds
    /// the remaining input.
    pub fn bytes(&mut self, context: &str) -> Result<&'a [u8], DurabilityError> {
        let len = self.usize(context)?;
        if len > self.remaining() {
            return Err(DurabilityError::Truncated {
                context: context.to_string(),
                remaining: self.remaining(),
                needed: len,
            });
        }
        self.take(len, context)
    }

    /// Reads a length-prefixed UTF-8 string written by [`Enc::str`].
    ///
    /// # Errors
    ///
    /// As [`Dec::bytes`], plus [`DurabilityError::Malformed`] on invalid
    /// UTF-8.
    pub fn str(&mut self, context: &str) -> Result<&'a str, DurabilityError> {
        let raw = self.bytes(context)?;
        std::str::from_utf8(raw).map_err(|e| DurabilityError::Malformed {
            context: context.to_string(),
            detail: format!("invalid utf-8: {e}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard zlib/IEEE test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_byte_change() {
        let a = b"hello world".to_vec();
        let base = crc32(&a);
        for i in 0..a.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut b = a.clone();
                b[i] ^= flip;
                assert_ne!(crc32(&b), base, "flip {flip:02x} at {i} undetected");
            }
        }
    }

    #[test]
    fn fnv64_is_stable_and_input_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
        assert_eq!(fnv64(b"neat"), fnv64(b"neat"));
    }

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.usize(12345);
        e.f64(-0.0);
        e.f64(f64::INFINITY);
        e.f64(f64::NAN);
        e.bytes(b"raw");
        e.str("text");
        let bytes = e.into_bytes();

        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8("a").unwrap(), 7);
        assert_eq!(d.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(d.usize("d").unwrap(), 12345);
        assert_eq!(d.f64("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.f64("f").unwrap(), f64::INFINITY);
        assert!(d.f64("g").unwrap().is_nan());
        assert_eq!(d.bytes("h").unwrap(), b"raw");
        assert_eq!(d.str("i").unwrap(), "text");
        assert!(d.is_exhausted());
        assert!(d.expect_exhausted("top").is_ok());
    }

    #[test]
    fn truncated_reads_fail_cleanly() {
        let mut e = Enc::new();
        e.u64(1);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes[..5]);
        let err = d.u64("field").unwrap_err();
        assert!(matches!(err, DurabilityError::Truncated { .. }), "{err}");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocation() {
        // A corrupt length prefix claiming ~2^63 bytes must fail fast.
        let mut e = Enc::new();
        e.u64(u64::MAX / 2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(d.bytes("blob").is_err());
        let mut d = Dec::new(&bytes);
        assert!(d.count("elems", 4).is_err());
    }

    #[test]
    fn count_within_budget_passes() {
        let mut e = Enc::new();
        e.usize(3);
        e.u32(1);
        e.u32(2);
        e.u32(3);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.count("elems", 4).unwrap(), 3);
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut e = Enc::new();
        e.u8(1);
        e.u8(2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        d.u8("x").unwrap();
        let err = d.expect_exhausted("payload").unwrap_err();
        assert!(matches!(err, DurabilityError::Malformed { .. }));
    }

    #[test]
    fn invalid_utf8_is_malformed() {
        let mut e = Enc::new();
        e.bytes(&[0xFF, 0xFE]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert!(matches!(
            d.str("name").unwrap_err(),
            DurabilityError::Malformed { .. }
        ));
    }
}
