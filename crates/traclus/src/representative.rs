//! Representative trajectory of a line-segment cluster (TraClus
//! Section 4.3): rotate the axes to the cluster's average direction and
//! sweep a vertical line across the segment endpoints, averaging the
//! crossing segments' y-coordinates wherever at least `MinLns` segments
//! overlap.

use crate::TSeg;
use neat_rnet::Point;

/// Computes the representative trajectory of `segments`.
///
/// Returns the polyline in original coordinates; fewer than two sweep
/// positions with `min_lns` support yield an empty polyline.
pub fn representative_trajectory(segments: &[TSeg], min_lns: usize, gamma: f64) -> Vec<Point> {
    if segments.is_empty() {
        return Vec::new();
    }
    // Average direction vector (flip segments pointing against the
    // majority so opposite travel directions reinforce one axis).
    let mut main = Point::new(0.0, 0.0);
    for s in segments {
        let v = s.end - s.start;
        if v.dot(main) < 0.0 {
            main = main - v;
        } else {
            main = main + v;
        }
    }
    let norm = main.norm();
    if norm <= f64::EPSILON {
        return Vec::new();
    }
    let (cos, sin) = (main.x / norm, main.y / norm);
    let rotate = |p: Point| Point::new(p.x * cos + p.y * sin, -p.x * sin + p.y * cos);
    let unrotate = |p: Point| Point::new(p.x * cos - p.y * sin, p.x * sin + p.y * cos);

    // Rotated segments with start.x ≤ end.x.
    let rotated: Vec<(Point, Point)> = segments
        .iter()
        .map(|s| {
            let a = rotate(s.start);
            let b = rotate(s.end);
            if a.x <= b.x {
                (a, b)
            } else {
                (b, a)
            }
        })
        .collect();

    // Sweep positions: sorted endpoint x-coordinates.
    let mut xs: Vec<f64> = rotated.iter().flat_map(|(a, b)| [a.x, b.x]).collect();
    xs.sort_by(f64::total_cmp);

    let mut out: Vec<Point> = Vec::new();
    let mut last_x = f64::NEG_INFINITY;
    for &x in &xs {
        if x - last_x < gamma && !out.is_empty() {
            continue; // sweep granularity
        }
        // Segments crossing the sweep line.
        let crossing: Vec<f64> = rotated
            .iter()
            .filter(|(a, b)| a.x <= x && x <= b.x)
            .map(|(a, b)| {
                if (b.x - a.x).abs() <= f64::EPSILON {
                    (a.y + b.y) / 2.0
                } else {
                    a.y + (b.y - a.y) * (x - a.x) / (b.x - a.x)
                }
            })
            .collect();
        if crossing.len() >= min_lns {
            let avg_y = crossing.iter().sum::<f64>() / crossing.len() as f64;
            out.push(unrotate(Point::new(x, avg_y)));
            last_x = x;
        }
    }
    if out.len() < 2 {
        Vec::new()
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_traj::TrajectoryId;

    fn seg(x0: f64, y0: f64, x1: f64, y1: f64) -> TSeg {
        TSeg {
            trajectory: TrajectoryId::new(0),
            start: Point::new(x0, y0),
            end: Point::new(x1, y1),
        }
    }

    #[test]
    fn horizontal_bundle_representative_runs_through_middle() {
        let segs = vec![
            seg(0.0, 0.0, 100.0, 0.0),
            seg(0.0, 10.0, 100.0, 10.0),
            seg(0.0, 20.0, 100.0, 20.0),
        ];
        let rep = representative_trajectory(&segs, 3, 10.0);
        assert!(rep.len() >= 2);
        for p in &rep {
            assert!((p.y - 10.0).abs() < 1e-6, "representative off-centre: {p}");
        }
        // Spans roughly the bundle extent.
        let len: f64 = rep.windows(2).map(|w| w[0].distance(w[1])).sum();
        assert!(len > 80.0);
    }

    #[test]
    fn opposite_directions_still_form_representative() {
        let segs = vec![
            seg(0.0, 0.0, 100.0, 0.0),
            seg(100.0, 4.0, 0.0, 4.0), // reversed travel direction
            seg(0.0, 8.0, 100.0, 8.0),
        ];
        let rep = representative_trajectory(&segs, 3, 10.0);
        assert!(rep.len() >= 2);
    }

    #[test]
    fn insufficient_support_gives_empty() {
        let segs = vec![seg(0.0, 0.0, 100.0, 0.0)];
        assert!(representative_trajectory(&segs, 3, 10.0).is_empty());
        assert!(representative_trajectory(&[], 1, 10.0).is_empty());
    }

    #[test]
    fn diagonal_bundle_follows_direction() {
        let segs: Vec<TSeg> = (0..4)
            .map(|i| {
                let off = i as f64 * 3.0;
                seg(0.0 + off, 0.0 - off, 100.0 + off, 100.0 - off)
            })
            .collect();
        let rep = representative_trajectory(&segs, 3, 10.0);
        assert!(rep.len() >= 2);
        let dir = *rep.last().unwrap() - rep[0];
        // Direction ≈ (1, 1)/√2.
        let cos = dir.dot(Point::new(1.0, 1.0)) / (dir.norm() * 2f64.sqrt());
        assert!(cos > 0.99, "representative direction off: {dir}");
    }

    #[test]
    fn partial_overlap_limits_representative_extent() {
        // Three segments overlapping only in x ∈ [40, 60].
        let segs = vec![
            seg(0.0, 0.0, 60.0, 0.0),
            seg(40.0, 5.0, 100.0, 5.0),
            seg(20.0, 10.0, 80.0, 10.0),
        ];
        let rep = representative_trajectory(&segs, 3, 5.0);
        for p in &rep {
            assert!(p.x >= 35.0 && p.x <= 65.0, "point outside overlap: {p}");
        }
    }

    #[test]
    fn degenerate_zero_direction_yields_empty() {
        // Two segments cancelling out exactly; flipping makes them
        // reinforce, so force true degeneracy with zero-length segments.
        let segs = vec![seg(5.0, 5.0, 5.0, 5.0), seg(9.0, 9.0, 9.0, 9.0)];
        assert!(representative_trajectory(&segs, 1, 1.0).is_empty());
    }
}
