//! OPTICS (Ankerst et al., SIGMOD'99) over a precomputed distance matrix.
//!
//! The NEAT paper's related work singles out Trajectory-OPTICS \[24\] as
//! the representative *whole-trajectory* density clustering method; this
//! module provides the generic OPTICS ordering and cluster extraction
//! that [`crate::whole`] builds on.

/// One entry of the OPTICS ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderEntry {
    /// Index of the object in the input set.
    pub index: usize,
    /// Reachability distance when the object was reached
    /// (`f64::INFINITY` for the first object of each component).
    pub reachability: f64,
}

/// A symmetric pairwise distance matrix.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds a matrix by evaluating `dist` for every unordered pair.
    ///
    /// `dist` may return `f64::INFINITY` for incomparable objects.
    pub fn build(n: usize, mut dist: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = dist(i, j);
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        DistanceMatrix { n, data }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between objects `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }
}

/// Computes the OPTICS cluster ordering with parameters `eps` (generating
/// distance) and `min_pts`.
///
/// Deterministic: unprocessed objects are visited in index order and ties
/// in the seed queue break on index.
pub fn optics_order(matrix: &DistanceMatrix, eps: f64, min_pts: usize) -> Vec<OrderEntry> {
    let n = matrix.len();
    let mut processed = vec![false; n];
    let mut reachability = vec![f64::INFINITY; n];
    let mut order = Vec::with_capacity(n);

    let neighbours = |i: usize| -> Vec<usize> {
        (0..n)
            .filter(|&j| j != i && matrix.get(i, j) <= eps)
            .collect()
    };
    let core_distance = |i: usize, neigh: &[usize]| -> Option<f64> {
        // Core distance: distance to the (min_pts)-th nearest object,
        // counting the object itself as one of min_pts.
        if neigh.len() + 1 < min_pts {
            return None;
        }
        let mut ds: Vec<f64> = neigh.iter().map(|&j| matrix.get(i, j)).collect();
        ds.sort_by(f64::total_cmp);
        Some(ds[min_pts.saturating_sub(2)])
    };

    for start in 0..n {
        if processed[start] {
            continue;
        }
        // Expand one density-connected component from `start`.
        let mut seeds: Vec<usize> = vec![start];
        while let Some(current) = pop_min(&mut seeds, &reachability, &processed) {
            processed[current] = true;
            order.push(OrderEntry {
                index: current,
                reachability: reachability[current],
            });
            let neigh = neighbours(current);
            if let Some(core) = core_distance(current, &neigh) {
                for &j in &neigh {
                    if processed[j] {
                        continue;
                    }
                    let new_reach = core.max(matrix.get(current, j));
                    if new_reach < reachability[j] {
                        reachability[j] = new_reach;
                    }
                    if !seeds.contains(&j) {
                        seeds.push(j);
                    }
                }
            }
        }
    }
    order
}

/// Pops the unprocessed seed with the smallest reachability (ties by
/// index). Linear scan — the seed set stays small relative to `n²`
/// distance evaluations, which dominate OPTICS anyway.
fn pop_min(seeds: &mut Vec<usize>, reachability: &[f64], processed: &[bool]) -> Option<usize> {
    seeds.retain(|&s| !processed[s]);
    let (pos, _) = seeds.iter().enumerate().min_by(|(_, &a), (_, &b)| {
        reachability[a]
            .total_cmp(&reachability[b])
            .then_with(|| a.cmp(&b))
    })?;
    Some(seeds.swap_remove(pos))
}

/// Extracts flat clusters from an OPTICS ordering with threshold
/// `eps_prime`: a reachability jump above the threshold starts a new
/// cluster; singleton "clusters" are reported as noise.
pub fn extract_clusters(order: &[OrderEntry], eps_prime: f64) -> (Vec<Vec<usize>>, usize) {
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = Vec::new();
    for e in order {
        if e.reachability > eps_prime {
            if current.len() > 1 {
                clusters.push(std::mem::take(&mut current));
            } else {
                current.clear();
            }
        }
        current.push(e.index);
    }
    if current.len() > 1 {
        clusters.push(current);
    } else {
        current.clear();
    }
    let clustered: usize = clusters.iter().map(Vec::len).sum();
    let noise = order.len() - clustered;
    (clusters, noise)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-D points, Euclidean distance.
    fn matrix_of(points: &[f64]) -> DistanceMatrix {
        DistanceMatrix::build(points.len(), |i, j| (points[i] - points[j]).abs())
    }

    #[test]
    fn ordering_covers_every_object_once() {
        let m = matrix_of(&[0.0, 1.0, 2.0, 50.0, 51.0]);
        let order = optics_order(&m, 5.0, 2);
        assert_eq!(order.len(), 5);
        let mut idx: Vec<usize> = order.iter().map(|e| e.index).collect();
        idx.sort();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn two_groups_extracted() {
        let m = matrix_of(&[0.0, 1.0, 2.0, 50.0, 51.0, 52.0]);
        let order = optics_order(&m, 5.0, 2);
        let (clusters, noise) = extract_clusters(&order, 5.0);
        assert_eq!(clusters.len(), 2);
        assert_eq!(noise, 0);
        let mut sizes: Vec<usize> = clusters.iter().map(Vec::len).collect();
        sizes.sort();
        assert_eq!(sizes, vec![3, 3]);
    }

    #[test]
    fn isolated_point_is_noise() {
        let m = matrix_of(&[0.0, 1.0, 2.0, 500.0]);
        let order = optics_order(&m, 5.0, 2);
        let (clusters, noise) = extract_clusters(&order, 5.0);
        assert_eq!(clusters.len(), 1);
        assert_eq!(noise, 1);
    }

    #[test]
    fn reachability_is_small_within_dense_runs() {
        let m = matrix_of(&[0.0, 1.0, 2.0, 3.0]);
        let order = optics_order(&m, 10.0, 2);
        // After the first (infinite) entry, reachabilities are ~1.
        for e in &order[1..] {
            assert!(e.reachability <= 2.0, "reachability {e:?}");
        }
    }

    #[test]
    fn min_pts_above_density_marks_everything_unreachable() {
        let m = matrix_of(&[0.0, 100.0, 200.0]);
        let order = optics_order(&m, 5.0, 2);
        // No neighbours within eps: every entry keeps infinite
        // reachability and extraction yields pure noise.
        assert!(order.iter().all(|e| e.reachability.is_infinite()));
        let (clusters, noise) = extract_clusters(&order, 5.0);
        assert!(clusters.is_empty());
        assert_eq!(noise, 3);
    }

    #[test]
    fn deterministic_ordering() {
        let pts = [3.0, 1.0, 2.0, 10.0, 11.0, 12.5];
        let a = optics_order(&matrix_of(&pts), 4.0, 2);
        let b = optics_order(&matrix_of(&pts), 4.0, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input() {
        let m = DistanceMatrix::build(0, |_, _| 0.0);
        assert!(m.is_empty());
        assert!(optics_order(&m, 1.0, 2).is_empty());
    }
}
