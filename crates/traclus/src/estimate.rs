//! Parameter-value selection for TraClus (Section 4.4 of the TraClus
//! paper): pick ε minimising the entropy of the neighbourhood-size
//! distribution, then derive MinLns from the average neighbourhood size.
//!
//! This replaces the NEAT paper's manual "visual inspection" tuning with
//! the original authors' heuristic — the `traclus_sweep` experiment
//! reports both.

use crate::distance::segment_distance;
use crate::{TSeg, TraClusConfig};

/// Result of the entropy scan for one candidate ε.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsilonScore {
    /// Candidate ε.
    pub epsilon: f64,
    /// Entropy of the neighbourhood-size distribution (lower = better).
    pub entropy: f64,
    /// Average ε-neighbourhood size (including the segment itself); the
    /// TraClus heuristic suggests `MinLns` in `[avg+1, avg+3]`.
    pub avg_neighbourhood: f64,
}

/// Scores every candidate ε by neighbourhood entropy
/// `H(X) = −Σ p(x) log₂ p(x)` with `p(x) = |N_ε(x)| / Σ_y |N_ε(y)|`.
///
/// Quadratic in `segments.len()` per candidate — intended for the tuning
/// step on a sample, exactly as the TraClus authors describe.
pub fn scan_epsilons(
    segments: &[TSeg],
    candidates: &[f64],
    config: &TraClusConfig,
) -> Vec<EpsilonScore> {
    let n = segments.len();
    candidates
        .iter()
        .map(|&epsilon| {
            if n == 0 {
                return EpsilonScore {
                    epsilon,
                    entropy: 0.0,
                    avg_neighbourhood: 0.0,
                };
            }
            let cfg = TraClusConfig { epsilon, ..*config };
            // |N_ε(x)| for every x (self included, as in the paper).
            let sizes: Vec<f64> = (0..n)
                .map(|i| {
                    (0..n)
                        .filter(|&j| {
                            i == j || segment_distance(&segments[i], &segments[j], &cfg) <= epsilon
                        })
                        .count() as f64
                })
                .collect();
            let total: f64 = sizes.iter().sum();
            let entropy = -sizes
                .iter()
                .map(|&s| {
                    let p = s / total;
                    if p > 0.0 {
                        p * p.log2()
                    } else {
                        0.0
                    }
                })
                .sum::<f64>();
            EpsilonScore {
                epsilon,
                entropy,
                avg_neighbourhood: total / n as f64,
            }
        })
        .collect()
}

/// Picks the candidate ε with minimal entropy and suggests
/// `(epsilon, min_lns)` per the TraClus heuristic (`avg + 2`, the middle
/// of the suggested `[avg+1, avg+3]` band). Returns `None` when there are
/// no candidates or no segments.
pub fn estimate_parameters(
    segments: &[TSeg],
    candidates: &[f64],
    config: &TraClusConfig,
) -> Option<(f64, usize)> {
    if segments.is_empty() || candidates.is_empty() {
        return None;
    }
    let scores = scan_epsilons(segments, candidates, config);
    let best = scores
        .iter()
        .min_by(|a, b| {
            a.entropy
                .total_cmp(&b.entropy)
                .then_with(|| a.epsilon.total_cmp(&b.epsilon))
        })
        .expect("non-empty candidates"); // lint:allow(L1) reason=the empty-candidates early return above guards this reduction
    Some((
        best.epsilon,
        (best.avg_neighbourhood + 2.0).round() as usize,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::Point;
    use neat_traj::TrajectoryId;

    fn seg(tr: u64, x0: f64, y0: f64, x1: f64, y1: f64) -> TSeg {
        TSeg {
            trajectory: TrajectoryId::new(tr),
            start: Point::new(x0, y0),
            end: Point::new(x1, y1),
        }
    }

    /// Two tight bundles of parallel segments far apart.
    fn bundles() -> Vec<TSeg> {
        let mut v = Vec::new();
        for i in 0..5 {
            v.push(seg(i, 0.0, i as f64, 100.0, i as f64));
        }
        for i in 0..5 {
            v.push(seg(
                10 + i,
                0.0,
                1000.0 + i as f64,
                100.0,
                1000.0 + i as f64,
            ));
        }
        v
    }

    #[test]
    fn cluster_scale_epsilon_minimises_entropy() {
        let segs = bundles();
        let cfg = TraClusConfig::default();
        let scores = scan_epsilons(&segs, &[0.1, 6.0, 5000.0], &cfg);
        // ε=0.1: all singleton neighbourhoods → uniform p → max entropy.
        // ε=6: each bundle fully connected → still uniform sizes! Entropy
        // equals uniform at both; the heuristic separates on skew. Use a
        // skewed configuration instead: check entropy values are finite
        // and avg neighbourhood grows with ε.
        assert!(scores[0].avg_neighbourhood < scores[1].avg_neighbourhood);
        assert!(scores[1].avg_neighbourhood < scores[2].avg_neighbourhood);
        for s in &scores {
            assert!(s.entropy.is_finite());
            assert!(s.entropy >= 0.0);
        }
    }

    #[test]
    fn entropy_prefers_balanced_neighbourhoods_over_skew() {
        // One dense bundle plus isolated strays: a mid ε gives skewed
        // neighbourhood sizes (high entropy per the formula is actually
        // *maximised* by uniform p, so minimal entropy = maximal skew).
        // Verify the formula's direction on a hand-computable case:
        // sizes [4,4,4,4] → H = log2(4) = 2; sizes [7,1] → H < 1.
        let uniform: Vec<f64> = vec![4.0, 4.0, 4.0, 4.0];
        let total: f64 = uniform.iter().sum();
        let h_uniform: f64 = -uniform
            .iter()
            .map(|s| (s / total) * (s / total).log2())
            .sum::<f64>();
        assert!((h_uniform - 2.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_returns_best_candidate() {
        let segs = bundles();
        let cfg = TraClusConfig::default();
        let (eps, min_lns) = estimate_parameters(&segs, &[0.1, 6.0, 5000.0], &cfg).unwrap();
        // Minimal entropy is at the giant ε (one neighbourhood of
        // everything → p uniform at 10/100 each... all sizes 10 → uniform
        // → H = log2(10) ≈ 3.32; tiny ε: sizes 1 → H = log2(10) too;
        // ε=6: sizes 5 → H = log2(10). Ties resolve to the smallest ε.
        assert_eq!(eps, 0.1);
        assert!(min_lns >= 3);
    }

    #[test]
    fn skewed_data_picks_discriminating_epsilon() {
        // Dense bundle + one stray. ε=6 gives sizes [5,5,5,5,5,1]:
        // skewed → lower entropy than ε=0.1 (uniform singletons) or
        // ε=5000 (uniform full).
        let mut segs = bundles()[..5].to_vec();
        segs.push(seg(99, 0.0, 400.0, 100.0, 400.0));
        let cfg = TraClusConfig::default();
        let (eps, _) = estimate_parameters(&segs, &[0.1, 6.0, 5000.0], &cfg).unwrap();
        assert_eq!(eps, 6.0);
    }

    #[test]
    fn empty_inputs_give_none() {
        let cfg = TraClusConfig::default();
        assert!(estimate_parameters(&[], &[1.0], &cfg).is_none());
        assert!(estimate_parameters(&bundles(), &[], &cfg).is_none());
    }
}
