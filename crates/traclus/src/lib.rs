//! TraClus — the partition-and-group baseline (Lee et al., SIGMOD 2007).
//!
//! The NEAT paper evaluates against TraClus as the representative
//! density-based partial trajectory clustering algorithm. This crate
//! re-implements it from the original paper's formulas:
//!
//! * **partitioning** ([`partition`]): each trajectory is reduced to its
//!   *characteristic points* by the approximate MDL optimisation, then cut
//!   into line segments;
//! * **distance** ([`distance`]): the three-component line-segment
//!   distance (perpendicular ⊥, parallel ∥ and angular θ);
//! * **grouping** ([`group`]): DBSCAN over line segments with parameters
//!   `ε` and `MinLns`;
//! * **representatives** ([`representative`]): the average-direction sweep
//!   that produces each cluster's representative trajectory;
//! * **hybrid variant** ([`hybrid`]): the NEAT paper's §IV-C experiment —
//!   TraClus's grouping phase run over NEAT base clusters with the
//!   modified Hausdorff *network* distance;
//! * **whole-trajectory OPTICS** ([`optics`], [`whole`]): the
//!   Trajectory-OPTICS method (reference \[24\] of the NEAT paper) that
//!   clusters trajectories as a whole by time-averaged Euclidean
//!   distance — included to demonstrate the weakness that motivates
//!   partial clustering.
//!
//! ```
//! use neat_traclus::{TraClus, TraClusConfig};
//! use neat_traj::{Dataset, Trajectory, TrajectoryId};
//! use neat_rnet::{RoadLocation, SegmentId, Point};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut data = Dataset::new("demo");
//! for id in 0..5 {
//!     let pts = (0..10).map(|i| RoadLocation::new(
//!         SegmentId::new(0),
//!         Point::new(i as f64 * 10.0, id as f64 * 0.5),
//!         i as f64,
//!     )).collect();
//!     data.push(Trajectory::new(TrajectoryId::new(id), pts)?);
//! }
//! let result = TraClus::new(TraClusConfig { epsilon: 10.0, min_lns: 3, ..Default::default() })
//!     .run(&data);
//! assert_eq!(result.clusters.len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod distance;
pub mod estimate;
pub mod group;
pub mod hybrid;
pub mod optics;
pub mod partition;
pub mod representative;
pub mod whole;

use neat_traj::{Dataset, TrajectoryId};
use serde::{Deserialize, Serialize};

pub use estimate::{estimate_parameters, scan_epsilons, EpsilonScore};
pub use hybrid::{HybridConfig, HybridResult};
pub use whole::{cluster_whole_trajectories, WholeConfig, WholeResult};

/// A directed line segment extracted from a partitioned trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TSeg {
    /// Trajectory the segment came from.
    pub trajectory: TrajectoryId,
    /// Segment start point.
    pub start: neat_rnet::Point,
    /// Segment end point.
    pub end: neat_rnet::Point,
}

impl TSeg {
    /// Euclidean length of the segment.
    pub fn length(&self) -> f64 {
        self.start.distance(self.end)
    }
}

/// TraClus parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraClusConfig {
    /// DBSCAN ε over the line-segment distance.
    pub epsilon: f64,
    /// DBSCAN MinLns (minimum ε-neighbourhood size of a core segment).
    pub min_lns: usize,
    /// Weight of the perpendicular distance component.
    pub w_perpendicular: f64,
    /// Weight of the parallel distance component.
    pub w_parallel: f64,
    /// Weight of the angular distance component.
    pub w_angular: f64,
    /// Sweep granularity γ (metres) of the representative-trajectory
    /// algorithm.
    pub gamma: f64,
    /// Minimum number of distinct trajectories a cluster must contain
    /// (the TraClus paper's trajectory-cardinality check, §4.2); clusters
    /// below it are discarded. `0` disables the check.
    pub min_trajectories: usize,
}

impl Default for TraClusConfig {
    fn default() -> Self {
        TraClusConfig {
            epsilon: 10.0,
            min_lns: 3,
            w_perpendicular: 1.0,
            w_parallel: 1.0,
            w_angular: 1.0,
            gamma: 20.0,
            min_trajectories: 0,
        }
    }
}

/// One density-based cluster of line segments.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentCluster {
    /// Member line segments.
    pub segments: Vec<TSeg>,
    /// Representative trajectory (polyline), possibly empty when the sweep
    /// finds fewer than two positions with enough support.
    pub representative: Vec<neat_rnet::Point>,
}

impl SegmentCluster {
    /// Number of distinct trajectories contributing segments.
    pub fn trajectory_cardinality(&self) -> usize {
        let mut ids: Vec<TrajectoryId> = self.segments.iter().map(|s| s.trajectory).collect();
        ids.sort();
        ids.dedup();
        ids.len()
    }

    /// Polyline length of the representative trajectory in metres.
    pub fn representative_length(&self) -> f64 {
        self.representative
            .windows(2)
            .map(|w| w[0].distance(w[1]))
            .sum()
    }
}

/// Result of a TraClus run.
#[derive(Debug, Clone, PartialEq)]
pub struct TraClusResult {
    /// Discovered clusters.
    pub clusters: Vec<SegmentCluster>,
    /// Number of line segments classified as noise.
    pub noise: usize,
    /// Total line segments produced by the partitioning phase.
    pub total_segments: usize,
    /// Clusters removed by the trajectory-cardinality check.
    pub discarded_clusters: usize,
}

/// The TraClus pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraClus {
    config: TraClusConfig,
}

impl TraClus {
    /// Creates a pipeline with the given parameters.
    pub fn new(config: TraClusConfig) -> Self {
        TraClus { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TraClusConfig {
        &self.config
    }

    /// Runs partition-and-group clustering over `dataset`.
    pub fn run(&self, dataset: &Dataset) -> TraClusResult {
        let segments = partition::partition_dataset(dataset);
        let total_segments = segments.len();
        let grouping = group::dbscan(&segments, &self.config);
        let mut discarded_clusters = 0usize;
        let clusters = grouping
            .clusters
            .into_iter()
            .filter_map(|members| {
                let segs: Vec<TSeg> = members.into_iter().map(|i| segments[i]).collect();
                let representative = representative::representative_trajectory(
                    &segs,
                    self.config.min_lns,
                    self.config.gamma,
                );
                let cluster = SegmentCluster {
                    segments: segs,
                    representative,
                };
                if cluster.trajectory_cardinality() < self.config.min_trajectories {
                    discarded_clusters += 1;
                    None
                } else {
                    Some(cluster)
                }
            })
            .collect();
        TraClusResult {
            clusters,
            noise: grouping.noise,
            total_segments,
            discarded_clusters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::{Point, RoadLocation, SegmentId};
    use neat_traj::Trajectory;

    fn straight_traj(id: u64, y: f64, n: usize) -> Trajectory {
        let pts = (0..n)
            .map(|i| RoadLocation::new(SegmentId::new(0), Point::new(i as f64 * 20.0, y), i as f64))
            .collect();
        Trajectory::new(TrajectoryId::new(id), pts).unwrap()
    }

    #[test]
    fn parallel_bundle_forms_one_cluster() {
        let mut data = Dataset::new("bundle");
        for id in 0..6 {
            data.push(straight_traj(id, id as f64 * 1.0, 12));
        }
        let result = TraClus::new(TraClusConfig {
            epsilon: 12.0,
            min_lns: 3,
            ..Default::default()
        })
        .run(&data);
        assert_eq!(result.clusters.len(), 1);
        assert_eq!(result.clusters[0].trajectory_cardinality(), 6);
        // The representative follows the bundle direction (≈ x-axis).
        let rep = &result.clusters[0].representative;
        assert!(rep.len() >= 2);
        assert!(result.clusters[0].representative_length() > 100.0);
    }

    #[test]
    fn distant_bundles_form_two_clusters() {
        let mut data = Dataset::new("two");
        for id in 0..4 {
            data.push(straight_traj(id, id as f64, 10));
        }
        for id in 10..14 {
            data.push(straight_traj(id, 500.0 + id as f64, 10));
        }
        let result = TraClus::new(TraClusConfig {
            epsilon: 12.0,
            min_lns: 3,
            ..Default::default()
        })
        .run(&data);
        assert_eq!(result.clusters.len(), 2);
    }

    #[test]
    fn sparse_segments_are_noise() {
        let mut data = Dataset::new("noise");
        data.push(straight_traj(0, 0.0, 6));
        data.push(straight_traj(1, 900.0, 6));
        let result = TraClus::new(TraClusConfig {
            epsilon: 5.0,
            min_lns: 4,
            ..Default::default()
        })
        .run(&data);
        assert!(result.clusters.is_empty());
        assert_eq!(result.noise, result.total_segments);
    }

    #[test]
    fn smaller_epsilon_yields_more_fragmented_result() {
        // Mirrors Figure 4: ε=1, MinLns=1 explodes the cluster count
        // relative to tuned parameters.
        let mut data = Dataset::new("frag");
        for id in 0..8 {
            data.push(straight_traj(id, id as f64 * 6.0, 10));
        }
        let tuned = TraClus::new(TraClusConfig {
            epsilon: 25.0,
            min_lns: 3,
            ..Default::default()
        })
        .run(&data);
        let degenerate = TraClus::new(TraClusConfig {
            epsilon: 1.0,
            min_lns: 1,
            ..Default::default()
        })
        .run(&data);
        assert!(degenerate.clusters.len() >= tuned.clusters.len());
    }

    #[test]
    fn trajectory_cardinality_check_discards_thin_clusters() {
        let mut data = Dataset::new("thin");
        // A bundle entirely from two trajectories going back and forth.
        for id in 0..2 {
            data.push(straight_traj(id, id as f64, 12));
        }
        for id in 10..16 {
            data.push(straight_traj(id, 800.0 + (id - 10) as f64, 12));
        }
        let without = TraClus::new(TraClusConfig {
            epsilon: 12.0,
            min_lns: 2,
            ..Default::default()
        })
        .run(&data);
        let with = TraClus::new(TraClusConfig {
            epsilon: 12.0,
            min_lns: 2,
            min_trajectories: 4,
            ..Default::default()
        })
        .run(&data);
        assert_eq!(without.clusters.len(), 2);
        assert_eq!(with.clusters.len(), 1);
        assert_eq!(with.discarded_clusters, 1);
        assert!(with.clusters[0].trajectory_cardinality() >= 4);
    }

    #[test]
    fn tseg_length() {
        let s = TSeg {
            trajectory: TrajectoryId::new(0),
            start: Point::new(0.0, 0.0),
            end: Point::new(3.0, 4.0),
        };
        assert_eq!(s.length(), 5.0);
    }
}
