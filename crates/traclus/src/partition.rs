//! Trajectory partitioning by approximate MDL optimisation (TraClus
//! Section 4.1).
//!
//! A trajectory's *characteristic points* are the points where its
//! behaviour changes rapidly; the trajectory is replaced by the line
//! segments between consecutive characteristic points. The approximate
//! algorithm greedily extends a window and inserts a characteristic point
//! whenever encoding the window as one segment (`MDL_par`) costs more than
//! keeping the raw points (`MDL_nopar`).

use crate::distance::{angular_distance, perpendicular_distance};
use crate::TSeg;
use neat_rnet::Point;
use neat_traj::{Dataset, Trajectory};

/// log₂ clamped below at 0 (distances under 1 m cost nothing, as in the
/// reference implementation).
fn log2c(x: f64) -> f64 {
    if x <= 1.0 {
        0.0
    } else {
        x.log2()
    }
}

/// MDL cost of replacing `points[i..=j]` with the single segment
/// `(points[i], points[j])`: model cost `L(H)` plus encoding cost
/// `L(D|H)`.
fn mdl_par(points: &[Point], i: usize, j: usize) -> f64 {
    let lh = log2c(points[i].distance(points[j]));
    let mut perp = 0.0;
    let mut ang = 0.0;
    for k in i..j {
        perp += perpendicular_distance(points[i], points[j], points[k], points[k + 1]);
        ang += angular_distance(points[i], points[j], points[k], points[k + 1]);
    }
    lh + log2c(perp) + log2c(ang)
}

/// MDL cost of keeping `points[i..=j]` verbatim (`L(D|H) = 0`).
fn mdl_nopar(points: &[Point], i: usize, j: usize) -> f64 {
    (i..j)
        .map(|k| log2c(points[k].distance(points[k + 1])))
        .sum()
}

/// Computes the indices of the characteristic points of a point sequence
/// (always including the first and last index).
///
/// # Panics
///
/// Panics when fewer than two points are supplied.
pub fn characteristic_points(points: &[Point]) -> Vec<usize> {
    assert!(points.len() >= 2, "need at least two points");
    let mut cps = vec![0usize];
    let mut start = 0usize;
    let mut length = 1usize;
    while start + length < points.len() {
        let cur = start + length;
        let cost_par = mdl_par(points, start, cur);
        let cost_nopar = mdl_nopar(points, start, cur);
        if cost_par > cost_nopar {
            // Partition at the previous point.
            let cp = cur - 1;
            if cp > start {
                cps.push(cp);
                start = cp;
                length = 1;
            } else {
                // Cannot shrink further; accept the single step.
                cps.push(cur);
                start = cur;
                length = 1;
            }
        } else {
            length += 1;
        }
    }
    // lint:allow(L1) reason=cps receives the initial point before the loop
    if *cps.last().expect("non-empty") != points.len() - 1 {
        cps.push(points.len() - 1);
    }
    cps
}

/// Partitions one trajectory into TraClus line segments between
/// characteristic points. Zero-length segments (repeated positions) are
/// dropped.
pub fn partition_trajectory(tr: &Trajectory) -> Vec<TSeg> {
    let points: Vec<Point> = tr.points().iter().map(|l| l.position).collect();
    let cps = characteristic_points(&points);
    cps.windows(2)
        .filter(|w| points[w[0]].distance(points[w[1]]) > 1e-9)
        .map(|w| TSeg {
            trajectory: tr.id(),
            start: points[w[0]],
            end: points[w[1]],
        })
        .collect()
}

/// Partitions every trajectory of a dataset.
pub fn partition_dataset(dataset: &Dataset) -> Vec<TSeg> {
    dataset
        .trajectories()
        .iter()
        .flat_map(partition_trajectory)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::{RoadLocation, SegmentId};
    use neat_traj::TrajectoryId;

    fn traj(coords: &[(f64, f64)]) -> Trajectory {
        let pts = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| RoadLocation::new(SegmentId::new(0), Point::new(x, y), i as f64))
            .collect();
        Trajectory::new(TrajectoryId::new(1), pts).unwrap()
    }

    #[test]
    fn straight_line_collapses_to_one_segment() {
        let t = traj(&[(0.0, 0.0), (50.0, 0.0), (100.0, 0.0), (150.0, 0.0)]);
        let segs = partition_trajectory(&t);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].start, Point::new(0.0, 0.0));
        assert_eq!(segs[0].end, Point::new(150.0, 0.0));
    }

    #[test]
    fn sharp_turn_creates_characteristic_point() {
        // Go east 200 m, then north 200 m: the corner is characteristic.
        // (The greedy MDL window absorbs turns that occur long after the
        // window start — a documented property of TraClus's *approximate*
        // partitioning — so the turn sits a few samples in.)
        let t = traj(&[
            (0.0, 0.0),
            (100.0, 0.0),
            (200.0, 0.0),
            (200.0, 100.0),
            (200.0, 200.0),
        ]);
        let segs = partition_trajectory(&t);
        assert!(segs.len() >= 2, "turn must split the trajectory");
        // Some split point sits at the corner.
        assert!(segs
            .iter()
            .any(|s| s.end.distance(Point::new(200.0, 0.0)) < 1e-6));
    }

    #[test]
    fn endpoints_always_characteristic() {
        let pts: Vec<Point> = (0..20)
            .map(|i| Point::new(i as f64 * 10.0, ((i % 5) as f64) * 8.0))
            .collect();
        let cps = characteristic_points(&pts);
        assert_eq!(cps[0], 0);
        assert_eq!(*cps.last().unwrap(), 19);
        // Indices strictly increase.
        for w in cps.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn two_point_trajectory_is_one_segment() {
        let t = traj(&[(0.0, 0.0), (10.0, 10.0)]);
        let segs = partition_trajectory(&t);
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn repeated_points_do_not_emit_zero_segments() {
        let t = traj(&[(0.0, 0.0), (0.0, 0.0), (10.0, 0.0), (10.0, 0.0)]);
        for s in partition_trajectory(&t) {
            assert!(s.length() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "two points")]
    fn single_point_panics() {
        let _ = characteristic_points(&[Point::new(0.0, 0.0)]);
    }

    #[test]
    fn dataset_partition_concatenates() {
        let mut d = Dataset::new("p");
        d.push(traj(&[(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]));
        d.push(traj(&[(0.0, 5.0), (10.0, 5.0)]));
        let segs = partition_dataset(&d);
        assert!(segs.len() >= 2);
    }
}
