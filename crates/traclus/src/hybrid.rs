//! The NEAT paper's TraClus *variant* (Section IV-C): give TraClus the
//! benefit of NEAT's preprocessing — base clusters as the grouping unit —
//! and of the modified Hausdorff network distance, then run its DBSCAN
//! grouping phase. The paper shows this variant remains far slower than
//! NEAT (SJ2000: 6 396.79 s for 117 clusters vs NEAT's 11.68 s) because
//! grouping still computes pairwise distances.

use neat_core::BaseCluster;
use neat_rnet::path::TravelMode;
use neat_rnet::{NodeId, RoadNetwork, ShortestPathEngine};
use std::collections::HashMap;

/// Parameters of the hybrid variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridConfig {
    /// DBSCAN ε over the modified Hausdorff network distance (metres).
    pub epsilon: f64,
    /// DBSCAN minimum neighbourhood size (TraClus's MinLns analogue).
    pub min_pts: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            epsilon: 500.0,
            min_pts: 2,
        }
    }
}

/// Result of the hybrid run.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridResult {
    /// Clusters as groups of base clusters.
    pub clusters: Vec<Vec<BaseCluster>>,
    /// Base clusters labelled noise.
    pub noise: usize,
    /// Network-distance evaluations performed (the cost driver the NEAT
    /// paper measures).
    pub distance_computations: u64,
}

/// Modified Hausdorff network distance between the endpoint pairs of two
/// road segments (the base clusters' representatives) — the same
/// Definition-11 form NEAT Phase 3 uses, applied at segment granularity.
fn segment_hausdorff(
    net: &RoadNetwork,
    engine: &mut ShortestPathEngine,
    cache: &mut HashMap<(NodeId, NodeId), Option<f64>>,
    a: &BaseCluster,
    b: &BaseCluster,
    computations: &mut u64,
) -> Option<f64> {
    let sa = net.segment(a.segment()).ok()?;
    let sb = net.segment(b.segment()).ok()?;
    let mut dn = |x: NodeId, y: NodeId| -> Option<f64> {
        if x == y {
            return Some(0.0);
        }
        let key = if x <= y { (x, y) } else { (y, x) };
        if let Some(&d) = cache.get(&key) {
            return d;
        }
        *computations += 1;
        let d = engine.distance(net, key.0, key.1, TravelMode::Undirected);
        cache.insert(key, d);
        d
    };
    let mut h = 0.0f64;
    for x in [sa.a, sa.b] {
        let m = [sb.a, sb.b]
            .into_iter()
            .filter_map(|y| dn(x, y))
            .fold(f64::INFINITY, f64::min);
        if !m.is_finite() {
            return None;
        }
        h = h.max(m);
    }
    for y in [sb.a, sb.b] {
        let m = [sa.a, sa.b]
            .into_iter()
            .filter_map(|x| dn(y, x))
            .fold(f64::INFINITY, f64::min);
        if !m.is_finite() {
            return None;
        }
        h = h.max(m);
    }
    Some(h)
}

/// Runs the hybrid TraClus variant over NEAT base clusters.
pub fn cluster_base_clusters(
    net: &RoadNetwork,
    base_clusters: Vec<BaseCluster>,
    config: &HybridConfig,
) -> HybridResult {
    const UNVISITED: i32 = -2;
    const NOISE: i32 = -1;
    let n = base_clusters.len();
    let mut engine = ShortestPathEngine::new(net);
    let mut cache: HashMap<(NodeId, NodeId), Option<f64>> = HashMap::new();
    let mut computations = 0u64;
    let mut label = vec![UNVISITED; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();

    // Materialised distance-query closure over indices.
    let neighbourhood = |i: usize,
                         engine: &mut ShortestPathEngine,
                         cache: &mut HashMap<(NodeId, NodeId), Option<f64>>,
                         computations: &mut u64|
     -> Vec<usize> {
        (0..n)
            .filter(|&j| {
                if i == j {
                    return true;
                }
                matches!(
                    segment_hausdorff(
                        net,
                        engine,
                        cache,
                        &base_clusters[i],
                        &base_clusters[j],
                        computations,
                    ),
                    Some(d) if d <= config.epsilon
                )
            })
            .collect()
    };

    for i in 0..n {
        if label[i] != UNVISITED {
            continue;
        }
        let neigh = neighbourhood(i, &mut engine, &mut cache, &mut computations);
        if neigh.len() < config.min_pts {
            label[i] = NOISE;
            continue;
        }
        let cid = groups.len() as i32;
        groups.push(Vec::new());
        label[i] = cid;
        groups[cid as usize].push(i);
        let mut queue: std::collections::VecDeque<usize> = neigh.into();
        while let Some(j) = queue.pop_front() {
            if label[j] == NOISE {
                label[j] = cid;
                groups[cid as usize].push(j);
                continue;
            }
            if label[j] != UNVISITED {
                continue;
            }
            label[j] = cid;
            groups[cid as usize].push(j);
            let jn = neighbourhood(j, &mut engine, &mut cache, &mut computations);
            if jn.len() >= config.min_pts {
                queue.extend(jn);
            }
        }
    }

    let noise = label.iter().filter(|&&l| l == NOISE).count();
    let mut pool: Vec<Option<BaseCluster>> = base_clusters.into_iter().map(Some).collect();
    let clusters = groups
        .into_iter()
        .map(|g| {
            g.into_iter()
                .map(|i| pool[i].take().expect("used once")) // lint:allow(L1) reason=each pool index appears in exactly one group
                .collect()
        })
        .collect();
    HybridResult {
        clusters,
        noise,
        distance_computations: computations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::netgen::chain_network;
    use neat_rnet::{Point, RoadLocation, SegmentId};
    use neat_traj::{TFragment, TrajectoryId};

    fn base(seg: usize, trs: &[u64]) -> BaseCluster {
        let frags = trs
            .iter()
            .map(|&t| {
                let loc = RoadLocation::new(SegmentId::new(seg), Point::new(0.0, 0.0), 0.0);
                TFragment {
                    trajectory: TrajectoryId::new(t),
                    segment: SegmentId::new(seg),
                    first: loc,
                    last: loc,
                    point_count: 2,
                }
            })
            .collect();
        BaseCluster::new(SegmentId::new(seg), frags).unwrap()
    }

    #[test]
    fn adjacent_segments_cluster_together() {
        let net = chain_network(6, 100.0, 10.0);
        let bases = vec![base(0, &[1]), base(1, &[2]), base(2, &[3])];
        // Adjacent segments' Hausdorff distance is 200 m on this chain.
        let out = cluster_base_clusters(
            &net,
            bases,
            &HybridConfig {
                epsilon: 200.0,
                min_pts: 2,
            },
        );
        assert_eq!(out.clusters.len(), 1);
        assert_eq!(out.clusters[0].len(), 3);
        assert_eq!(out.noise, 0);
        assert!(out.distance_computations > 0);
    }

    #[test]
    fn distant_segments_are_noise_or_separate() {
        let net = chain_network(30, 100.0, 10.0);
        let bases = vec![base(0, &[1]), base(1, &[1]), base(25, &[2])];
        let out = cluster_base_clusters(
            &net,
            bases,
            &HybridConfig {
                epsilon: 200.0,
                min_pts: 2,
            },
        );
        assert_eq!(out.clusters.len(), 1);
        assert_eq!(out.noise, 1);
    }

    #[test]
    fn min_pts_one_keeps_everything() {
        let net = chain_network(10, 100.0, 10.0);
        let bases = vec![base(0, &[1]), base(5, &[2])];
        let out = cluster_base_clusters(
            &net,
            bases,
            &HybridConfig {
                epsilon: 100.0,
                min_pts: 1,
            },
        );
        assert_eq!(out.noise, 0);
        assert_eq!(out.clusters.len(), 2);
    }

    #[test]
    fn empty_input() {
        let net = chain_network(3, 100.0, 10.0);
        let out = cluster_base_clusters(&net, vec![], &HybridConfig::default());
        assert!(out.clusters.is_empty());
        assert_eq!(out.noise, 0);
    }

    #[test]
    fn clusters_partition_input() {
        let net = chain_network(12, 100.0, 10.0);
        let bases: Vec<BaseCluster> = (0..8).map(|s| base(s, &[s as u64])).collect();
        let count = bases.len();
        let out = cluster_base_clusters(
            &net,
            bases,
            &HybridConfig {
                epsilon: 200.0,
                min_pts: 2,
            },
        );
        let placed: usize = out.clusters.iter().map(Vec::len).sum();
        assert_eq!(placed + out.noise, count);
    }
}
