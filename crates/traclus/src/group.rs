//! Line-segment DBSCAN (TraClus Section 4.2).
//!
//! Standard DBSCAN with parameters `ε` / `MinLns` over the weighted
//! segment distance. The ε-neighbourhood retrieval is a linear scan over
//! all segments — the O(n²) behaviour the NEAT paper measures against.

use crate::distance::segment_distance;
use crate::{TSeg, TraClusConfig};

/// DBSCAN labelling result: member indices per cluster plus the noise
/// count.
#[derive(Debug, Clone, PartialEq)]
pub struct Grouping {
    /// Cluster members as indices into the input slice, in discovery
    /// order.
    pub clusters: Vec<Vec<usize>>,
    /// Number of segments labelled noise.
    pub noise: usize,
}

/// Runs DBSCAN over `segments` with `config.epsilon` / `config.min_lns`.
///
/// A segment is a *core* segment when its ε-neighbourhood (including
/// itself) holds at least `MinLns` segments; clusters are the usual
/// density-connected sets; everything unreachable is noise.
pub fn dbscan(segments: &[TSeg], config: &TraClusConfig) -> Grouping {
    const UNVISITED: i32 = -2;
    const NOISE: i32 = -1;
    let n = segments.len();
    let mut label = vec![UNVISITED; n];
    let mut clusters: Vec<Vec<usize>> = Vec::new();

    let neighbourhood = |i: usize| -> Vec<usize> {
        (0..n)
            .filter(|&j| segment_distance(&segments[i], &segments[j], config) <= config.epsilon)
            .collect()
    };

    for i in 0..n {
        if label[i] != UNVISITED {
            continue;
        }
        let neigh = neighbourhood(i);
        if neigh.len() < config.min_lns {
            label[i] = NOISE;
            continue;
        }
        let cid = clusters.len() as i32;
        clusters.push(Vec::new());
        label[i] = cid;
        clusters[cid as usize].push(i);
        let mut queue: std::collections::VecDeque<usize> = neigh.into();
        while let Some(j) = queue.pop_front() {
            if label[j] == NOISE {
                // Border segment reached from a core segment.
                label[j] = cid;
                clusters[cid as usize].push(j);
                continue;
            }
            if label[j] != UNVISITED {
                continue;
            }
            label[j] = cid;
            clusters[cid as usize].push(j);
            let jn = neighbourhood(j);
            if jn.len() >= config.min_lns {
                queue.extend(jn);
            }
        }
    }
    let noise = label.iter().filter(|&&l| l == NOISE).count();
    Grouping { clusters, noise }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::Point;
    use neat_traj::TrajectoryId;

    fn seg(tr: u64, x0: f64, y0: f64, x1: f64, y1: f64) -> TSeg {
        TSeg {
            trajectory: TrajectoryId::new(tr),
            start: Point::new(x0, y0),
            end: Point::new(x1, y1),
        }
    }

    fn cfg(epsilon: f64, min_lns: usize) -> TraClusConfig {
        TraClusConfig {
            epsilon,
            min_lns,
            ..TraClusConfig::default()
        }
    }

    /// A bundle of `n` parallel segments 1 m apart starting at `y0`.
    fn bundle(n: usize, y0: f64, id0: u64) -> Vec<TSeg> {
        (0..n)
            .map(|i| seg(id0 + i as u64, 0.0, y0 + i as f64, 100.0, y0 + i as f64))
            .collect()
    }

    #[test]
    fn one_bundle_one_cluster() {
        let segs = bundle(5, 0.0, 0);
        let g = dbscan(&segs, &cfg(10.0, 3));
        assert_eq!(g.clusters.len(), 1);
        assert_eq!(g.clusters[0].len(), 5);
        assert_eq!(g.noise, 0);
    }

    #[test]
    fn two_bundles_two_clusters() {
        let mut segs = bundle(5, 0.0, 0);
        segs.extend(bundle(5, 300.0, 10));
        let g = dbscan(&segs, &cfg(10.0, 3));
        assert_eq!(g.clusters.len(), 2);
        assert_eq!(g.noise, 0);
    }

    #[test]
    fn isolated_segment_is_noise() {
        let mut segs = bundle(4, 0.0, 0);
        segs.push(seg(99, 0.0, 900.0, 100.0, 900.0));
        let g = dbscan(&segs, &cfg(10.0, 3));
        assert_eq!(g.clusters.len(), 1);
        assert_eq!(g.noise, 1);
    }

    #[test]
    fn min_lns_one_clusters_everything() {
        let mut segs = bundle(2, 0.0, 0);
        segs.push(seg(9, 0.0, 500.0, 100.0, 500.0));
        let g = dbscan(&segs, &cfg(5.0, 1));
        assert_eq!(g.noise, 0);
        assert_eq!(g.clusters.len(), 2);
    }

    #[test]
    fn border_segments_join_via_core() {
        // A chain of segments each within ε of the next: density
        // connectivity pulls the whole chain into one cluster as long as
        // interior segments are core.
        let segs: Vec<TSeg> = (0..7)
            .map(|i| seg(i as u64, 0.0, i as f64 * 4.0, 100.0, i as f64 * 4.0))
            .collect();
        let g = dbscan(&segs, &cfg(5.0, 2));
        assert_eq!(g.clusters.len(), 1);
        assert_eq!(g.clusters[0].len(), 7);
    }

    #[test]
    fn empty_input() {
        let g = dbscan(&[], &cfg(10.0, 3));
        assert!(g.clusters.is_empty());
        assert_eq!(g.noise, 0);
    }

    #[test]
    fn labels_partition_the_input() {
        let mut segs = bundle(6, 0.0, 0);
        segs.extend(bundle(3, 200.0, 20));
        segs.push(seg(99, 0.0, 999.0, 50.0, 999.0));
        let g = dbscan(&segs, &cfg(10.0, 4));
        let clustered: usize = g.clusters.iter().map(Vec::len).sum();
        assert_eq!(clustered + g.noise, segs.len());
        // No index appears twice.
        let mut all: Vec<usize> = g.clusters.iter().flatten().copied().collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), clustered);
    }
}
