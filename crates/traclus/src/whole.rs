//! Whole-trajectory clustering (Trajectory-OPTICS, Nanni & Pedreschi
//! 2006 — reference \[24\] of the NEAT paper).
//!
//! The distance between two trajectories is the *time-averaged Euclidean
//! distance* between the objects over their common time interval; OPTICS
//! then orders the trajectories and a threshold extracts flat clusters.
//! The NEAT paper cites this method as the representative
//! whole-trajectory approach and motivates partial (sub-trajectory)
//! clustering by its shortcomings — this implementation lets the harness
//! demonstrate exactly that contrast.

use crate::optics::{extract_clusters, optics_order, DistanceMatrix};
use neat_rnet::Point;
use neat_traj::{Dataset, Trajectory};

/// Parameters for whole-trajectory OPTICS clustering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WholeConfig {
    /// OPTICS generating distance (metres of time-averaged separation).
    pub eps: f64,
    /// OPTICS `MinPts`.
    pub min_pts: usize,
    /// Extraction threshold ε′ (usually ≤ `eps`).
    pub eps_prime: f64,
    /// Temporal sampling step (seconds) for the time-averaged distance.
    pub time_step_s: f64,
}

impl Default for WholeConfig {
    fn default() -> Self {
        WholeConfig {
            eps: 200.0,
            min_pts: 3,
            eps_prime: 200.0,
            time_step_s: 10.0,
        }
    }
}

/// Result of whole-trajectory clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct WholeResult {
    /// Clusters as indices into the dataset's trajectory list.
    pub clusters: Vec<Vec<usize>>,
    /// Trajectories classified as noise.
    pub noise: usize,
}

/// Position of the object at absolute time `t` (see
/// [`neat_traj::ops::position_at`]); `None` outside the recorded interval.
fn position_at(tr: &Trajectory, t: f64) -> Option<Point> {
    neat_traj::ops::position_at(tr, t).map(|l| l.position)
}

/// Time-averaged Euclidean distance between two trajectories over their
/// common time interval, sampled every `dt` seconds. Returns
/// `f64::INFINITY` when the intervals do not overlap.
pub fn time_averaged_distance(a: &Trajectory, b: &Trajectory, dt: f64) -> f64 {
    let start = a.first().time.max(b.first().time);
    let end = a.last().time.min(b.last().time);
    if end < start {
        return f64::INFINITY;
    }
    let steps = ((end - start) / dt.max(1e-9)).ceil() as usize;
    let mut sum = 0.0;
    let mut count = 0usize;
    for k in 0..=steps {
        let t = (start + k as f64 * dt).min(end);
        if let (Some(pa), Some(pb)) = (position_at(a, t), position_at(b, t)) {
            sum += pa.distance(pb);
            count += 1;
        }
    }
    if count == 0 {
        f64::INFINITY
    } else {
        sum / count as f64
    }
}

/// Clusters whole trajectories with OPTICS over the time-averaged
/// distance.
pub fn cluster_whole_trajectories(dataset: &Dataset, config: &WholeConfig) -> WholeResult {
    let trs = dataset.trajectories();
    let matrix = DistanceMatrix::build(trs.len(), |i, j| {
        time_averaged_distance(&trs[i], &trs[j], config.time_step_s)
    });
    let order = optics_order(&matrix, config.eps, config.min_pts);
    let (clusters, noise) = extract_clusters(&order, config.eps_prime);
    WholeResult { clusters, noise }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_rnet::{RoadLocation, SegmentId};
    use neat_traj::TrajectoryId;

    /// A straight east-bound trajectory at altitude `y`, from t=0..90.
    fn eastbound(id: u64, y: f64, t0: f64) -> Trajectory {
        let pts = (0..10)
            .map(|i| {
                RoadLocation::new(
                    SegmentId::new(0),
                    Point::new(i as f64 * 100.0, y),
                    t0 + i as f64 * 10.0,
                )
            })
            .collect();
        Trajectory::new(TrajectoryId::new(id), pts).unwrap()
    }

    #[test]
    fn interpolation_at_times() {
        let tr = eastbound(1, 0.0, 0.0);
        assert_eq!(position_at(&tr, 0.0), Some(Point::new(0.0, 0.0)));
        assert_eq!(position_at(&tr, 5.0), Some(Point::new(50.0, 0.0)));
        assert_eq!(position_at(&tr, 90.0), Some(Point::new(900.0, 0.0)));
        assert_eq!(position_at(&tr, 91.0), None);
        assert_eq!(position_at(&tr, -1.0), None);
    }

    #[test]
    fn parallel_synchronous_trajectories_have_offset_distance() {
        let a = eastbound(1, 0.0, 0.0);
        let b = eastbound(2, 30.0, 0.0);
        let d = time_averaged_distance(&a, &b, 10.0);
        assert!((d - 30.0).abs() < 1e-9);
    }

    #[test]
    fn same_route_time_shifted_is_far_apart() {
        // The whole-trajectory measure penalises temporal misalignment —
        // the weakness the NEAT paper calls out: same route, shifted
        // departure, large "distance".
        let a = eastbound(1, 0.0, 0.0);
        let b = eastbound(2, 0.0, 50.0);
        let d = time_averaged_distance(&a, &b, 10.0);
        assert!(d > 400.0, "time-shifted distance {d}");
    }

    #[test]
    fn disjoint_time_intervals_are_incomparable() {
        let a = eastbound(1, 0.0, 0.0);
        let b = eastbound(2, 0.0, 1000.0);
        assert_eq!(time_averaged_distance(&a, &b, 10.0), f64::INFINITY);
    }

    #[test]
    fn clusters_form_from_synchronous_bundles() {
        let mut d = Dataset::new("w");
        for i in 0..4 {
            d.push(eastbound(i, i as f64 * 10.0, 0.0)); // bundle A
        }
        for i in 10..14 {
            d.push(eastbound(i, 5000.0 + i as f64 * 10.0, 0.0)); // bundle B
        }
        let r = cluster_whole_trajectories(
            &d,
            &WholeConfig {
                eps: 100.0,
                min_pts: 2,
                eps_prime: 100.0,
                time_step_s: 10.0,
            },
        );
        assert_eq!(r.clusters.len(), 2);
        assert_eq!(r.noise, 0);
    }

    #[test]
    fn lone_trajectory_is_noise() {
        let mut d = Dataset::new("n");
        d.push(eastbound(0, 0.0, 0.0));
        d.push(eastbound(1, 10.0, 0.0));
        d.push(eastbound(2, 9000.0, 0.0));
        let r = cluster_whole_trajectories(
            &d,
            &WholeConfig {
                eps: 50.0,
                min_pts: 2,
                eps_prime: 50.0,
                time_step_s: 10.0,
            },
        );
        assert_eq!(r.clusters.len(), 1);
        assert_eq!(r.noise, 1);
    }
}
