//! The TraClus three-component line-segment distance (Section 3.2 of the
//! TraClus paper): perpendicular, parallel and angular components, each
//! Euclidean — which is exactly the property the NEAT paper argues makes
//! it inappropriate for road-network trajectories.

use crate::{TSeg, TraClusConfig};
use neat_rnet::Point;

/// Perpendicular distance component between the longer segment
/// `(ls, le)` and the shorter `(ss, se)`:
/// `(l⊥₁² + l⊥₂²) / (l⊥₁ + l⊥₂)`, or 0 when both projections coincide.
pub fn perpendicular_component(ls: Point, le: Point, ss: Point, se: Point) -> f64 {
    let l1 = project_onto_segment_line(ss, ls, le).1;
    let l2 = project_onto_segment_line(se, ls, le).1;
    if l1 + l2 <= f64::EPSILON {
        0.0
    } else {
        (l1 * l1 + l2 * l2) / (l1 + l2)
    }
}

/// Parallel distance component: `min(l∥₁, l∥₂)` — the smaller overhang of
/// the shorter segment's endpoint projections beyond the longer segment.
pub fn parallel_component(ls: Point, le: Point, ss: Point, se: Point) -> f64 {
    let dir = le - ls;
    let len = dir.norm();
    if len <= f64::EPSILON {
        return ls.distance(ss).min(ls.distance(se));
    }
    let t1 = (ss - ls).dot(dir) / (len * len);
    let t2 = (se - ls).dot(dir) / (len * len);
    let overhang = |t: f64| -> f64 {
        if t < 0.0 {
            -t * len
        } else if t > 1.0 {
            (t - 1.0) * len
        } else {
            0.0
        }
    };
    overhang(t1).min(overhang(t2))
}

/// Angular distance component: `‖shorter‖ × sin θ` for θ ∈ [0°, 90°],
/// `‖shorter‖` for θ ∈ (90°, 180°].
pub fn angular_component(ls: Point, le: Point, ss: Point, se: Point) -> f64 {
    let v1 = le - ls;
    let v2 = se - ss;
    let n1 = v1.norm();
    let n2 = v2.norm();
    if n1 <= f64::EPSILON || n2 <= f64::EPSILON {
        return 0.0;
    }
    // sin θ via the cross product: numerically exact 0 for collinear
    // vectors, unlike sqrt(1 − cos²).
    if v1.dot(v2) < 0.0 {
        n2
    } else {
        let sin = (v1.cross(v2).abs() / (n1 * n2)).min(1.0);
        n2 * sin
    }
}

/// Projects `p` onto the *infinite line* through `a`–`b`, returning the
/// projection parameter and the perpendicular distance.
fn project_onto_segment_line(p: Point, a: Point, b: Point) -> (f64, f64) {
    let ab = b - a;
    let len_sq = ab.dot(ab);
    if len_sq <= f64::EPSILON {
        return (0.0, p.distance(a));
    }
    let t = (p - a).dot(ab) / len_sq;
    let foot = a + ab * t;
    (t, p.distance(foot))
}

/// Perpendicular distance used by the MDL partitioning cost — identical to
/// [`perpendicular_component`] but exposed under the partitioning name.
pub fn perpendicular_distance(ls: Point, le: Point, ss: Point, se: Point) -> f64 {
    perpendicular_component(ls, le, ss, se)
}

/// Angular distance used by the MDL partitioning cost.
pub fn angular_distance(ls: Point, le: Point, ss: Point, se: Point) -> f64 {
    angular_component(ls, le, ss, se)
}

/// The weighted TraClus distance between two line segments. The longer
/// segment takes the `Li` role, as the TraClus paper prescribes.
pub fn segment_distance(a: &TSeg, b: &TSeg, config: &TraClusConfig) -> f64 {
    let (longer, shorter) = if a.length() >= b.length() {
        (a, b)
    } else {
        (b, a)
    };
    let d_perp = perpendicular_component(longer.start, longer.end, shorter.start, shorter.end);
    let d_par = parallel_component(longer.start, longer.end, shorter.start, shorter.end);
    let d_ang = angular_component(longer.start, longer.end, shorter.start, shorter.end);
    config.w_perpendicular * d_perp + config.w_parallel * d_par + config.w_angular * d_ang
}

#[cfg(test)]
mod tests {
    use super::*;
    use neat_traj::TrajectoryId;
    use proptest::prelude::*;

    fn seg(x0: f64, y0: f64, x1: f64, y1: f64) -> TSeg {
        TSeg {
            trajectory: TrajectoryId::new(0),
            start: Point::new(x0, y0),
            end: Point::new(x1, y1),
        }
    }

    fn cfg() -> TraClusConfig {
        TraClusConfig::default()
    }

    #[test]
    fn identical_segments_have_zero_distance() {
        let a = seg(0.0, 0.0, 100.0, 0.0);
        assert_eq!(segment_distance(&a, &a, &cfg()), 0.0);
    }

    #[test]
    fn parallel_offset_gives_perpendicular_distance() {
        let a = seg(0.0, 0.0, 100.0, 0.0);
        let b = seg(0.0, 10.0, 100.0, 10.0);
        // Perpendicular = (100+100)/20 = 10; parallel = 0; angular = 0.
        assert!((segment_distance(&a, &b, &cfg()) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn collinear_gap_gives_parallel_distance() {
        let a = seg(0.0, 0.0, 100.0, 0.0);
        let b = seg(130.0, 0.0, 180.0, 0.0);
        // Shorter is b; its nearest endpoint overhang past a is 30.
        assert!((segment_distance(&a, &b, &cfg()) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn right_angle_gives_angular_distance() {
        let a = seg(0.0, 0.0, 100.0, 0.0);
        let b = seg(0.0, 0.0, 0.0, 50.0);
        // θ = 90°: angular = ‖b‖ = 50. Perpendicular: projections of
        // (0,0) and (0,50) onto a's line: 0 and 50 → (0+2500)/50 = 50.
        // Parallel: both endpoints project inside a → 0.
        assert!((segment_distance(&a, &b, &cfg()) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn opposite_direction_counts_full_length() {
        let a = seg(0.0, 0.0, 100.0, 0.0);
        let b = seg(100.0, 5.0, 0.0, 5.0);
        let d = segment_distance(&a, &b, &cfg());
        // Angular = ‖b‖ = 100 (θ = 180°), plus perpendicular 5.
        assert!((d - 105.0).abs() < 1e-9);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = seg(0.0, 0.0, 100.0, 0.0);
        let b = seg(20.0, 15.0, 70.0, 35.0);
        assert_eq!(
            segment_distance(&a, &b, &cfg()),
            segment_distance(&b, &a, &cfg())
        );
    }

    #[test]
    fn weights_scale_components() {
        let a = seg(0.0, 0.0, 100.0, 0.0);
        let b = seg(0.0, 10.0, 100.0, 10.0);
        let mut c = cfg();
        c.w_perpendicular = 2.0;
        assert!((segment_distance(&a, &b, &c) - 20.0).abs() < 1e-9);
        c.w_perpendicular = 0.0;
        assert_eq!(segment_distance(&a, &b, &c), 0.0);
    }

    proptest! {
        #[test]
        fn prop_distance_nonnegative_and_symmetric(
            x0 in -100.0..100.0f64, y0 in -100.0..100.0f64,
            x1 in -100.0..100.0f64, y1 in -100.0..100.0f64,
            x2 in -100.0..100.0f64, y2 in -100.0..100.0f64,
            x3 in -100.0..100.0f64, y3 in -100.0..100.0f64,
        ) {
            let a = seg(x0, y0, x1, y1);
            let b = seg(x2, y2, x3, y3);
            let dab = segment_distance(&a, &b, &cfg());
            let dba = segment_distance(&b, &a, &cfg());
            prop_assert!(dab >= 0.0);
            prop_assert!((dab - dba).abs() < 1e-9);
        }

        #[test]
        fn prop_self_distance_zero(
            x0 in -100.0..100.0f64, y0 in -100.0..100.0f64,
            x1 in -100.0..100.0f64, y1 in -100.0..100.0f64,
        ) {
            let a = seg(x0, y0, x1, y1);
            prop_assert!(segment_distance(&a, &a, &cfg()).abs() < 1e-9);
        }
    }
}
