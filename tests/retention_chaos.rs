//! Retention chaos matrix and bounded-forever soak test.
//!
//! A *windowed* service run (`SvcConfig::window`) interleaves batch
//! ingestion with watermark expiries, checkpoint retention, journal
//! compaction (segment rewrite → fsync → rename → prune) and
//! applied-ID index rewrites. This harness proves the bounded-forever
//! story holds under fire:
//!
//! * **Disk-fault matrix** — every fault kind at every single mutating
//!   filesystem operation of the run, which by construction covers
//!   every compaction step (the live-segment rewrite's temp write,
//!   its rename, each old-segment prune, the snapshot writes and
//!   removals, and the applied-ID index rewrite). After a restart over
//!   the surviving bytes the service must converge byte-identically to
//!   the uninterrupted run with zero double-applies.
//! * **Kill matrix** — a fatal injected panic at every state-machine
//!   edge of the windowed pipeline; a fresh process must converge.
//! * **Soak** — traffic spanning many multiples of the window;
//!   journal + checkpoint + index bytes and retained fragments must
//!   plateau at O(window) instead of growing with history, and the
//!   retained state must be bit-identical across worker thread counts.
//! * **Replay-index regression** — thousands of batches through a
//!   windowed service leave the idempotent-replay index O(live set),
//!   not O(history) (the unbounded `applied.ids` fix).

use neat_repro::durability::{Fs, MemFs};
use neat_repro::mobisim::faults::{DiskFault, FaultFs};
use neat_repro::neat::NeatConfig;
use neat_repro::rnet::netgen::chain_network;
use neat_repro::rnet::{Point, RoadLocation, RoadNetwork, SegmentId};
use neat_repro::runctl::CancelToken;
use neat_repro::svc::{spool, DrainOutcome, Edge, FaultHook, Service, ServiceStatus, SvcConfig};
use neat_repro::traj::{Dataset, Trajectory, TrajectoryId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const N_BATCHES: u64 = 5;
/// Each batch advances observation time by this much...
const BATCH_STRIDE: f64 = 100.0;
/// ...and the window retains only this much history, so fragments from
/// batch `i` are expired while batch `i + 2` is being served.
const WINDOW: f64 = 150.0;

fn net() -> RoadNetwork {
    chain_network(6, 100.0, 13.9)
}

fn cfg() -> SvcConfig {
    let mut c = SvcConfig::new("/spool", "/state", "/quarantine");
    c.neat = NeatConfig {
        min_card: 1,
        ..NeatConfig::default()
    };
    c.checkpoint_every_batches = 1; // maximum retention/compaction churn
    c.window = Some(WINDOW);
    c
}

/// Batch `seed`: two short trajectories whose timestamps start at
/// `seed * BATCH_STRIDE`, so the stream's observation time advances
/// monotonically and the watermark ticks after every batch.
fn batch(seed: u64) -> Dataset {
    let t0 = seed as f64 * BATCH_STRIDE;
    let mut d = Dataset::new("b");
    for t in 0..2u64 {
        let off = ((seed * 2 + t) % 40) as f64;
        d.push(
            Trajectory::new(
                TrajectoryId::new(seed * 10 + t),
                vec![
                    RoadLocation::new(SegmentId::new(0), Point::new(10.0 + off, 0.0), t0),
                    RoadLocation::new(SegmentId::new(1), Point::new(150.0, 0.0), t0 + 30.0),
                    RoadLocation::new(SegmentId::new(2), Point::new(250.0 + off, 0.0), t0 + 60.0),
                ],
            )
            .unwrap(),
        );
    }
    d
}

fn seed_spool(fs: &MemFs, n: u64) {
    fs.create_dir_all(Path::new("/spool")).unwrap();
    for i in 0..n {
        spool::submit(
            fs,
            Path::new("/spool"),
            &format!("b-{i:03}.batch"),
            &batch(i),
        )
        .unwrap();
    }
}

/// Fingerprint (and sanity) of an uninterrupted windowed run.
fn reference_fingerprint(network: &RoadNetwork) -> String {
    let fs = MemFs::new();
    seed_spool(&fs, N_BATCHES);
    let mut svc = Service::open(network, cfg(), fs.clone()).unwrap();
    assert_eq!(svc.run_drain(256), DrainOutcome::Drained);
    assert_eq!(svc.status(), ServiceStatus::Running);
    let h = svc.health();
    assert!(
        h.expiries >= N_BATCHES - 1,
        "watermark never ticked: {}",
        h.digest()
    );
    assert!(
        h.expired_fragments > 0,
        "nothing ever expired: {}",
        h.digest()
    );
    assert!(
        h.compactions > 0,
        "retention never compacted: {}",
        h.digest()
    );
    let view = svc.query();
    assert!(view.watermark.is_some(), "view carries no watermark");
    assert!(
        view.live_fragments < svc.session().live_fragments() + 1,
        "live fragment probe broken"
    );
    svc.state_fingerprint()
}

#[test]
fn disk_fault_matrix_covers_every_compaction_step() {
    let network = net();
    let reference = reference_fingerprint(&network);

    // Probe: count the mutating filesystem operations of a clean run.
    let probe_mem = MemFs::new();
    seed_spool(&probe_mem, N_BATCHES);
    let probe = FaultFs::unarmed(probe_mem);
    {
        let mut svc = Service::open(&network, cfg(), probe.clone()).unwrap();
        assert_eq!(svc.run_drain(256), DrainOutcome::Drained);
        assert!(
            svc.health().compactions > 0,
            "matrix would not cover compaction: {}",
            svc.health().digest()
        );
    }
    let total_ops = probe.mutating_ops();
    // Per batch the windowed pipeline writes at least: the batch journal
    // append, the expiry journal append, the applied-ID index rewrite
    // (temp + rename), the snapshot (temp + rename) and retention
    // (snapshot removal and/or compaction rewrite + prunes).
    assert!(
        total_ops >= N_BATCHES * 6,
        "probe looks broken: {total_ops} mutating ops"
    );

    let faults = [
        DiskFault::Lost,
        DiskFault::Torn { keep: 0 },
        DiskFault::Torn { keep: 7 },
        DiskFault::BitFlip {
            offset: 5,
            mask: 0x20,
        },
        DiskFault::NoSpace,
        DiskFault::RenameFail,
    ];
    for k in 0..total_ops {
        for fault in faults {
            let id = format!("op{k}-{fault:?}");
            let silent = matches!(fault, DiskFault::BitFlip { .. });
            let mem = MemFs::new();
            seed_spool(&mem, N_BATCHES);
            let fs = FaultFs::armed(mem.clone(), k, fault);

            // First life: run until the fault kills the process (or the
            // run rides through a recoverable/silent fault).
            if let Ok(mut svc) = Service::open(&network, cfg(), fs.clone()) {
                let _ = svc.run_drain(512);
            }
            assert!(fs.fault_fired(), "{id}: fault never fired");

            // Restart over the surviving bytes.
            let mut svc2 = match Service::open(&network, cfg(), mem.clone()) {
                Ok(svc) => svc,
                Err(e) if silent => {
                    // Silent corruption may be unrecoverable, but only
                    // ever as a *structured* error at open.
                    let _ = e;
                    continue;
                }
                Err(e) => panic!("{id}: restart failed: {e}"),
            };
            let drained = svc2.run_drain(512);
            if silent && drained == DrainOutcome::Failed {
                // Detected corruption while draining: acceptable for a
                // bit flip, as long as it is never folded into output.
                continue;
            }
            assert_eq!(drained, DrainOutcome::Drained, "{id}");
            assert_eq!(
                svc2.state_fingerprint(),
                reference,
                "{id}: state diverged (health: {})",
                svc2.health().digest()
            );
            assert!(
                spool::scan(&mem, Path::new("/quarantine"))
                    .unwrap()
                    .is_empty(),
                "{id}: fault must not poison batches"
            );
        }
    }
}

/// Panics the first `times` visits of `edge`.
struct PanicAt {
    edge: Edge,
    left: AtomicU64,
}

impl FaultHook for PanicAt {
    fn at(&self, edge: Edge) {
        if edge == self.edge
            && self
                .left
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
        {
            panic!("injected panic at edge {}", edge.name());
        }
    }
}

#[test]
fn kill_at_every_edge_of_the_windowed_pipeline_recovers_identically() {
    let network = net();
    let reference = reference_fingerprint(&network);
    for edge in Edge::ALL {
        let fs = MemFs::new();
        seed_spool(&fs, N_BATCHES);
        let mut dying_cfg = cfg();
        dying_cfg.max_restarts = 0;
        let hook: Arc<dyn FaultHook> = Arc::new(PanicAt {
            edge,
            left: AtomicU64::new(1),
        });
        // First life; a panic during boot recovery counts as death too.
        for _ in 0..4 {
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                Service::open_with(
                    &network,
                    dying_cfg.clone(),
                    fs.clone(),
                    Arc::clone(&hook),
                    None,
                    CancelToken::new(),
                )
            }));
            match attempt {
                Ok(Ok(mut svc)) => {
                    let _ = svc.run_drain(256);
                    break;
                }
                Ok(Err(e)) => panic!("edge {}: open failed: {e}", edge.name()),
                Err(_) => continue,
            }
        }

        // Second life: a fresh process over the surviving bytes.
        let mut svc2 = Service::open(&network, cfg(), fs.clone()).unwrap();
        assert_eq!(
            svc2.run_drain(256),
            DrainOutcome::Drained,
            "edge {}",
            edge.name()
        );
        assert_eq!(
            svc2.state_fingerprint(),
            reference,
            "state diverged after kill at {} (health: {})",
            edge.name(),
            svc2.health().digest()
        );
        assert!(
            spool::scan(&fs, Path::new("/quarantine"))
                .unwrap()
                .is_empty(),
            "edge {}",
            edge.name()
        );
    }
}

/// Total bytes stored under `dir` in a MemFs dump.
fn dir_bytes(fs: &MemFs, dir: &str) -> usize {
    fs.dump()
        .into_iter()
        .filter(|(p, _)| p.starts_with(dir))
        .map(|(_, bytes)| bytes.len())
        .sum()
}

/// Drives `n` windowed batches through a fresh service one at a time
/// (so spool scans stay O(1)) and returns it with its storage.
fn soak<'n>(
    network: &'n RoadNetwork,
    config: SvcConfig,
    n: u64,
    mut observe: impl FnMut(u64, &Service<'n, MemFs>, &MemFs),
) -> (Service<'n, MemFs>, MemFs) {
    let fs = MemFs::new();
    fs.create_dir_all(Path::new("/spool")).unwrap();
    let mut svc = Service::open(network, config, fs.clone()).unwrap();
    for i in 0..n {
        spool::submit(
            &fs,
            Path::new("/spool"),
            &format!("b-{i:05}.batch"),
            &batch(i),
        )
        .unwrap();
        assert_eq!(svc.run_drain(64), DrainOutcome::Drained, "batch {i}");
        observe(i, &svc, &fs);
    }
    (svc, fs)
}

/// Soak: 40 batches span ~26 windows of traffic. Journal + checkpoint +
/// index storage and retained fragments must plateau, and the retained
/// state must be bit-identical across worker thread counts.
#[test]
fn soak_storage_plateaus_and_threads_agree() {
    let network = net();
    const SOAK_BATCHES: u64 = 40;
    // Traffic span in window units — the "forever" proxy.
    let windows_spanned = (SOAK_BATCHES as f64 * BATCH_STRIDE) / WINDOW;
    assert!(windows_spanned >= 5.0, "soak too short: {windows_spanned}");

    let run = |threads: usize| {
        let mut config = cfg();
        config.neat.threads = threads;
        config.checkpoint_every_batches = 2;
        config.compact_every_batches = Some(3);
        let mut state_sizes = Vec::new();
        let mut fragments = Vec::new();
        let mut index_sizes = Vec::new();
        let (svc, fs) = soak(&network, config, SOAK_BATCHES, |i, svc, fs| {
            if i >= 10 {
                // Past warm-up, sample at every batch.
                state_sizes.push(dir_bytes(fs, "/state"));
                fragments.push(svc.session().live_fragments());
                index_sizes.push(svc.replay_index_len());
            }
        });
        let h = svc.health();
        assert_eq!(h.applied, SOAK_BATCHES, "{}", h.digest());
        assert!(h.compactions > 0, "{}", h.digest());
        assert_eq!(h.compaction_failures, 0, "{}", h.digest());

        // Plateau: the largest post-warm-up sample must stay within a
        // small constant factor of the smallest — growth proportional
        // to history would blow well past this over ~20 windows.
        let bound = |name: &str, samples: &[usize]| {
            let lo = *samples.iter().min().unwrap();
            let hi = *samples.iter().max().unwrap();
            assert!(
                hi <= lo.saturating_mul(3).max(lo + 64),
                "{name} grew with history: min {lo}, max {hi} (samples {samples:?})"
            );
        };
        bound("state-dir bytes", &state_sizes);
        bound("live fragments", &fragments);
        bound("replay index", &index_sizes);
        drop(fs);
        svc.state_fingerprint()
    };

    let reference = run(1);
    for threads in [2usize, 8] {
        assert_eq!(
            run(threads),
            reference,
            "windowed state diverged at threads={threads}"
        );
    }
}

/// The unbounded-`applied.ids` regression (the pre-retention index kept
/// every ID forever): after thousands of windowed batches, both the
/// in-memory replay index and its on-disk file must be O(live set).
#[test]
fn replay_index_stays_bounded_over_thousands_of_batches() {
    let network = net();
    const MANY: u64 = 10_000;
    let mut config = cfg();
    config.checkpoint_every_batches = 50;
    let (svc, fs) = soak(&network, config, MANY, |_, _, _| {});

    let h = svc.health();
    assert_eq!(h.applied, MANY, "{}", h.digest());
    let index_len = svc.replay_index_len();
    assert!(
        index_len as u64 <= 2 * 50 + 16,
        "replay index grew with history: {index_len} entries after {MANY} batches"
    );
    let ids_bytes = fs
        .read(Path::new("/state/applied.ids"))
        .expect("applied.ids exists")
        .len();
    assert!(
        ids_bytes < 64 * 1024,
        "applied.ids grew with history: {ids_bytes} bytes after {MANY} batches"
    );
    // The duplicate-send contract still holds for everything the index
    // remembers, and re-sending a retired (fully expired) batch cannot
    // change retained state.
    let fingerprint = svc.state_fingerprint();
    drop(svc);
    let mut svc2 = Service::open(&network, cfg(), fs.clone()).unwrap();
    spool::submit(&fs, Path::new("/spool"), "b-00000.batch", &batch(0)).unwrap();
    assert_eq!(svc2.run_drain(64), DrainOutcome::Drained);
    let flows_then = fingerprint.split(";flows=").nth(1).unwrap().to_string();
    let flows_now = svc2
        .state_fingerprint()
        .split(";flows=")
        .nth(1)
        .unwrap()
        .to_string();
    assert_eq!(
        flows_now, flows_then,
        "re-sending a retired batch changed retained flows"
    );
}
