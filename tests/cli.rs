//! End-to-end tests of the `neat` CLI binary: the full
//! gen-network → simulate → cluster → stats workflow through real process
//! invocations (Cargo builds the binary and exposes its path via
//! `CARGO_BIN_EXE_neat`).

use std::path::PathBuf;
use std::process::Command;

fn neat() -> Command {
    Command::new(env!("CARGO_BIN_EXE_neat"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("neat-cli-tests");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

#[test]
fn full_workflow_round_trips() {
    let net_path = tmp("wf_net.txt");
    let data_path = tmp("wf_data.csv");
    let svg_path = tmp("wf_out.svg");
    let json_path = tmp("wf_out.json");

    let out = neat()
        .args([
            "gen-network",
            "--grid",
            "10x10",
            "--seed",
            "5",
            "--out",
            net_path.to_str().unwrap(),
        ])
        .output()
        .expect("run gen-network");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("junctions"));

    let out = neat()
        .args([
            "simulate",
            "--network",
            net_path.to_str().unwrap(),
            "--objects",
            "40",
            "--out",
            data_path.to_str().unwrap(),
        ])
        .output()
        .expect("run simulate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = neat()
        .args([
            "cluster",
            "--network",
            net_path.to_str().unwrap(),
            "--dataset",
            data_path.to_str().unwrap(),
            "--mode",
            "opt",
            "--min-card",
            "3",
            "--epsilon",
            "400",
            "--svg",
            svg_path.to_str().unwrap(),
            "--json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .expect("run cluster");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("opt-NEAT"));
    assert!(stdout.contains("clusters:"));
    let svg = std::fs::read_to_string(&svg_path).expect("svg written");
    assert!(svg.starts_with("<svg"));
    let json = std::fs::read_to_string(&json_path).expect("json written");
    assert!(json.contains("\"flow_clusters\""));

    let out = neat()
        .args([
            "stats",
            "--network",
            net_path.to_str().unwrap(),
            "--dataset",
            data_path.to_str().unwrap(),
        ])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("network:"));
    assert!(stdout.contains("dataset:"));
}

#[test]
fn trace_flag_prints_merge_events() {
    let net_path = tmp("tr_net.txt");
    let data_path = tmp("tr_data.csv");
    assert!(neat()
        .args([
            "gen-network",
            "--grid",
            "8x8",
            "--out",
            net_path.to_str().unwrap()
        ])
        .status()
        .unwrap()
        .success());
    assert!(neat()
        .args([
            "simulate",
            "--network",
            net_path.to_str().unwrap(),
            "--objects",
            "20",
            "--out",
            data_path.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
    let out = neat()
        .args([
            "cluster",
            "--network",
            net_path.to_str().unwrap(),
            "--dataset",
            data_path.to_str().unwrap(),
            "--mode",
            "flow",
            "--min-card",
            "2",
            "--trace",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("phase-2 merge trace:"));
    assert!(stdout.contains("Seed {"));
}

#[test]
fn bad_arguments_fail_with_usage() {
    let out = neat().args(["bogus"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown subcommand"));
    assert!(stderr.contains("usage:"));

    let out = neat()
        .args(["gen-network", "--grid", "oops", "--out", "/tmp/x"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let out = neat()
        .args([
            "cluster",
            "--network",
            "/nonexistent",
            "--dataset",
            "/nonexistent",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));
}

#[test]
fn checkpointed_cluster_resumes_to_identical_output() {
    let net_path = tmp("cp_net.txt");
    let data_path = tmp("cp_data.csv");
    let ckpt_dir = tmp("cp_store");
    let json_a = tmp("cp_a.json");
    let json_b = tmp("cp_b.json");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    assert!(neat()
        .args([
            "gen-network",
            "--grid",
            "6x6",
            "--out",
            net_path.to_str().unwrap()
        ])
        .status()
        .unwrap()
        .success());
    assert!(neat()
        .args([
            "simulate",
            "--network",
            net_path.to_str().unwrap(),
            "--objects",
            "30",
            "--out",
            data_path.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());

    let cluster_args = |json: &PathBuf| {
        vec![
            "cluster".to_string(),
            "--network".into(),
            net_path.to_str().unwrap().into(),
            "--dataset".into(),
            data_path.to_str().unwrap().into(),
            "--min-card".into(),
            "3".into(),
            "--epsilon".into(),
            "500".into(),
            "--checkpoint-dir".into(),
            ckpt_dir.to_str().unwrap().into(),
            "--batches".into(),
            "4".into(),
            "--json".into(),
            json.to_str().unwrap().into(),
        ]
    };

    let out = neat().args(cluster_args(&json_a)).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("clustered incrementally"));
    // The store holds a journal and at least one snapshot.
    let names: Vec<String> = std::fs::read_dir(&ckpt_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names
            .iter()
            .any(|n| n.starts_with("journal") && n.ends_with(".neatlog")),
        "{names:?}"
    );
    assert!(names.iter().any(|n| n.ends_with(".neatsnap")), "{names:?}");

    // Resuming over a completed run skips every batch and reproduces the
    // same machine-readable output byte for byte.
    let mut args = cluster_args(&json_b);
    args.push("--resume".into());
    let out = neat().args(args).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("resumed from"), "{stdout}");
    assert!(stdout.contains("skipping 4 already-applied"), "{stdout}");
    assert_eq!(
        std::fs::read(&json_a).unwrap(),
        std::fs::read(&json_b).unwrap(),
        "resumed run must reproduce the original output"
    );

    // --resume without a store to resume from is a clean restart, and
    // --resume without --checkpoint-dir is a usage error.
    let out = neat()
        .args([
            "cluster",
            "--network",
            net_path.to_str().unwrap(),
            "--dataset",
            data_path.to_str().unwrap(),
            "--resume",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--resume requires --checkpoint-dir"));
}

#[test]
fn budgeted_cluster_degrades_with_exit_code_3() {
    let net_path = tmp("bd_net.txt");
    let data_path = tmp("bd_data.csv");
    let json_path = tmp("bd_out.json");
    assert!(neat()
        .args([
            "gen-network",
            "--grid",
            "8x8",
            "--out",
            net_path.to_str().unwrap()
        ])
        .status()
        .unwrap()
        .success());
    assert!(neat()
        .args([
            "simulate",
            "--network",
            net_path.to_str().unwrap(),
            "--objects",
            "30",
            "--out",
            data_path.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());

    let cluster = |extra: &[&str], json: &PathBuf| {
        let mut args = vec![
            "cluster",
            "--network",
            net_path.to_str().unwrap(),
            "--dataset",
            data_path.to_str().unwrap(),
            "--mode",
            "opt",
            "--min-card",
            "3",
            "--epsilon",
            "400",
            "--json",
            json.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        neat().args(&args).output().unwrap()
    };

    // A tiny op budget forces degradation: exit code 3, JSON says why.
    let out = cluster(&["--max-ops", "2"], &json_path);
    assert_eq!(
        out.status.code(),
        Some(3),
        "degraded run must exit 3: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("overrun: op-budget-exhausted"), "{stdout}");
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"completeness\""), "{json}");
    assert!(
        json.contains("\"interrupt\": \"op-budget-exhausted\""),
        "{json}"
    );
    assert!(json.contains("\"requested\": \"opt-NEAT\""), "{json}");
    assert!(json.contains("\"delivered\": \"base-NEAT\""), "{json}");

    // --on-overrun fail turns the same overrun into a hard error.
    let out = cluster(&["--max-ops", "2", "--on-overrun", "fail"], &json_path);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("run interrupted"));

    // A generous deadline leaves the run complete: exit 0 and the JSON
    // matches an uncontrolled run's payload plus the completeness block.
    let json_free = tmp("bd_free.json");
    let out = cluster(&[], &json_free);
    assert_eq!(out.status.code(), Some(0));
    let json_budgeted = tmp("bd_budgeted.json");
    let out = cluster(
        &["--deadline", "1h", "--max-settled-nodes", "100000000"],
        &json_budgeted,
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let budgeted = std::fs::read_to_string(&json_budgeted).unwrap();
    assert!(budgeted.contains("\"phase3\": \"complete\""), "{budgeted}");
    assert!(budgeted.contains("\"interrupt\": null"), "{budgeted}");
    let free = std::fs::read_to_string(&json_free).unwrap();
    // Everything before the added metadata is byte-identical.
    assert!(budgeted.starts_with(free.trim_end_matches(['}', '\n'])));
}

#[test]
fn quarantine_cap_is_honoured_by_the_cli() {
    let net_path = tmp("qc_net.txt");
    let data_path = tmp("qc_data.csv");
    let q_path = tmp("qc_quarantine.csv");
    assert!(neat()
        .args([
            "gen-network",
            "--grid",
            "6x6",
            "--out",
            net_path.to_str().unwrap()
        ])
        .status()
        .unwrap()
        .success());
    // Inject faults so sanitization actually quarantines trajectories.
    assert!(neat()
        .args([
            "simulate",
            "--network",
            net_path.to_str().unwrap(),
            "--objects",
            "30",
            "--faults",
            "teleport=0.5",
            "--out",
            data_path.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
    let out = neat()
        .args([
            "cluster",
            "--network",
            net_path.to_str().unwrap(),
            "--dataset",
            data_path.to_str().unwrap(),
            "--mode",
            "flow",
            "--min-card",
            "2",
            "--on-error",
            "skip",
            "--quarantine",
            q_path.to_str().unwrap(),
            "--quarantine-max-bytes",
            "200",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let q = std::fs::read(&q_path).unwrap();
    assert!(
        q.len() <= 300,
        "quarantine file must respect the byte budget plus trailer, got {}",
        q.len()
    );
    let text = String::from_utf8_lossy(&q);
    assert!(text.starts_with("# quarantine:"), "{text}");
}

#[test]
fn deterministic_outputs_for_same_seed() {
    let a = tmp("det_a.txt");
    let b = tmp("det_b.txt");
    for p in [&a, &b] {
        assert!(neat()
            .args([
                "gen-network",
                "--map",
                "atl",
                "--seed",
                "9",
                "--out",
                p.to_str().unwrap(),
            ])
            .status()
            .unwrap()
            .success());
    }
    let fa = std::fs::read(&a).unwrap();
    let fb = std::fs::read(&b).unwrap();
    assert_eq!(fa, fb, "same seed must produce identical network files");
}

/// A scratch directory tree for one serve test, wiped up front so
/// reruns start clean.
fn serve_dirs(name: &str) -> (PathBuf, PathBuf, PathBuf, PathBuf) {
    let root = std::env::temp_dir().join("neat-cli-tests").join(name);
    let _ = std::fs::remove_dir_all(&root);
    let spool = root.join("spool");
    let state = root.join("state");
    let quarantine = root.join("quarantine");
    std::fs::create_dir_all(&spool).expect("create spool dir");
    (root, spool, state, quarantine)
}

fn serve_network(root: &std::path::Path) -> PathBuf {
    let net_path = root.join("net.txt");
    assert!(neat()
        .args([
            "gen-network",
            "--grid",
            "6x6",
            "--seed",
            "11",
            "--out",
            net_path.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
    net_path
}

/// Drops a simulated batch file into the spool (simulate writes
/// atomically — temp file + rename — which is exactly the producer-side
/// handoff convention the daemon expects).
fn submit_batch(net: &std::path::Path, spool: &std::path::Path, id: &str, seed: &str) {
    assert!(neat()
        .args([
            "simulate",
            "--network",
            net.to_str().unwrap(),
            "--objects",
            "12",
            "--seed",
            seed,
            "--out",
            spool.join(id).to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
}

#[test]
fn serve_drains_spool_and_exits_clean() {
    let (root, spool, state, quarantine) = serve_dirs("serve_clean");
    let net = serve_network(&root);
    submit_batch(&net, &spool, "b-001.batch", "21");
    submit_batch(&net, &spool, "b-002.batch", "22");

    let serve_args = |extra: &[&str]| {
        let mut v = vec![
            "serve".to_string(),
            "--network".into(),
            net.to_str().unwrap().into(),
            "--spool".into(),
            spool.to_str().unwrap().into(),
            "--state".into(),
            state.to_str().unwrap().into(),
            "--quarantine".into(),
            quarantine.to_str().unwrap().into(),
            "--min-card".into(),
            "2".into(),
            "--drain".into(),
            "--max-ticks".into(),
            "200".into(),
        ];
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    };

    let out = neat().args(serve_args(&[])).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean drain must exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Both batches consumed, state checkpointed, nothing quarantined.
    assert!(std::fs::read_dir(&spool).unwrap().next().is_none());
    assert!(std::fs::read_dir(&state).unwrap().next().is_some());
    assert!(!quarantine.join("reasons.log").exists());

    // A second drain over the same state dir resumes and exits clean
    // (kill -9 between runs is indistinguishable from this).
    let out = neat().args(serve_args(&[])).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "resumed drain must exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn serve_poisons_garbage_batch_and_exits_degraded() {
    let (root, spool, state, quarantine) = serve_dirs("serve_poison");
    let net = serve_network(&root);
    submit_batch(&net, &spool, "b-001.batch", "31");
    std::fs::write(spool.join("b-900.garbage"), "definitely,not\na batch\n").unwrap();

    let out = neat()
        .args([
            "serve",
            "--network",
            net.to_str().unwrap(),
            "--spool",
            spool.to_str().unwrap(),
            "--state",
            state.to_str().unwrap(),
            "--quarantine",
            quarantine.to_str().unwrap(),
            "--min-card",
            "2",
            "--drain",
            "--max-ticks",
            "200",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(3),
        "poisoned batch must exit degraded (3): {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(quarantine.join("b-900.garbage").exists());
    let reasons = std::fs::read_to_string(quarantine.join("reasons.log")).unwrap();
    assert!(reasons.contains("b-900.garbage\tpoison"), "{reasons}");
}

#[test]
fn serve_mismatched_state_dir_exits_unrecoverable() {
    let (root, spool, state, quarantine) = serve_dirs("serve_mismatch");
    let net = serve_network(&root);
    submit_batch(&net, &spool, "b-001.batch", "41");

    // First run writes a checkpoint bound to this network + config.
    let mut base = vec![
        "serve".to_string(),
        "--network".into(),
        net.to_str().unwrap().into(),
        "--spool".into(),
        spool.to_str().unwrap().into(),
        "--state".into(),
        state.to_str().unwrap().into(),
        "--quarantine".into(),
        quarantine.to_str().unwrap().into(),
        "--min-card".into(),
        "2".into(),
        "--drain".into(),
        "--max-ticks".into(),
        "200".into(),
    ];
    let out = neat().args(&base).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Restarting against the same state dir with a different road
    // network is unrecoverable-by-restart: exit 4, not a crash loop.
    let other_net = root.join("other_net.txt");
    assert!(neat()
        .args([
            "gen-network",
            "--grid",
            "5x5",
            "--seed",
            "12",
            "--out",
            other_net.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
    base[2] = other_net.to_str().unwrap().into();
    let out = neat().args(&base).output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(4),
        "mismatched state dir must exit 4: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unrecoverable"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}
