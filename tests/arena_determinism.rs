//! Phase-1 bit-identity for the arena fast path: the flat SoA front end
//! claims the exact same FP operation order per sample at every thread
//! count, so base clusters — fragment endpoints included, bit for bit —
//! and the deterministic work counters must not depend on `threads`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use neat_repro::mobisim::{generate_dataset, SimConfig};
use neat_repro::neat::phase1::{
    form_base_clusters_parallel_with_policy, form_base_clusters_with_policy,
};
use neat_repro::neat::ErrorPolicy;
use neat_repro::rnet::netgen::{generate_grid_network, GridNetworkConfig};
use neat_repro::rnet::RoadNetwork;
use neat_repro::traj::{Dataset, Trajectory};
use std::sync::OnceLock;

/// The chaos fixture shared with `parallel_determinism`: 4×4 grid,
/// 18 objects, seed 7.
fn chaos_fixture() -> &'static (RoadNetwork, Dataset) {
    static FIXTURE: OnceLock<(RoadNetwork, Dataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let net = generate_grid_network(&GridNetworkConfig::small_test(4, 4), 7);
        let config = SimConfig {
            num_objects: 18,
            num_hotspots: 2,
            num_destinations: 2,
            sample_period_s: 4.0,
            ..SimConfig::default()
        };
        let data = generate_dataset(&net, &config, 7, "chaos");
        (net, data)
    })
}

/// Phase 1 on the chaos fixture is byte-identical across thread counts
/// {1, 2, 8}, for both junction modes and every error policy, and the
/// `samples_scanned` counter equals the dataset's total sample count.
#[test]
fn phase1_is_bit_identical_across_threads_on_the_chaos_fixture() {
    let (net, data) = chaos_fixture();
    let total_samples: usize = data.trajectories().iter().map(Trajectory::len).sum();
    for insert_junctions in [false, true] {
        for policy in [ErrorPolicy::Strict, ErrorPolicy::Skip, ErrorPolicy::Repair] {
            let (reference, ref_counters) =
                form_base_clusters_with_policy(net, data, insert_junctions, policy)
                    .expect("sequential phase 1");
            assert_eq!(reference.samples_scanned, total_samples);
            let want = format!("{reference:#?}\n{ref_counters:#?}");
            for threads in [1usize, 2, 8] {
                let (got, counters) = form_base_clusters_parallel_with_policy(
                    net,
                    data,
                    insert_junctions,
                    threads,
                    policy,
                )
                .expect("parallel phase 1");
                assert_eq!(
                    format!("{got:#?}\n{counters:#?}"),
                    want,
                    "phase 1 diverged: junctions={insert_junctions} {policy:?} threads={threads}"
                );
            }
        }
    }
}
