//! Fault-injection matrix and sanitizer property tests: every fault class
//! crossed with every error policy must either fail loudly (Strict) or
//! degrade gracefully (Skip/Repair) with counters that account for every
//! trajectory, and repairing is idempotent.

use neat_repro::mobisim::faults::{inject_faults, FaultConfig};
use neat_repro::mobisim::{generate_dataset, SimConfig};
use neat_repro::neat::{Mode, Neat, NeatConfig};
use neat_repro::rnet::netgen::{generate_grid_network, GridNetworkConfig};
use neat_repro::rnet::{Point, RoadNetwork, SegmentId};
use neat_repro::traj::sanitize::{ErrorPolicy, RawFix, Sanitizer};
use neat_repro::traj::Dataset;
use proptest::prelude::*;

fn small_net(seed: u64) -> RoadNetwork {
    let mut cfg = GridNetworkConfig::small_test(8, 8);
    cfg.segment_ratio = 1.5;
    generate_grid_network(&cfg, seed)
}

fn sim(seed: u64, objects: usize) -> (RoadNetwork, Dataset) {
    let net = small_net(seed);
    let data = generate_dataset(
        &net,
        &SimConfig {
            num_objects: objects,
            ..SimConfig::default()
        },
        seed.wrapping_add(1),
        "faulty",
    );
    (net, data)
}

/// Every single-fault class and the full mix, under Skip and Repair: the
/// sanitizer must complete, its counters must account for every input
/// trajectory, and opt-NEAT must run the surviving dataset to completion.
#[test]
fn fault_matrix_degrades_gracefully_under_skip_and_repair() {
    let (net, data) = sim(3, 24);
    let neat = Neat::new(&net, NeatConfig::default());
    let specs = [
        "dropout=0.4",
        "dup=0.6",
        "reorder=0.5",
        "teleport=0.4",
        "truncate=0.3",
        "dropout=0.2,dup=0.3,reorder=0.3,teleport=0.2,truncate=0.1",
    ];
    for spec in specs {
        let config = FaultConfig::parse(spec).unwrap();
        let (fixes, log) = inject_faults(&data, &config, 7);
        assert!(log.total_faults() > 0, "seed produced no faults for {spec}");
        for policy in [ErrorPolicy::Skip, ErrorPolicy::Repair] {
            let out = Sanitizer::with_policy(policy)
                .sanitize_fixes("m", fixes.clone())
                .unwrap_or_else(|e| panic!("{} must not fail on {spec}: {e}", policy.name()));
            let s = &out.summary;
            assert_eq!(
                s.clean + s.repaired + s.quarantined,
                s.trajectories_in,
                "unaccounted trajectories for {spec}/{}",
                policy.name()
            );
            assert_eq!(out.quarantined.len(), s.quarantined);
            assert_eq!(out.dataset.total_points(), s.points_out);
            assert_eq!(out.dataset.len(), s.clean + s.repaired + s.splits);
            match policy {
                ErrorPolicy::Skip => {
                    assert_eq!(s.repaired, 0);
                    // Only fault-affected trajectories may be rejected.
                    for q in &out.quarantined {
                        assert!(
                            log.affected.contains(&q.id.value()),
                            "{} quarantined without a fault under {spec}",
                            q.id
                        );
                    }
                }
                ErrorPolicy::Repair => {
                    // Repairing what was already repaired changes nothing.
                    let again = Sanitizer::with_policy(policy)
                        .sanitize_dataset(&out.dataset)
                        .unwrap();
                    assert!(
                        again.summary.is_clean(),
                        "repair not idempotent for {spec}: {}",
                        again.summary.digest()
                    );
                }
                ErrorPolicy::Strict => unreachable!(),
            }
            // The surviving dataset clusters end to end; its segments all
            // come from the simulator's network, so no degradation left.
            let result = neat
                .run_with_policy(&out.dataset, Mode::Opt, policy)
                .unwrap_or_else(|e| panic!("opt-NEAT failed for {spec}/{}: {e}", policy.name()));
            assert!(result.resilience.is_clean());
        }
    }
}

/// Strict ingestion rejects streams whose faults break trajectory
/// invariants, and accepts fault classes that merely degrade quality
/// (dropout keeps order, teleports keep timestamps).
#[test]
fn fault_matrix_strict_policy_fails_loudly_or_passes_through() {
    let (_, data) = sim(3, 24);
    let strict = Sanitizer::with_policy(ErrorPolicy::Strict);
    for spec in ["dup=0.6", "reorder=0.5", "truncate=0.3"] {
        let config = FaultConfig::parse(spec).unwrap();
        let (fixes, log) = inject_faults(&data, &config, 7);
        assert!(
            log.stale_duplicated + log.reordered + log.truncated > 0,
            "seed produced no invariant-breaking fault for {spec}"
        );
        assert!(
            strict.sanitize_fixes("m", fixes).is_err(),
            "strict must reject {spec}"
        );
    }
    for spec in ["dropout=0.4", "teleport=0.4"] {
        let config = FaultConfig::parse(spec).unwrap();
        let (fixes, log) = inject_faults(&data, &config, 7);
        assert!(log.total_faults() > 0);
        let out = strict.sanitize_fixes("m", fixes).unwrap_or_else(|e| {
            panic!("{spec} preserves trajectory invariants, strict must pass: {e}")
        });
        assert_eq!(out.dataset.len(), out.summary.trajectories_in);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Idempotence on realistic corruption: repairing a faulted simulated
    /// stream twice gives exactly the dataset of repairing it once, and
    /// the second pass finds nothing to fix.
    #[test]
    fn prop_repair_is_idempotent_on_faulted_streams(
        seed in 0u64..8,
        objects in 4usize..16,
        dropout in 0.0f64..0.5,
        duplicate in 0.0f64..0.5,
        reorder in 0.0f64..0.5,
        teleport in 0.0f64..0.5,
        truncate in 0.0f64..0.3,
    ) {
        let (_, data) = sim(seed, objects);
        let config = FaultConfig { dropout, duplicate, reorder, teleport, truncate };
        let (fixes, _) = inject_faults(&data, &config, seed ^ 0x5eed);
        let sanitizer = Sanitizer::with_policy(ErrorPolicy::Repair);
        let once = sanitizer.sanitize_fixes("p", fixes).unwrap();
        let twice = sanitizer.sanitize_dataset(&once.dataset).unwrap();
        prop_assert!(
            twice.summary.is_clean(),
            "second pass not clean: {}", twice.summary.digest()
        );
        prop_assert_eq!(&twice.dataset, &once.dataset);
    }

    /// Total-function guarantee on adversarial input: arbitrary fix
    /// streams never panic any policy, Skip/Repair always produce a valid
    /// dataset with consistent counters, and the repaired output survives
    /// a second screening untouched and clusters end to end.
    #[test]
    fn prop_sanitizer_is_total_on_arbitrary_fixes(
        raw in proptest::collection::vec(
            (0u64..6, 0usize..200, -1.0e5f64..1.0e5, -1.0e5f64..1.0e5, -1.0e3f64..1.0e4),
            0..120,
        ),
    ) {
        let fixes: Vec<RawFix> = raw
            .iter()
            .map(|&(id, seg, x, y, t)| {
                RawFix::new(id, SegmentId::new(seg), Point::new(x, y), t)
            })
            .collect();
        // Strict may accept or reject, but must not panic.
        let _ = Sanitizer::with_policy(ErrorPolicy::Strict)
            .sanitize_fixes("arb", fixes.clone());
        for policy in [ErrorPolicy::Skip, ErrorPolicy::Repair] {
            let out = Sanitizer::with_policy(policy)
                .sanitize_fixes("arb", fixes.clone())
                .unwrap();
            let s = &out.summary;
            prop_assert_eq!(s.clean + s.repaired + s.quarantined, s.trajectories_in);
            prop_assert_eq!(out.dataset.total_points(), s.points_out);
            for tr in out.dataset.trajectories() {
                prop_assert!(tr.len() >= 2);
            }
        }
        let sanitizer = Sanitizer::with_policy(ErrorPolicy::Repair);
        let once = sanitizer.sanitize_fixes("arb", fixes).unwrap();
        let twice = sanitizer.sanitize_dataset(&once.dataset).unwrap();
        prop_assert!(
            twice.summary.is_clean(),
            "second pass not clean: {}", twice.summary.digest()
        );
        prop_assert_eq!(&twice.dataset, &once.dataset);
        // Arbitrary segment ids are mostly unknown to the network; the
        // pipeline must degrade, not abort.
        let net = small_net(0);
        let result = Neat::new(&net, NeatConfig::default())
            .run_with_policy(&once.dataset, Mode::Opt, ErrorPolicy::Repair);
        prop_assert!(result.is_ok(), "pipeline aborted: {:?}", result.err());
    }
}
