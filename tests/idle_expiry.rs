//! Idle-stream wall-clock retention (`SvcConfig::idle_expiry`).
//!
//! A windowed service normally advances its watermark only when a batch
//! is applied, so a stream that goes quiet keeps its last window of
//! history forever and never fires the closing drift events. With
//! `idle_expiry` on, idle ticks extrapolate the stream's observation
//! time from the injected [`Clock`] (one wall-clock second = one
//! trajectory-time unit, counted from the newest observation applied)
//! and expire fragments that fall out of the window — journaled exactly
//! like batch-path expiries, so a restart replays them.
//!
//! The suite pins the contract from both sides: drift fires on a quiet
//! stream once enough wall time passes, the advance is gated so a fully
//! quiesced stream returns to Idle (no journal append per poll tick),
//! the journaled expiry survives a restart, and the default (windowless
//! or `idle_expiry = false`) service is bit-for-bit unaffected by the
//! clock.

use neat_repro::durability::{Fs, MemFs};
use neat_repro::neat::NeatConfig;
use neat_repro::rnet::netgen::chain_network;
use neat_repro::rnet::{Point, RoadLocation, RoadNetwork, SegmentId};
use neat_repro::runctl::{CancelToken, Clock};
use neat_repro::svc::{spool, DrainOutcome, NoFaults, Service, SvcConfig, TickOutcome};
use neat_repro::traj::{Dataset, Trajectory, TrajectoryId};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const WINDOW: f64 = 150.0;

/// A clock the test sets explicitly, in milliseconds.
#[derive(Default)]
struct ManualClock(AtomicU64);

impl ManualClock {
    fn set(&self, ms: u64) {
        self.0.store(ms, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_millis(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

fn net() -> RoadNetwork {
    chain_network(6, 100.0, 13.9)
}

fn cfg(idle_expiry: bool, window: Option<f64>) -> SvcConfig {
    let mut c = SvcConfig::new("/spool", "/state", "/quarantine");
    c.neat = NeatConfig {
        min_card: 1,
        ..NeatConfig::default()
    };
    c.checkpoint_every_batches = 1;
    c.window = window;
    c.idle_expiry = idle_expiry;
    c
}

/// Two short trajectories whose observations span `[t0, t0 + 60]`.
fn batch(seed: u64, t0: f64) -> Dataset {
    let mut d = Dataset::new("b");
    for t in 0..2u64 {
        let off = ((seed * 2 + t) % 40) as f64;
        d.push(
            Trajectory::new(
                TrajectoryId::new(seed * 10 + t),
                vec![
                    RoadLocation::new(SegmentId::new(0), Point::new(10.0 + off, 0.0), t0),
                    RoadLocation::new(SegmentId::new(1), Point::new(150.0, 0.0), t0 + 30.0),
                    RoadLocation::new(SegmentId::new(2), Point::new(250.0 + off, 0.0), t0 + 60.0),
                ],
            )
            .unwrap(),
        );
    }
    d
}

fn seed_one_batch(fs: &MemFs) {
    fs.create_dir_all(Path::new("/spool")).unwrap();
    spool::submit(fs, Path::new("/spool"), "b-000.batch", &batch(0, 0.0)).unwrap();
}

fn open<'n>(
    network: &'n RoadNetwork,
    config: SvcConfig,
    fs: &MemFs,
    clock: &Arc<ManualClock>,
) -> Service<'n, MemFs> {
    Service::open_with(
        network,
        config,
        fs.clone(),
        Arc::new(NoFaults),
        Some(Arc::clone(clock) as Arc<dyn Clock>),
        CancelToken::new(),
    )
    .unwrap()
}

#[test]
fn quiet_stream_expires_on_wall_clock_and_requiesces() {
    let network = net();
    let fs = MemFs::new();
    seed_one_batch(&fs);
    let clock = Arc::new(ManualClock::default());
    let mut svc = open(&network, cfg(true, Some(WINDOW)), &fs, &clock);

    assert_eq!(svc.run_drain(64), DrainOutcome::Drained);
    let h = svc.health();
    assert_eq!(h.applied, 1);
    assert_eq!(
        h.idle_expiries,
        0,
        "no wall time has passed: {}",
        h.digest()
    );
    let live_before = svc.session().live_fragments();
    assert!(live_before > 0, "fixture retained nothing");

    // Idle with no wall-clock progress: nothing to expire, stays Idle.
    assert_eq!(svc.tick(), TickOutcome::Idle);
    assert_eq!(svc.health().idle_expiries, 0);

    // 300 wall-clock seconds after the batch applied, the extrapolated
    // observation time is 60 + 300, putting every retained fragment
    // (last observation <= 60) behind the `360 - 150` watermark.
    clock.set(300_000);
    assert_eq!(svc.tick(), TickOutcome::Worked, "{}", svc.health().digest());
    let h = svc.health();
    assert_eq!(h.idle_expiries, 1, "{}", h.digest());
    assert!(h.expired_fragments > 0, "{}", h.digest());
    assert!(h.drift.total() > 0, "no drift event fired: {}", h.digest());
    let view = svc.query();
    assert_eq!(view.live_fragments, 0, "window did not close");
    assert!(
        view.watermark.is_some_and(|w| w > 0.0),
        "watermark never ticked: {:?}",
        view.watermark
    );

    // The expiry counted toward the checkpoint cadence; after the flush
    // the fully quiesced stream returns to Idle and stays there — no
    // journal append per poll tick, even as wall time keeps passing.
    let mut worked = 0;
    loop {
        match svc.tick() {
            TickOutcome::Worked => worked += 1,
            TickOutcome::Idle => break,
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(worked < 8, "idle expiry never quiesced");
    }
    clock.set(900_000);
    assert_eq!(svc.tick(), TickOutcome::Idle, "quiesced stream woke up");
    assert_eq!(svc.health().idle_expiries, 1, "{}", svc.health().digest());
}

#[test]
fn idle_expiry_is_journaled_and_survives_restart() {
    let network = net();
    let fs = MemFs::new();
    seed_one_batch(&fs);
    let clock = Arc::new(ManualClock::default());

    let fingerprint = {
        let mut svc = open(&network, cfg(true, Some(WINDOW)), &fs, &clock);
        assert_eq!(svc.run_drain(64), DrainOutcome::Drained);
        clock.set(300_000);
        assert_eq!(svc.tick(), TickOutcome::Worked);
        assert_eq!(svc.health().idle_expiries, 1);
        svc.state_fingerprint()
    };

    // A fresh process over the surviving bytes replays the journaled
    // idle expiry and converges to the same state.
    let svc2 = open(&network, cfg(true, Some(WINDOW)), &fs, &clock);
    assert_eq!(
        svc2.state_fingerprint(),
        fingerprint,
        "idle expiry lost across restart (health: {})",
        svc2.health().digest()
    );
}

#[test]
fn late_batch_after_idle_expiry_still_applies() {
    let network = net();
    let fs = MemFs::new();
    seed_one_batch(&fs);
    let clock = Arc::new(ManualClock::default());
    let mut svc = open(&network, cfg(true, Some(WINDOW)), &fs, &clock);
    assert_eq!(svc.run_drain(64), DrainOutcome::Drained);
    clock.set(300_000);
    assert_eq!(svc.tick(), TickOutcome::Worked);

    // Traffic resumes with in-window observations; the batch applies
    // and re-anchors the stream clock.
    let w = svc.query().watermark.unwrap();
    spool::submit(&fs, Path::new("/spool"), "b-001.batch", &batch(1, w + 10.0)).unwrap();
    assert_eq!(svc.run_drain(64), DrainOutcome::Drained);
    let h = svc.health();
    assert_eq!(h.applied, 2, "{}", h.digest());
    assert!(
        svc.session().live_fragments() > 0,
        "in-window batch was expired: {}",
        h.digest()
    );
}

#[test]
fn windowless_and_default_services_ignore_the_clock() {
    let network = net();

    // `idle_expiry` without a window is inert.
    let fs = MemFs::new();
    seed_one_batch(&fs);
    let clock = Arc::new(ManualClock::default());
    let mut svc = open(&network, cfg(true, None), &fs, &clock);
    assert_eq!(svc.run_drain(64), DrainOutcome::Drained);
    clock.set(3_600_000);
    assert_eq!(svc.tick(), TickOutcome::Idle);
    let h = svc.health();
    assert_eq!(h.expiries, 0, "{}", h.digest());
    assert_eq!(h.idle_expiries, 0, "{}", h.digest());

    // A windowed service with the default `idle_expiry = false` keeps
    // the batch-driven-only watermark no matter how much time passes.
    let fs = MemFs::new();
    seed_one_batch(&fs);
    let clock = Arc::new(ManualClock::default());
    let mut svc = open(&network, cfg(false, Some(WINDOW)), &fs, &clock);
    assert_eq!(svc.run_drain(64), DrainOutcome::Drained);
    let baseline = svc.state_fingerprint();
    clock.set(3_600_000);
    assert_eq!(svc.tick(), TickOutcome::Idle);
    assert_eq!(svc.health().idle_expiries, 0);
    assert_eq!(
        svc.state_fingerprint(),
        baseline,
        "default service state moved with the clock"
    );
}
