//! Regression: resuming from a checkpoint mid-stream must be
//! observationally identical to running straight through — for the flow
//! clusters (flow-NEAT) and the refined trajectory clusters (opt-NEAT)
//! alike, on a seeded mobisim dataset, across interruption points and
//! configurations.

use neat_repro::durability::MemFs;
use neat_repro::mobisim::{generate_dataset, SimConfig};
use neat_repro::neat::{CheckpointStore, ErrorPolicy, IncrementalNeat, NeatConfig, RouteDistance};
use neat_repro::rnet::netgen::{generate_grid_network, GridNetworkConfig};
use neat_repro::rnet::RoadNetwork;
use neat_repro::traj::Dataset;

const BATCHES: usize = 4;

fn fixture(seed: u64) -> (RoadNetwork, Vec<Dataset>) {
    let net = generate_grid_network(&GridNetworkConfig::small_test(5, 5), seed);
    let sim = SimConfig {
        num_objects: 30,
        num_hotspots: 2,
        num_destinations: 3,
        sample_period_s: 3.0,
        ..SimConfig::default()
    };
    let data = generate_dataset(&net, &sim, seed, "resume-det");
    (net.clone(), data.split_windows(BATCHES))
}

/// Flow-NEAT view: the retained flow clusters.
fn flow_fingerprint(s: &IncrementalNeat<'_>) -> String {
    format!("{:#?}", s.flow_clusters())
}

/// Opt-NEAT view: the fully refined trajectory clusters.
fn opt_fingerprint(s: &IncrementalNeat<'_>) -> String {
    format!("{:#?}", s.current_clusters().expect("refinement succeeds"))
}

/// Runs all batches straight through, no persistence.
fn straight_through<'n>(
    net: &'n RoadNetwork,
    config: NeatConfig,
    windows: &[Dataset],
    policy: ErrorPolicy,
) -> IncrementalNeat<'n> {
    let mut s = IncrementalNeat::new(net, config);
    for w in windows {
        s.ingest_with_policy(w, policy).expect("clean ingest");
    }
    s
}

/// Runs to `interrupt_after` batches with checkpointing, drops the
/// session (the "kill"), resumes from the store and finishes.
fn interrupted<'n>(
    net: &'n RoadNetwork,
    config: NeatConfig,
    windows: &[Dataset],
    policy: ErrorPolicy,
    interrupt_after: usize,
) -> IncrementalNeat<'n> {
    let fs = MemFs::new();
    let store = CheckpointStore::open(fs.clone(), "/det/ckpt").expect("open store");
    {
        let mut first = IncrementalNeat::new(net, config);
        for w in &windows[..interrupt_after] {
            first.ingest_logged(w, policy, &store).expect("ingest");
        }
        first.save_checkpoint(&store).expect("checkpoint");
        // `first` is dropped here without seeing the remaining batches.
    }
    let store = CheckpointStore::open(fs, "/det/ckpt").expect("reopen store");
    let (mut resumed, report) =
        IncrementalNeat::resume(net, config, &store).expect("resume succeeds");
    assert_eq!(resumed.batches(), interrupt_after);
    assert_eq!(report.snapshot_seq, Some(interrupt_after as u64));
    for w in &windows[interrupt_after..] {
        resumed.ingest_logged(w, policy, &store).expect("ingest");
    }
    resumed
}

fn assert_resume_deterministic(config: NeatConfig, policy: ErrorPolicy, seed: u64) {
    let (net, windows) = fixture(seed);
    let reference = straight_through(&net, config, &windows, policy);
    let ref_flows = flow_fingerprint(&reference);
    let ref_opt = opt_fingerprint(&reference);
    for interrupt_after in 1..BATCHES {
        let resumed = interrupted(&net, config, &windows, policy, interrupt_after);
        assert_eq!(
            flow_fingerprint(&resumed),
            ref_flows,
            "flow-NEAT diverged when interrupted after batch {interrupt_after}"
        );
        assert_eq!(
            opt_fingerprint(&resumed),
            ref_opt,
            "opt-NEAT diverged when interrupted after batch {interrupt_after}"
        );
        assert_eq!(resumed.batches(), BATCHES);
    }
}

#[test]
fn flow_and_opt_neat_resume_deterministically_default_config() {
    let config = NeatConfig {
        min_card: 3,
        epsilon: 600.0,
        ..NeatConfig::default()
    };
    assert_resume_deterministic(config, ErrorPolicy::Strict, 42);
}

#[test]
fn resume_deterministic_without_elb_and_full_route() {
    // A deliberately different parameterization: ELB pruning off and
    // full-route distances, so the resumed phase-3 refinement exercises
    // the other code paths too.
    let config = NeatConfig {
        min_card: 2,
        epsilon: 450.0,
        use_elb: false,
        route_distance: RouteDistance::FullRoute,
        ..NeatConfig::default()
    };
    assert_resume_deterministic(config, ErrorPolicy::Skip, 7);
}

#[test]
fn resume_deterministic_under_parallel_phase1() {
    // threads is excluded from the config hash by design: the
    // parallel path is bit-identical, so a checkpoint written by a
    // single-threaded run must resume cleanly into a threaded one.
    let (net, windows) = fixture(42);
    let serial = NeatConfig {
        min_card: 3,
        epsilon: 600.0,
        threads: 1,
        ..NeatConfig::default()
    };
    let threaded = NeatConfig {
        threads: 4,
        ..serial
    };
    let reference = straight_through(&net, serial, &windows, ErrorPolicy::Strict);

    let fs = MemFs::new();
    let store = CheckpointStore::open(fs.clone(), "/det/threads").expect("open");
    {
        let mut first = IncrementalNeat::new(&net, serial);
        for w in &windows[..2] {
            first
                .ingest_logged(w, ErrorPolicy::Strict, &store)
                .expect("ingest");
        }
        first.save_checkpoint(&store).expect("checkpoint");
    }
    let (mut resumed, _) =
        IncrementalNeat::resume(&net, threaded, &store).expect("thread-count change resumes");
    for w in &windows[2..] {
        resumed
            .ingest_logged(w, ErrorPolicy::Strict, &store)
            .expect("ingest");
    }
    assert_eq!(flow_fingerprint(&resumed), flow_fingerprint(&reference));
    assert_eq!(opt_fingerprint(&resumed), opt_fingerprint(&reference));
}
