//! Network chaos harness for the framed TCP ingestion front end.
//!
//! In-process matrix (real sockets, `MemFs` storage, deterministic
//! assertions):
//!
//! * **protocol abuse** — torn frames, truncated sends, CRC corruption,
//!   mid-frame connection kills, reply-kind confusion: the server
//!   answers `Reject` or closes, never crashes, and keeps serving;
//! * **idempotency** — duplicate sends of an applied batch return `Ack`
//!   without re-applying;
//! * **bulkheads** — a slowloris connection on tenant A never delays
//!   tenant B's acks; the connection cap refuses extras with `Shed`;
//! * **interleaving** — concurrent pushes across tenants produce
//!   byte-identical per-tenant states to solo sequential runs;
//! * **abrupt-stop recovery** — a server dropped without drain loses
//!   nothing durable: a fresh router over the same storage re-acks
//!   duplicates and converges to the uninterrupted reference state.
//!
//! Process matrix (real `neatd` subprocess, real disk): `kill -9` mid
//! push storm, restart on the same directories, re-push everything —
//! every batch acknowledged, applied exactly once, clean drain exit.

use neat_repro::durability::MemFs;
use neat_repro::neat::NeatConfig;
use neat_repro::rnet::netgen::chain_network;
use neat_repro::rnet::{io as netio, Point, RoadLocation, RoadNetwork, SegmentId};
use neat_repro::runctl::{CancelToken, Clock, SystemClock};
use neat_repro::svc::frame::{
    frame, write_frame, FrameReader, Poll, Reply, Request, DEFAULT_MAX_FRAME,
};
use neat_repro::svc::{DrainOutcome, NetConfig, NetServer, SvcConfig, TenantConfig, TenantRouter};
use neat_repro::traj::{io as trajio, Dataset, Trajectory, TrajectoryId};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn net() -> RoadNetwork {
    chain_network(6, 100.0, 13.9)
}

fn roots() -> SvcConfig {
    let mut c = SvcConfig::new("/spool", "/state", "/quarantine");
    c.neat = NeatConfig {
        min_card: 1,
        ..NeatConfig::default()
    };
    c.checkpoint_every_batches = 2;
    c
}

fn tenant_cfg() -> TenantConfig {
    TenantConfig::new(roots())
}

fn payload(seed: u64) -> Vec<u8> {
    let mut d = Dataset::new("b");
    for t in 0..2u64 {
        let off = ((seed * 2 + t) % 40) as f64;
        d.push(
            Trajectory::new(
                TrajectoryId::new(seed * 10 + t),
                vec![
                    RoadLocation::new(SegmentId::new(0), Point::new(10.0 + off, 0.0), 0.0),
                    RoadLocation::new(SegmentId::new(1), Point::new(150.0, 0.0), 30.0),
                    RoadLocation::new(SegmentId::new(2), Point::new(250.0 + off, 0.0), 60.0),
                ],
            )
            .unwrap(),
        );
    }
    let mut buf = Vec::new();
    trajio::write_dataset(&d, &mut buf).unwrap();
    buf
}

/// Runs `body` against a served `NetServer` over `fs`, then cancels,
/// joins every handler, and returns the router for post-mortem
/// assertions.
fn with_server<R>(
    fs: MemFs,
    tcfg: TenantConfig,
    ncfg: NetConfig,
    body: impl FnOnce(SocketAddr, &CancelToken) -> R,
) -> (R, TenantRouter<'static, MemFs>) {
    // The network must outlive the returned router; tests run to
    // completion and exit, so leaking one small network per test is the
    // simplest sound lifetime.
    let net: &'static RoadNetwork = Box::leak(Box::new(net()));
    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
    let cancel = CancelToken::new();
    let router = TenantRouter::new(net, fs, tcfg, Arc::clone(&clock), cancel.observer());
    let server = NetServer::new(router, ncfg, clock, cancel.observer());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let out = std::thread::scope(|s| {
        let serving = s.spawn(|| server.serve(&listener));
        let out = body(addr, &cancel);
        cancel.cancel();
        serving.join().unwrap().unwrap();
        out
    });
    (out, server.into_router())
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream
}

fn read_reply(stream: &mut TcpStream) -> Result<Reply, String> {
    let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
    read_reply_from(&mut reader, stream)
}

/// Reads one reply through a caller-owned reader — required when
/// several replies are pipelined on one connection (a fresh reader per
/// reply could buffer and discard the bytes of the next one).
fn read_reply_from(reader: &mut FrameReader, stream: &mut TcpStream) -> Result<Reply, String> {
    loop {
        match reader.poll(stream) {
            Ok(Poll::Frame(body)) => return Reply::decode_body(&body).map_err(|e| e.to_string()),
            Ok(Poll::Pending) => {}
            Ok(Poll::TimedOut) => return Err("timed out".to_string()),
            Ok(Poll::Eof { mid_frame }) => return Err(format!("eof (mid_frame={mid_frame})")),
            Err(e) => return Err(e.to_string()),
        }
    }
}

fn roundtrip(addr: SocketAddr, req: &Request) -> Result<Reply, String> {
    let mut stream = connect(addr);
    write_frame(&mut stream, &req.encode_body()).map_err(|e| e.to_string())?;
    read_reply(&mut stream)
}

fn push_req(tenant: &str, batch_id: &str, seed: u64) -> Request {
    Request::Push {
        tenant: tenant.to_string(),
        batch_id: batch_id.to_string(),
        payload: payload(seed),
    }
}

/// Pushes until `Ack`, tolerating `Defer` (honoring the hint).
fn push_until_acked(addr: SocketAddr, tenant: &str, batch_id: &str, seed: u64) -> u64 {
    for _ in 0..50 {
        match roundtrip(addr, &push_req(tenant, batch_id, seed)) {
            Ok(Reply::Ack { epoch }) => return epoch,
            Ok(Reply::Defer { retry_after_ms }) => {
                std::thread::sleep(Duration::from_millis(retry_after_ms.min(100)));
            }
            Ok(other) => panic!("push of {tenant}/{batch_id} got {other:?}"),
            Err(e) => panic!("push of {tenant}/{batch_id} failed: {e}"),
        }
    }
    panic!("push of {tenant}/{batch_id} never acked");
}

// ---------------------------------------------------------------------------
// Protocol abuse
// ---------------------------------------------------------------------------

#[test]
fn torn_truncated_and_corrupt_frames_never_take_the_server_down() {
    let (_, router) = with_server(
        MemFs::new(),
        tenant_cfg(),
        NetConfig::default(),
        |addr, _cancel| {
            let encoded = frame(&push_req("sj", "b-1", 1).encode_body());

            // Truncation at several cuts, connection killed mid-frame.
            for cut in [1, 4, 7, 8, 9, encoded.len() - 1] {
                let mut s = connect(addr);
                s.write_all(&encoded[..cut]).unwrap();
                drop(s); // mid-frame kill
            }
            // CRC corruption in the body: the server must reject.
            let mut corrupt = encoded.clone();
            let last = corrupt.len() - 1;
            corrupt[last] ^= 0x40;
            let mut s = connect(addr);
            s.write_all(&corrupt).unwrap();
            match read_reply(&mut s) {
                Ok(Reply::Reject { reason }) => {
                    assert!(reason.contains("framing"), "{reason}");
                }
                other => panic!("corrupt frame got {other:?}"),
            }
            // A frame whose *body* is garbage (valid CRC) is rejected too.
            let mut s = connect(addr);
            s.write_all(&frame(b"\xff\xfe not a request")).unwrap();
            assert!(matches!(read_reply(&mut s), Ok(Reply::Reject { .. })));

            // A reply kind sent as a request is rejected (kind ranges
            // are disjoint).
            let mut s = connect(addr);
            s.write_all(&frame(&Reply::Shed.encode_body())).unwrap();
            assert!(matches!(read_reply(&mut s), Ok(Reply::Reject { .. })));

            // After all that abuse, an honest push still works.
            assert!(push_until_acked(addr, "sj", "b-1", 1) >= 1);
        },
    );
    assert_eq!(router.health_of("sj").unwrap().applied, 1);
}

#[test]
fn duplicate_sends_ack_without_reapplying() {
    let (_, router) = with_server(
        MemFs::new(),
        tenant_cfg(),
        NetConfig::default(),
        |addr, _| {
            let first = push_until_acked(addr, "sj", "b-1", 1);
            for _ in 0..3 {
                match roundtrip(addr, &push_req("sj", "b-1", 1)) {
                    Ok(Reply::Ack { epoch }) => assert!(epoch >= first),
                    other => panic!("duplicate got {other:?}"),
                }
            }
            // Pipelined duplicates on one connection work too.
            let mut s = connect(addr);
            let encoded = frame(&push_req("sj", "b-1", 1).encode_body());
            s.write_all(&encoded).unwrap();
            s.write_all(&encoded).unwrap();
            let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
            assert!(matches!(
                read_reply_from(&mut reader, &mut s),
                Ok(Reply::Ack { .. })
            ));
            assert!(matches!(
                read_reply_from(&mut reader, &mut s),
                Ok(Reply::Ack { .. })
            ));
        },
    );
    assert_eq!(
        router.health_of("sj").unwrap().applied,
        1,
        "duplicates must not re-apply"
    );
}

#[test]
fn status_frames_report_per_tenant_health() {
    let (_, _router) = with_server(
        MemFs::new(),
        tenant_cfg(),
        NetConfig::default(),
        |addr, _| {
            push_until_acked(addr, "sj", "b-1", 1);
            push_until_acked(addr, "sj", "b-2", 2);
            let reply = roundtrip(
                addr,
                &Request::Status {
                    tenant: "sj".to_string(),
                },
            )
            .unwrap();
            let Reply::Report(rep) = reply else {
                panic!("expected report, got {reply:?}");
            };
            assert_eq!(rep.tenant, "sj");
            assert_eq!(rep.applied, 2);
            assert_eq!(rep.status, "running");
            assert_eq!(rep.breaker, "closed");
            assert_eq!(rep.poisoned, 0);
            assert!(rep.last_epoch >= 2);
        },
    );
}

// ---------------------------------------------------------------------------
// Bulkheads
// ---------------------------------------------------------------------------

#[test]
fn slowloris_on_tenant_a_never_blocks_tenant_b() {
    let ncfg = NetConfig {
        read_timeout_ms: 20,
        idle_timeout_ms: 1_500,
        ..NetConfig::default()
    };
    let (elapsed_b, router) = with_server(MemFs::new(), tenant_cfg(), ncfg, |addr, _| {
        // Tenant A's client drips one byte of a push frame at a time.
        let torn = frame(&push_req("atl", "slow-1", 9).encode_body());
        let slow = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            for b in torn.iter().take(torn.len() / 2) {
                if s.write_all(&[*b]).is_err() {
                    break; // server gave up on us — expected
                }
                std::thread::sleep(Duration::from_millis(40));
            }
            // The server must eventually reject the idle connection.
            read_reply(&mut s)
        });
        // Meanwhile tenant B pushes a full workload and must be served
        // promptly — well before the slowloris connection resolves.
        let start = std::time::Instant::now();
        for i in 0..4u64 {
            push_until_acked(addr, "sj", &format!("b-{i}"), i);
        }
        let elapsed_b = start.elapsed();
        match slow.join().unwrap() {
            // Best case the Reject lands before the close; a drip-feed
            // racing the server's teardown may instead see the
            // connection torn (EOF or reset). Both prove the server
            // gave up on the idler rather than waiting forever.
            Ok(Reply::Reject { reason }) => assert!(reason.contains("idle"), "{reason}"),
            Err(_) => {}
            other => panic!("slowloris got {other:?}"),
        }
        elapsed_b
    });
    assert_eq!(router.health_of("sj").unwrap().applied, 4);
    assert!(router.health_of("atl").is_none(), "torn push never routed");
    // B's four acks landed while A's connection was still mid-drip
    // (the drip alone takes > 1s; B must not have waited for it).
    assert!(
        elapsed_b < Duration::from_secs(1),
        "tenant B stalled behind the slowloris: {elapsed_b:?}"
    );
}

#[test]
fn fast_drip_slowloris_is_cut_by_the_idle_guard() {
    // Drip interval (10 ms) well under the socket read timeout (60 ms):
    // every poll returns `Pending`, never `TimedOut`, so only the
    // frame-progress idle check on the `Pending` arm can end this
    // connection. Regression: the guard used to live only on the
    // `TimedOut` arm, letting such a client hold a bulkhead slot
    // forever and hang graceful drain.
    let ncfg = NetConfig {
        read_timeout_ms: 60,
        idle_timeout_ms: 250,
        ..NetConfig::default()
    };
    // Asserted outside `with_server` so a regression fails the test
    // instead of deadlocking the serve thread inside the scope.
    let ((cut, verdict), _router) = with_server(MemFs::new(), tenant_cfg(), ncfg, |addr, _| {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // A header promising a 64 KiB body, then body bytes that never
        // complete it — the frame stays forever pending.
        let mut wire = (64 * 1024u32).to_le_bytes().to_vec();
        wire.extend_from_slice(&0u32.to_le_bytes());
        wire.resize(wire.len() + 4096, 0xAB);
        let start = std::time::Instant::now();
        let mut cut = false;
        for b in wire {
            if s.write_all(&[b]).is_err() {
                cut = true; // server tore the connection down — expected
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
            if start.elapsed() > Duration::from_secs(8) {
                break;
            }
        }
        (cut, read_reply(&mut s))
    });
    assert!(
        cut,
        "server kept reading the drip for 8 s without giving up"
    );
    match verdict {
        // Best case the idle Reject is still readable; a drip racing
        // the teardown may instead see the reset.
        Ok(Reply::Reject { reason }) => assert!(reason.contains("idle"), "{reason}"),
        Err(_) => {}
        other => panic!("fast drip got {other:?}"),
    }
}

#[test]
fn connection_cap_sheds_the_excess() {
    let ncfg = NetConfig {
        max_conns: 1,
        ..NetConfig::default()
    };
    let (_, _router) = with_server(MemFs::new(), tenant_cfg(), ncfg, |addr, _| {
        let parked = connect(addr);
        std::thread::sleep(Duration::from_millis(300)); // let the handler spawn
        let mut second = connect(addr);
        match read_reply(&mut second) {
            Ok(Reply::Shed) => {}
            other => panic!("over-cap connection got {other:?}"),
        }
        drop(parked);
    });
}

// ---------------------------------------------------------------------------
// Interleaving and recovery
// ---------------------------------------------------------------------------

const TENANTS: [&str; 2] = ["atl", "sj"];
const BATCHES_PER_TENANT: u64 = 3;

fn fingerprints(router: &TenantRouter<'_, MemFs>) -> Vec<(String, String, u64)> {
    TENANTS
        .iter()
        .map(|t| {
            let svc = router.service_of(t).unwrap();
            let h = router.health_of(t).unwrap();
            ((*t).to_string(), svc.state_fingerprint(), h.applied)
        })
        .collect()
}

/// Reference: each tenant's batches pushed sequentially, one tenant at
/// a time, no concurrency anywhere.
fn solo_reference() -> Vec<(String, String, u64)> {
    let (_, router) = with_server(
        MemFs::new(),
        tenant_cfg(),
        NetConfig::default(),
        |addr, _| {
            for t in TENANTS {
                for i in 0..BATCHES_PER_TENANT {
                    push_until_acked(addr, t, &format!("b-{i:03}"), i);
                }
            }
        },
    );
    fingerprints(&router)
}

#[test]
fn interleaved_tenants_match_the_solo_reference_byte_for_byte() {
    let reference = solo_reference();
    let (_, router) = with_server(
        MemFs::new(),
        tenant_cfg(),
        NetConfig::default(),
        |addr, _| {
            std::thread::scope(|s| {
                for t in TENANTS {
                    s.spawn(move || {
                        for i in 0..BATCHES_PER_TENANT {
                            push_until_acked(addr, t, &format!("b-{i:03}"), i);
                        }
                    });
                }
            });
        },
    );
    assert_eq!(fingerprints(&router), reference);
}

#[test]
fn abrupt_stop_recovers_byte_identically_with_no_double_apply() {
    let reference = solo_reference();
    let fs = MemFs::new();

    // Phase 1: push everything, then stop WITHOUT draining — the router
    // is dropped as-is, simulating an abrupt process death after the
    // last ack (anything durable must survive; nothing may re-apply).
    let (_, router) = with_server(fs.clone(), tenant_cfg(), NetConfig::default(), |addr, _| {
        for t in TENANTS {
            for i in 0..BATCHES_PER_TENANT {
                push_until_acked(addr, t, &format!("b-{i:03}"), i);
            }
        }
    });
    drop(router); // no drain_all, no final checkpoint

    // Phase 2: a fresh server over the surviving storage. Every batch
    // re-pushed is a duplicate and must ack without re-applying.
    let (_, router) = with_server(fs, tenant_cfg(), NetConfig::default(), |addr, _| {
        for t in TENANTS {
            for i in 0..BATCHES_PER_TENANT {
                match roundtrip(addr, &push_req(t, &format!("b-{i:03}"), i)) {
                    Ok(Reply::Ack { .. }) => {}
                    other => panic!("re-push of {t}/b-{i:03} got {other:?}"),
                }
            }
        }
    });
    let recovered = fingerprints(&router);
    for ((tenant, fp, applied), (_, ref_fp, _)) in recovered.iter().zip(reference.iter()) {
        // The fingerprint embeds the batch count, so equality with the
        // uninterrupted reference is the byte-identical, exactly-once
        // check in one shot.
        assert_eq!(fp, ref_fp, "tenant {tenant} diverged after recovery");
        // `applied` is session-local: the recovered session must have
        // applied NOTHING — every re-push was a recognized duplicate.
        assert_eq!(*applied, 0, "tenant {tenant} re-applied a batch");
    }
}

#[test]
fn drain_frame_acks_stops_the_listener_and_flushes() {
    let fs = MemFs::new();
    let ((), router) = with_server(fs, tenant_cfg(), NetConfig::default(), |addr, cancel| {
        push_until_acked(addr, "sj", "b-1", 1);
        let reply = roundtrip(addr, &Request::Drain).unwrap();
        let Reply::Ack { epoch } = reply else {
            panic!("drain got {reply:?}");
        };
        assert!(epoch >= 1);
        // The token tripped: new pushes are deferred, not applied.
        for _ in 0..50 {
            if cancel.is_cancelled() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(cancel.is_cancelled());
        // A late push races listener teardown: it may land on a still-
        // draining handler (Defer), sit unanswered in the accept
        // backlog, or fail to connect. Probe with a short timeout.
        let probe = (|| -> Result<Reply, String> {
            let mut s = TcpStream::connect(addr).map_err(|e| e.to_string())?;
            s.set_read_timeout(Some(Duration::from_millis(500)))
                .map_err(|e| e.to_string())?;
            write_frame(&mut s, &push_req("sj", "b-2", 2).encode_body())
                .map_err(|e| e.to_string())?;
            read_reply(&mut s)
        })();
        match probe {
            Ok(Reply::Defer { .. }) | Err(_) => {}
            other => panic!("push during drain got {other:?}"),
        }
    });
    let mut router = router;
    for (tenant, outcome) in router.drain_all(256) {
        assert_ne!(outcome, DrainOutcome::Failed, "tenant {tenant} failed");
    }
}

// ---------------------------------------------------------------------------
// kill -9 subprocess matrix
// ---------------------------------------------------------------------------

struct TempDirs {
    root: PathBuf,
}

impl TempDirs {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("neat-netchaos-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        TempDirs { root }
    }
    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Drop for TempDirs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// Spawns `neatd --listen 127.0.0.1:0 ...` and parses the bound address
/// off its stderr.
fn spawn_daemon(dirs: &TempDirs, network: &Path) -> (std::process::Child, SocketAddr) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_neatd"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--network",
            network.to_str().unwrap(),
            "--spool",
            dirs.path("spool").to_str().unwrap(),
            "--state",
            dirs.path("state").to_str().unwrap(),
            "--quarantine",
            dirs.path("quarantine").to_str().unwrap(),
            "--min-card",
            "1",
            "--checkpoint-every",
            "2",
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let stderr = child.stderr.take().unwrap();
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon exited before announcing its address")
            .unwrap();
        if let Some(rest) = line.strip_prefix("neatd: listening on ") {
            break rest.trim().parse::<SocketAddr>().unwrap();
        }
    };
    // Keep draining stderr so the daemon never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

#[test]
fn kill_dash_nine_mid_push_storm_recovers_exactly_once() {
    let dirs = TempDirs::new("kill9");
    let network_path = dirs.path("net.txt");
    {
        let f = std::fs::File::create(&network_path).unwrap();
        netio::write_network(&net(), std::io::BufWriter::new(f)).unwrap();
    }

    const STORM: u64 = 6;
    let (mut child, addr) = spawn_daemon(&dirs, &network_path);

    // A storm of concurrent pushes across two tenants, with the daemon
    // SIGKILLed mid-storm. Clients tolerate every connection fate.
    std::thread::scope(|s| {
        for (w, tenant) in TENANTS.iter().enumerate() {
            s.spawn(move || {
                for i in 0..STORM {
                    let req = push_req(tenant, &format!("k-{i:03}"), i);
                    let outcome = (|| -> Result<Reply, String> {
                        let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
                        stream
                            .set_read_timeout(Some(Duration::from_secs(5)))
                            .map_err(|e| e.to_string())?;
                        write_frame(&mut stream, &req.encode_body()).map_err(|e| e.to_string())?;
                        read_reply(&mut stream)
                    })();
                    // Acks, defers, errors, torn connections: all fine —
                    // the daemon is being murdered underneath us.
                    drop(outcome);
                    std::thread::sleep(Duration::from_millis(10 + 5 * w as u64));
                }
            });
        }
        s.spawn(|| {
            std::thread::sleep(Duration::from_millis(80));
            child.kill().unwrap(); // SIGKILL — no drain, no checkpoint
            child.wait().unwrap();
        });
    });

    // Restart on the same directories; re-push the full storm. Every
    // batch must end acknowledged, applied exactly once.
    let (mut child, addr) = spawn_daemon(&dirs, &network_path);
    for tenant in TENANTS {
        for i in 0..STORM {
            push_until_acked(addr, tenant, &format!("k-{i:03}"), i);
        }
    }
    for tenant in TENANTS {
        let reply = roundtrip(
            addr,
            &Request::Status {
                tenant: tenant.to_string(),
            },
        )
        .unwrap();
        let Reply::Report(rep) = reply else {
            panic!("status got {reply:?}");
        };
        // `batches` survives restarts via journal replay: a lost batch
        // leaves it short, a double-apply pushes it over.
        assert_eq!(
            rep.batches,
            STORM,
            "tenant {tenant} must apply each batch exactly once, got {}",
            rep.digest()
        );
        assert_eq!(rep.status, "running", "tenant {tenant}: {}", rep.digest());
        assert_eq!(rep.poisoned, 0, "tenant {tenant}: {}", rep.digest());
    }

    // The real client binary sees a duplicate ack too (exit 0).
    let batch_file = dirs.path("replay.batch");
    std::fs::write(&batch_file, payload(0)).unwrap();
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_neat"))
        .args([
            "push",
            "--addr",
            &addr.to_string(),
            "--tenant",
            "sj",
            "--dataset",
            batch_file.to_str().unwrap(),
            "--batch-id",
            "k-000",
        ])
        .status()
        .unwrap();
    assert!(status.success(), "neat push exited {status:?}");

    // Graceful drain via the wire; the daemon must exit cleanly.
    assert!(matches!(
        roundtrip(addr, &Request::Drain),
        Ok(Reply::Ack { .. })
    ));
    let exit = child.wait().unwrap();
    assert_eq!(exit.code(), Some(0), "drained daemon exited {exit:?}");
}

#[test]
fn sigterm_drains_the_daemon_cleanly() {
    let dirs = TempDirs::new("sigterm");
    let network_path = dirs.path("net.txt");
    {
        let f = std::fs::File::create(&network_path).unwrap();
        netio::write_network(&net(), std::io::BufWriter::new(f)).unwrap();
    }
    let (mut child, addr) = spawn_daemon(&dirs, &network_path);
    push_until_acked(addr, "sj", "b-1", 1);

    // SIGTERM (15): the daemon stops accepting, flushes, checkpoints
    // and exits 0.
    unsafe {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        assert_eq!(kill(child.id() as i32, 15), 0);
    }
    let exit = child.wait().unwrap();
    assert_eq!(exit.code(), Some(0), "SIGTERM exit was {exit:?}");

    // Everything acked before the signal survived on disk.
    let (mut child, addr) = spawn_daemon(&dirs, &network_path);
    match roundtrip(addr, &push_req("sj", "b-1", 1)) {
        Ok(Reply::Ack { .. }) => {}
        other => panic!("post-restart duplicate got {other:?}"),
    }
    assert!(matches!(
        roundtrip(addr, &Request::Drain),
        Ok(Reply::Ack { .. })
    ));
    child.wait().unwrap();
}
