//! Cancel-point chaos harness for the execution-control layer.
//!
//! The budget-side counterpart of `tests/crash_chaos.rs`: instead of
//! killing disk operations, this harness trips an interrupt at every
//! cooperative check point of a seeded clustering run — cancellation,
//! op-budget exhaustion, and op-budget exhaustion under
//! [`OverrunMode::Partial`] — for every pipeline version (base-, flow-
//! and opt-NEAT), and asserts the execution-control contract:
//!
//! * **No panics, no errors** — every armed run returns `Ok(Outcome)`.
//! * **Valid partial outcome** — the delivered mode never exceeds the
//!   requested one, every surviving flow cluster still satisfies
//!   `minCard` and lies on real road segments, trajectory clusters
//!   partition the flow clusters, and the reported completeness /
//!   degradation agree with the interrupt that fired.
//! * **Deterministic completed prefix** — re-running with the same
//!   arming reproduces the outcome `Debug`-byte for byte.
//! * **Observation is free** — an unlimited [`Control`] is bit-identical
//!   to the uncontrolled [`Neat::run_with_policy`].
//!
//! The default tests arm *every* check point of a small fixture
//! (exhaustive matrix) and a dense-head-plus-stride sample of a larger
//! one. The `#[ignore]`d matrix does the same on seeded SJ/ATL-style
//! networks (Table I stand-ins) and is run in release by the CI
//! `budget-chaos` job. On any violation the failing cancel-point id is
//! written to `target/chaos-artifacts/` for offline inspection.

use neat_repro::mobisim::{generate_dataset, SimConfig};
use neat_repro::neat::{Completeness, ErrorPolicy, Mode, Neat, NeatConfig, NeatResult, Outcome};
use neat_repro::rnet::netgen::{generate_grid_network, GridNetworkConfig, MapPreset};
use neat_repro::rnet::RoadNetwork;
use neat_repro::runctl::{CancelToken, Control, OverrunMode, RunBudget};
use neat_repro::traj::Dataset;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::OnceLock;

const MODES: [Mode; 3] = [Mode::Base, Mode::Flow, Mode::Opt];

/// The two ways the matrix trips an interrupt at check point `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arming {
    /// External cancellation: a [`CancelToken`] fused to trip on the
    /// `n+1`-th poll.
    Cancel,
    /// Budget exhaustion: `max_ops = n`, under the given overrun mode.
    OpBudget(OverrunMode),
}

impl Arming {
    fn control(self, at: u64) -> Control {
        match self {
            Arming::Cancel => Control::new(RunBudget::unlimited(), CancelToken::armed_after(at)),
            Arming::OpBudget(overrun) => {
                Control::new(RunBudget::unlimited().with_max_ops(at), CancelToken::new())
                    .with_overrun(overrun)
            }
        }
    }

    fn label(self) -> &'static str {
        match self {
            Arming::Cancel => "cancel",
            Arming::OpBudget(OverrunMode::Degrade) => "ops-degrade",
            Arming::OpBudget(OverrunMode::Partial) => "ops-partial",
        }
    }
}

/// Tiny fixture whose runs are cheap enough to arm *every* check point.
fn tiny_fixture() -> &'static (RoadNetwork, Dataset) {
    static FIXTURE: OnceLock<(RoadNetwork, Dataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let net = generate_grid_network(&GridNetworkConfig::small_test(3, 3), 11);
        let config = SimConfig {
            num_objects: 6,
            num_hotspots: 2,
            num_destinations: 2,
            sample_period_s: 4.0,
            ..SimConfig::default()
        };
        let data = generate_dataset(&net, &config, 11, "budget-tiny");
        (net, data)
    })
}

/// The `crash_chaos` fixture: same seeds, same network, whole dataset in
/// one window (this harness interrupts compute, not disk).
fn chaos_fixture() -> &'static (RoadNetwork, Dataset) {
    static FIXTURE: OnceLock<(RoadNetwork, Dataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let net = generate_grid_network(&GridNetworkConfig::small_test(4, 4), 7);
        let config = SimConfig {
            num_objects: 18,
            num_hotspots: 2,
            num_destinations: 2,
            sample_period_s: 4.0,
            ..SimConfig::default()
        };
        let data = generate_dataset(&net, &config, 7, "chaos");
        (net, data)
    })
}

fn neat_config() -> NeatConfig {
    NeatConfig {
        min_card: 3,
        epsilon: 600.0,
        ..NeatConfig::default()
    }
}

/// `Debug` fingerprint of everything observable except wall-clock
/// timings (the only field allowed to differ between identical runs).
fn result_fingerprint(r: &NeatResult) -> String {
    format!(
        "mode={:?}\nbase={:#?}\nbase_count={}\nfragments={}\nflows={:#?}\ndiscarded={}\n\
         clusters={:#?}\nstats={:#?}\nresilience={:#?}",
        r.mode,
        r.base_clusters,
        r.base_cluster_count,
        r.fragment_count,
        r.flow_clusters,
        r.discarded_flows,
        r.clusters,
        r.phase3_stats,
        r.resilience,
    )
}

fn outcome_fingerprint(out: &Outcome) -> String {
    format!(
        "{}\ncompleteness={:#?}\ndegradation={:#?}\ninterrupt={:?}",
        result_fingerprint(&out.result),
        out.completeness,
        out.degradation,
        out.interrupt,
    )
}

/// Writes the failing cancel point to `target/chaos-artifacts/` and
/// panics with `msg` (mirrors `crash_chaos::fail_with_artifact`).
fn fail_with_artifact(id: &str, detail: &str, msg: &str) -> ! {
    let dir = PathBuf::from("target/chaos-artifacts");
    let _ = std::fs::create_dir_all(&dir);
    let report = format!("cancel point: {id}\nfailure: {msg}\n\n{detail}\n");
    let file = dir.join(format!(
        "{}.txt",
        id.replace(['{', '}', ' ', ':', ','], "_")
    ));
    let _ = std::fs::write(&file, report);
    panic!("[{id}] {msg} (artifact: {})", file.display());
}

fn mode_rank(mode: Mode) -> u8 {
    match mode {
        Mode::Base => 0,
        Mode::Flow => 1,
        Mode::Opt => 2,
    }
}

/// The validity contract every armed run must satisfy, interrupt or not.
fn check_outcome(id: &str, net: &RoadNetwork, cfg: &NeatConfig, requested: Mode, out: &Outcome) {
    let fail = |msg: &str| -> ! { fail_with_artifact(id, &outcome_fingerprint(out), msg) };

    // The ladder only ever goes down.
    if out.degradation.requested != requested {
        fail("degradation.requested does not echo the requested mode");
    }
    if out.result.mode != out.degradation.delivered {
        fail("result.mode disagrees with degradation.delivered");
    }
    if mode_rank(out.result.mode) > mode_rank(requested) {
        fail("delivered a higher mode than requested");
    }

    // Interrupt bookkeeping: complete ⇔ no interrupt fired.
    match out.interrupt {
        None => {
            if out.completeness != Completeness::complete_for(requested) {
                fail("no interrupt but completeness is not fully complete");
            }
            if out.degradation.is_degraded() || out.result.mode != requested {
                fail("no interrupt but the run degraded");
            }
        }
        Some(_) => {
            if out.completeness.is_complete() {
                fail("interrupt fired but completeness claims complete");
            }
            if !out.degradation.is_degraded() {
                fail("interrupt fired but no degradation step recorded");
            }
        }
    }

    // Every surviving flow cluster is still a valid Definition-8 flow.
    let flows_valid = |flows: &[neat_repro::neat::FlowCluster]| {
        for f in flows {
            if f.trajectory_cardinality() < cfg.min_card {
                fail("flow cluster below minCard survived");
            }
            let route = f.route();
            if route.is_empty() {
                fail("flow cluster with an empty route");
            }
            for s in route {
                if net.segment(s).is_err() {
                    fail("flow cluster references a segment not in the network");
                }
            }
        }
    };
    flows_valid(&out.result.flow_clusters);

    match out.result.mode {
        Mode::Base => {
            if !out.result.flow_clusters.is_empty() || !out.result.clusters.is_empty() {
                fail("base-NEAT outcome carries flow or trajectory clusters");
            }
        }
        Mode::Flow => {
            if !out.result.clusters.is_empty() {
                fail("flow-NEAT outcome carries trajectory clusters");
            }
        }
        Mode::Opt => {
            // Phase 3 (complete, ELB-only or stopped) always partitions
            // the flow clusters; unreached flows become singletons.
            let grouped: usize = out.result.clusters.iter().map(|c| c.flows().len()).sum();
            if grouped != out.result.flow_clusters.len() {
                fail("trajectory clusters do not partition the flow clusters");
            }
            for c in &out.result.clusters {
                if c.flows().is_empty() {
                    fail("empty trajectory cluster");
                }
                flows_valid(c.flows());
            }
        }
    }
}

/// One armed run: must return `Ok`, satisfy the contract, and reproduce
/// itself when re-armed identically.
fn run_armed(
    net: &RoadNetwork,
    data: &Dataset,
    cfg: &NeatConfig,
    mode: Mode,
    arming: Arming,
    at: u64,
) {
    let id = format!("{}-{}-at{at}", mode.name(), arming.label());
    let neat = Neat::new(net, *cfg);
    let run = |neat: &Neat| {
        let ctl = arming.control(at);
        match neat.run_controlled(data, mode, ErrorPolicy::Strict, &ctl) {
            Ok(out) => out,
            Err(e) => fail_with_artifact(&id, "", &format!("armed run errored: {e}")),
        }
    };
    let first = run(&neat);
    check_outcome(&id, net, cfg, mode, &first);
    let second = run(&neat);
    if outcome_fingerprint(&first) != outcome_fingerprint(&second) {
        fail_with_artifact(
            &id,
            &format!(
                "first:\n{}\n\nsecond:\n{}",
                outcome_fingerprint(&first),
                outcome_fingerprint(&second)
            ),
            "completed prefix is not deterministic",
        );
    }
}

/// Total check points of a clean run of `mode`, via an unlimited probe.
fn probe_ops(net: &RoadNetwork, data: &Dataset, cfg: &NeatConfig, mode: Mode) -> u64 {
    let ctl = Control::unlimited();
    let out = Neat::new(net, *cfg)
        .run_controlled(data, mode, ErrorPolicy::Strict, &ctl)
        .expect("probe run");
    assert!(out.is_complete(), "unlimited probe must complete");
    ctl.ops()
}

/// Dense head, stride across the middle, dense tail — plus two points
/// past the end (an interrupt that never fires must be harmless).
fn strided_points(total: u64, cap: u64) -> Vec<u64> {
    if total + 2 <= cap {
        return (0..=total + 2).collect();
    }
    let mut pts: Vec<u64> = (0..16.min(total)).collect();
    let stride = (total / cap).max(1);
    pts.extend((16..total).step_by(stride as usize));
    pts.extend([total.saturating_sub(1), total, total + 1, total + 2]);
    pts.sort_unstable();
    pts.dedup();
    pts
}

/// Exhaustive matrix on the tiny fixture: every check point × every
/// pipeline version × every arming kind.
#[test]
fn every_check_point_of_the_tiny_fixture_survives_interruption() {
    let (net, data) = tiny_fixture();
    let cfg = neat_config();
    for mode in MODES {
        let total = probe_ops(net, data, &cfg, mode);
        for arming in [
            Arming::Cancel,
            Arming::OpBudget(OverrunMode::Degrade),
            Arming::OpBudget(OverrunMode::Partial),
        ] {
            for at in 0..=total + 2 {
                run_armed(net, data, &cfg, mode, arming, at);
            }
        }
    }
}

/// Strided matrix on the `crash_chaos`-sized fixture.
#[test]
fn strided_cancel_matrix_on_the_chaos_fixture() {
    let (net, data) = chaos_fixture();
    let cfg = neat_config();
    for mode in MODES {
        let total = probe_ops(net, data, &cfg, mode);
        for arming in [
            Arming::Cancel,
            Arming::OpBudget(OverrunMode::Degrade),
            Arming::OpBudget(OverrunMode::Partial),
        ] {
            for at in strided_points(total, 48) {
                run_armed(net, data, &cfg, mode, arming, at);
            }
        }
    }
}

/// The settled-node budget interrupts mid-Dijkstra; the outcome must be
/// just as valid as any other truncation.
#[test]
fn settled_node_budget_truncates_to_a_valid_outcome() {
    let (net, data) = chaos_fixture();
    let cfg = neat_config();
    let neat = Neat::new(net, cfg);
    for cap in [0u64, 1, 7, 64, 512] {
        let id = format!("opt-NEAT-settled-at{cap}");
        let ctl = Control::new(
            RunBudget::unlimited().with_max_settled_nodes(cap),
            CancelToken::new(),
        );
        let out = neat
            .run_controlled(data, Mode::Opt, ErrorPolicy::Strict, &ctl)
            .unwrap_or_else(|e| fail_with_artifact(&id, "", &format!("errored: {e}")));
        check_outcome(&id, net, &cfg, Mode::Opt, &out);
    }
}

/// Infinite-budget acceptance: an unlimited `Control` is bit-identical
/// to the uncontrolled pipeline on the chaos fixture, in every mode.
#[test]
fn unlimited_control_matches_the_free_run_on_the_chaos_fixture() {
    let (net, data) = chaos_fixture();
    let cfg = neat_config();
    let neat = Neat::new(net, cfg);
    for mode in MODES {
        let free = neat
            .run_with_policy(data, mode, ErrorPolicy::Strict)
            .expect("free run");
        let ctl = Control::unlimited();
        let out = neat
            .run_controlled(data, mode, ErrorPolicy::Strict, &ctl)
            .expect("controlled run");
        assert_eq!(
            result_fingerprint(&free),
            result_fingerprint(&out.result),
            "unlimited control changed the {} result",
            mode.name()
        );
        assert!(out.is_complete());
    }
}

/// Release-only matrix on the seeded SJ/ATL-style stand-in networks of
/// Table I — run by the CI `budget-chaos` job via `-- --ignored`.
#[test]
#[ignore = "heavy: run in release via the CI budget-chaos job"]
fn cancel_matrix_on_paper_style_networks() {
    for preset in [MapPreset::Atlanta, MapPreset::SanJose] {
        let net = preset.generate(7);
        let config = SimConfig {
            num_objects: 8,
            num_hotspots: 2,
            num_destinations: 2,
            sample_period_s: 4.0,
            ..SimConfig::default()
        };
        let data = generate_dataset(&net, &config, 7, preset.code());
        let cfg = NeatConfig {
            min_card: 3,
            ..NeatConfig::default()
        };
        for mode in MODES {
            let total = probe_ops(&net, &data, &cfg, mode);
            for arming in [Arming::Cancel, Arming::OpBudget(OverrunMode::Degrade)] {
                for at in strided_points(total, 24) {
                    run_armed(&net, &data, &cfg, mode, arming, at);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary arming never panics: any cancel point, any mode, any
    /// arming kind yields `Ok(Outcome)` satisfying the full contract.
    #[test]
    fn prop_arbitrary_arming_yields_a_valid_outcome(
        at in 0u64..4096,
        mode_ix in 0usize..3,
        kind in 0usize..3,
    ) {
        let (net, data) = tiny_fixture();
        let cfg = neat_config();
        let mode = MODES[mode_ix];
        let arming = match kind {
            0 => Arming::Cancel,
            1 => Arming::OpBudget(OverrunMode::Degrade),
            _ => Arming::OpBudget(OverrunMode::Partial),
        };
        run_armed(net, data, &cfg, mode, arming, at);
    }
}
