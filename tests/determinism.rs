//! Determinism regression tests: the property the `neat-lint` L2/L3
//! rules protect. Running the same pipeline twice on the same inputs —
//! fresh `HashMap` hasher seeds, fresh allocations, same process — must
//! produce *byte-identical* cluster output.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use neat_repro::mobisim::{generate_dataset, SimConfig};
use neat_repro::neat::{Mode, Neat, NeatConfig, NeatResult};
use neat_repro::rnet::netgen::{generate_grid_network, GridNetworkConfig};
use neat_repro::rnet::RoadNetwork;
use neat_repro::traj::Dataset;

fn setup(objects: usize, seed: u64) -> (RoadNetwork, Dataset) {
    let net = generate_grid_network(&GridNetworkConfig::small_test(12, 12), seed);
    let data = generate_dataset(
        &net,
        &SimConfig {
            num_objects: objects,
            ..SimConfig::default()
        },
        seed.wrapping_add(1),
        "determinism",
    );
    (net, data)
}

/// Everything order-sensitive in a result, minus wall-clock timings
/// (instrumentation is the one field allowed to differ between runs).
fn fingerprint(r: &NeatResult) -> String {
    format!(
        "{:#?}\n{:#?}\n{:#?}\n{}/{}/{}",
        r.base_clusters,
        r.flow_clusters,
        r.clusters,
        r.base_cluster_count,
        r.fragment_count,
        r.discarded_flows
    )
}

#[test]
fn flow_neat_double_run_is_byte_identical() {
    let (net, data) = setup(60, 42);
    let config = NeatConfig {
        min_card: 1,
        epsilon: 500.0,
        ..NeatConfig::default()
    };
    let first = Neat::new(&net, config)
        .run(&data, Mode::Flow)
        .expect("first run succeeds");
    let second = Neat::new(&net, config)
        .run(&data, Mode::Flow)
        .expect("second run succeeds");
    assert_eq!(
        fingerprint(&first),
        fingerprint(&second),
        "flow-NEAT must be reproducible run-to-run"
    );
}

#[test]
fn opt_neat_double_run_is_byte_identical() {
    let (net, data) = setup(60, 7);
    let config = NeatConfig {
        min_card: 2,
        epsilon: 500.0,
        ..NeatConfig::default()
    };
    let runs: Vec<String> = (0..2)
        .map(|_| {
            let r = Neat::new(&net, config)
                .run(&data, Mode::Opt)
                .expect("opt run succeeds");
            fingerprint(&r)
        })
        .collect();
    assert_eq!(runs[0], runs[1], "opt-NEAT must be reproducible run-to-run");
}
