//! NEAT must not overfit grid topology: the full pipeline is exercised on
//! the radial (ring-and-spoke) generator and on degenerate topologies.

use neat_repro::mobisim::{generate_dataset, SimConfig};
use neat_repro::neat::{Mode, Neat, NeatConfig};
use neat_repro::rnet::netgen::{chain_network, generate_radial_network, RadialNetworkConfig};

fn config() -> NeatConfig {
    NeatConfig {
        min_card: 3,
        epsilon: 600.0,
        ..NeatConfig::default()
    }
}

#[test]
fn pipeline_works_on_radial_topology() {
    let net = generate_radial_network(&RadialNetworkConfig::default(), 11);
    let data = generate_dataset(
        &net,
        &SimConfig {
            num_objects: 60,
            ..SimConfig::default()
        },
        12,
        "radial",
    );
    assert_eq!(data.len(), 60);
    let r = Neat::new(&net, config()).run(&data, Mode::Opt).unwrap();
    assert!(r.base_cluster_count > 0);
    assert!(!r.flow_clusters.is_empty());
    for f in &r.flow_clusters {
        assert!(net.is_route(&f.route()), "radial flow must be a route");
    }
    let placed: usize = r.clusters.iter().map(|c| c.flows().len()).sum();
    assert_eq!(placed, r.flow_clusters.len());
}

#[test]
fn pipeline_works_on_a_single_corridor() {
    // All traffic on one chain: NEAT should find essentially one flow.
    let net = chain_network(30, 120.0, 13.9);
    let data = generate_dataset(
        &net,
        &SimConfig {
            num_objects: 40,
            num_hotspots: 1,
            num_destinations: 1,
            hotspot_radius_m: 200.0,
            ..SimConfig::default()
        },
        5,
        "corridor",
    );
    let r = Neat::new(&net, config()).run(&data, Mode::Opt).unwrap();
    assert_eq!(
        r.flow_clusters.len(),
        1,
        "single corridor should produce one flow, got {}",
        r.flow_clusters.len()
    );
    assert_eq!(r.clusters.len(), 1);
}

#[test]
fn radial_and_grid_datasets_roundtrip_through_io() {
    let net = generate_radial_network(&RadialNetworkConfig::default(), 2);
    let mut net_buf = Vec::new();
    neat_repro::rnet::io::write_network(&net, &mut net_buf).unwrap();
    let net2 = neat_repro::rnet::io::read_network(net_buf.as_slice()).unwrap();
    let data = generate_dataset(
        &net,
        &SimConfig {
            num_objects: 20,
            ..SimConfig::default()
        },
        9,
        "io",
    );
    // Clustering on the reloaded network gives identical results.
    let a = Neat::new(&net, config()).run(&data, Mode::Opt).unwrap();
    let b = Neat::new(&net2, config()).run(&data, Mode::Opt).unwrap();
    assert_eq!(a.flow_clusters, b.flow_clusters);
    assert_eq!(a.clusters, b.clusters);
}
