//! Integration tests reproducing the paper's worked examples.
//!
//! Figure 1(b) lays out five trajectories on four road segments and walks
//! through every definition: densities, dense-core, netflows,
//! f-neighbourhoods and the maxFlow-neighbour. These tests hard-code that
//! example and assert each number the paper states.

use neat_repro::neat::model::BaseCluster;
use neat_repro::neat::phase1::form_base_clusters;
use neat_repro::neat::phase2::form_flow_clusters;
use neat_repro::neat::{NeatConfig, Weights};
use neat_repro::rnet::{Point, RoadLocation, RoadNetwork, RoadNetworkBuilder, SegmentId};
use neat_repro::traj::{Dataset, Trajectory, TrajectoryId};

/// The Figure 1(b) road network: four segments meeting at junction n2.
///
/// n1 —s1— n2 —s2— n3 ; n2 —s3— n4 ; n2 —s4— n5
fn figure1_network() -> (RoadNetwork, [SegmentId; 4]) {
    let mut b = RoadNetworkBuilder::new();
    let n1 = b.add_node(Point::new(-200.0, 0.0));
    let n2 = b.add_node(Point::new(0.0, 0.0));
    let n3 = b.add_node(Point::new(200.0, 100.0));
    let n4 = b.add_node(Point::new(200.0, 0.0));
    let n5 = b.add_node(Point::new(200.0, -100.0));
    let s1 = b.add_segment(n1, n2, 13.9).unwrap();
    let s2 = b.add_segment(n2, n3, 13.9).unwrap();
    let s3 = b.add_segment(n2, n4, 13.9).unwrap();
    let s4 = b.add_segment(n2, n5, 13.9).unwrap();
    (b.build().unwrap(), [s1, s2, s3, s4])
}

/// The Figure 1(b) trajectories, expressed as segment visit sequences.
///
/// Constructed so that (with one trajectory travelling s1 twice — the
/// paper's S1 holds 4 t-fragments of 3 trajectories):
///   d(S1)=4, d(S2)=3, d(S3)=1, d(S4)=2,
///   f(S1,S2)=2, f(S1,S3)=1, f(S1,S4)=1, f(S2,S3)=0, f(S2,S4)=1.
fn figure1_dataset(segs: &[SegmentId; 4]) -> Dataset {
    let [s1, s2, s3, s4] = *segs;
    // Sample positions: mid-segment points, two per visited segment.
    let mk = |id: u64, visits: &[SegmentId]| {
        let mut t = 0.0;
        let mut pts = Vec::new();
        for &sid in visits {
            let base = match sid {
                s if s == s1 => Point::new(-100.0, 0.0),
                s if s == s2 => Point::new(100.0, 50.0),
                s if s == s3 => Point::new(100.0, 0.0),
                _ => Point::new(100.0, -50.0),
            };
            pts.push(RoadLocation::new(sid, base, t));
            pts.push(RoadLocation::new(sid, base, t + 1.0));
            t += 10.0;
        }
        Trajectory::new(TrajectoryId::new(id), pts).unwrap()
    };
    let mut d = Dataset::new("figure1b");
    // tr1: s1 → s2 → (u-turn) s4 ; tr2: s1 → s2 → back over s1 (so S1
    // holds two of tr2's fragments) ; tr3: s1 → s3 ; tr4: s2 ; tr5: s4.
    // This yields P_Tr(S1) = {1,2,3}, P_Tr(S2) = {1,2,4}, P_Tr(S3) = {3},
    // P_Tr(S4) = {1,5} — exactly the paper's densities and netflows.
    d.push(mk(1, &[s1, s2, s4]));
    d.push(mk(2, &[s1, s2, s1]));
    d.push(mk(3, &[s1, s3]));
    d.push(mk(4, &[s2]));
    d.push(mk(5, &[s4]));
    d
}

fn cluster_for(bases: &[BaseCluster], sid: SegmentId) -> &BaseCluster {
    bases.iter().find(|c| c.segment() == sid).expect("cluster")
}

#[test]
fn figure1b_densities_and_dense_core() {
    let (net, segs) = figure1_network();
    let data = figure1_dataset(&segs);
    let out = form_base_clusters(&net, &data, true).unwrap();
    assert_eq!(out.base_clusters.len(), 4);
    let d = |sid| cluster_for(&out.base_clusters, sid).density();
    assert_eq!(d(segs[0]), 4, "d(S1)");
    assert_eq!(d(segs[1]), 3, "d(S2)");
    assert_eq!(d(segs[2]), 1, "d(S3)");
    assert_eq!(d(segs[3]), 2, "d(S4)");
    // Dense-core is S1 with the highest density.
    assert_eq!(out.dense_core().unwrap().segment(), segs[0]);
}

#[test]
fn figure1b_netflows() {
    let (net, segs) = figure1_network();
    let data = figure1_dataset(&segs);
    let out = form_base_clusters(&net, &data, true).unwrap();
    let c = |sid| cluster_for(&out.base_clusters, sid);
    let f = |a, b| c(a).netflow(c(b));
    assert_eq!(f(segs[0], segs[1]), 2, "f(S1,S2)");
    assert_eq!(f(segs[0], segs[2]), 1, "f(S1,S3)");
    assert_eq!(f(segs[0], segs[3]), 1, "f(S1,S4)");
    assert_eq!(f(segs[1], segs[2]), 0, "f(S2,S3)");
    assert_eq!(f(segs[1], segs[3]), 1, "f(S2,S4)");
    // Symmetry, as Definition 6 notes.
    assert_eq!(f(segs[1], segs[0]), 2);
}

#[test]
fn figure1b_trajectory_cardinality() {
    let (net, segs) = figure1_network();
    let data = figure1_dataset(&segs);
    let out = form_base_clusters(&net, &data, true).unwrap();
    // S1 has 4 t-fragments but only 3 participating trajectories.
    let s1 = cluster_for(&out.base_clusters, segs[0]);
    assert_eq!(s1.density(), 4);
    assert_eq!(s1.trajectory_cardinality(), 3);
}

#[test]
fn figure1b_maxflow_neighbor_merges_first() {
    let (net, segs) = figure1_network();
    let data = figure1_dataset(&segs);
    let out = form_base_clusters(&net, &data, true).unwrap();
    // With flow-only weights the first flow grown from the dense-core S1
    // must merge S2 (its maxFlow-neighbour with f=2).
    let config = NeatConfig {
        weights: Weights::flow_only(),
        min_card: 1,
        ..NeatConfig::default()
    };
    let flows = form_flow_clusters(&net, out.base_clusters, &config).unwrap();
    let first = &flows.flow_clusters[0];
    assert!(first.route().contains(&segs[0]));
    assert!(first.route().contains(&segs[1]));
    assert!(net.is_route(&first.route()));
}

#[test]
fn figure1a_trajectory_splits_into_three_fragments() {
    // Figure 1(a): a trajectory crossing three road segments becomes
    // exactly three t-fragments.
    let (net, segs) = figure1_network();
    // Travel s1 → s2 is 2 fragments; use s1 → s3 → back to s4? s3 and s4
    // share only n2; a route s1,s3 then s3,s4 pivots. Use s2 → s1 → s3.
    let pts = vec![
        RoadLocation::new(segs[1], Point::new(100.0, 50.0), 0.0),
        RoadLocation::new(segs[0], Point::new(-100.0, 0.0), 10.0),
        RoadLocation::new(segs[2], Point::new(100.0, 0.0), 20.0),
    ];
    let tr = Trajectory::new(TrajectoryId::new(9), pts).unwrap();
    let mut d = Dataset::new("fig1a");
    d.push(tr);
    let out = form_base_clusters(&net, &d, true).unwrap();
    assert_eq!(out.fragment_count, 3);
    assert_eq!(out.base_clusters.len(), 3);
}
