//! Integration tests for the raw-GPS pipeline: simulate → noise →
//! map-match → NEAT, checking matcher accuracy and clustering stability.

use neat_repro::mapmatch::{MapMatcher, MatchConfig};
use neat_repro::mobisim::noise::to_raw_traces;
use neat_repro::mobisim::{generate_dataset, SimConfig};
use neat_repro::neat::{Mode, Neat, NeatConfig};
use neat_repro::rnet::netgen::{generate_grid_network, GridNetworkConfig};

fn setup() -> (neat_repro::rnet::RoadNetwork, neat_repro::traj::Dataset) {
    let net = generate_grid_network(&GridNetworkConfig::small_test(14, 14), 21);
    let data = generate_dataset(
        &net,
        &SimConfig {
            num_objects: 60,
            ..SimConfig::default()
        },
        22,
        "mm",
    );
    (net, data)
}

#[test]
fn matcher_recovers_most_segments_under_noise() {
    let (net, truth) = setup();
    let raw = to_raw_traces(&truth, 6.0, 5).expect("valid noise std");
    let matcher = MapMatcher::new(&net, MatchConfig::default());
    let (matched, skipped) = matcher.match_traces(&raw, "matched").unwrap();
    assert_eq!(skipped, 0);
    assert_eq!(matched.len(), truth.len());
    let mut correct = 0usize;
    let mut total = 0usize;
    for (t, m) in truth.trajectories().iter().zip(matched.trajectories()) {
        for (tp, mp) in t.points().iter().zip(m.points()) {
            total += 1;
            if tp.segment == mp.segment {
                correct += 1;
            }
        }
    }
    let accuracy = correct as f64 / total as f64;
    assert!(
        accuracy > 0.75,
        "matcher accuracy {accuracy:.3} below 75% ({correct}/{total})"
    );
}

#[test]
fn zero_noise_matching_is_near_perfect() {
    let (net, truth) = setup();
    let raw = to_raw_traces(&truth, 0.0, 5).expect("valid noise std");
    let matcher = MapMatcher::new(&net, MatchConfig::default());
    let (matched, _) = matcher.match_traces(&raw, "matched").unwrap();
    let mut correct = 0usize;
    let mut total = 0usize;
    for (t, m) in truth.trajectories().iter().zip(matched.trajectories()) {
        for (tp, mp) in t.points().iter().zip(m.points()) {
            total += 1;
            if tp.segment == mp.segment {
                correct += 1;
            }
        }
    }
    // Samples exactly at junctions are ambiguous between incident
    // segments; everything else must match.
    let accuracy = correct as f64 / total as f64;
    assert!(accuracy > 0.9, "noise-free accuracy {accuracy:.3}");
}

#[test]
fn clustering_on_matched_data_resembles_ground_truth() {
    let (net, truth) = setup();
    let raw = to_raw_traces(&truth, 6.0, 7).expect("valid noise std");
    let matcher = MapMatcher::new(&net, MatchConfig::default());
    let (matched, _) = matcher.match_traces(&raw, "matched").unwrap();

    let config = NeatConfig {
        min_card: 5,
        epsilon: 400.0,
        ..NeatConfig::default()
    };
    let neat = Neat::new(&net, config);
    let a = neat.run(&truth, Mode::Opt).unwrap();
    let b = neat.run(&matched, Mode::Opt).unwrap();
    // The dense-core should sit in the same neighbourhood: the top-5
    // densest segments of both runs overlap.
    let base_truth = neat.run(&truth, Mode::Base).unwrap();
    let base_matched = neat.run(&matched, Mode::Base).unwrap();
    let t5: std::collections::BTreeSet<_> = base_truth
        .base_clusters
        .iter()
        .take(5)
        .map(|c| c.segment())
        .collect();
    let m5: std::collections::BTreeSet<_> = base_matched
        .base_clusters
        .iter()
        .take(5)
        .map(|c| c.segment())
        .collect();
    assert!(
        t5.intersection(&m5).count() >= 3,
        "top dense segments diverge: {t5:?} vs {m5:?}"
    );
    // Cluster counts stay in the same ballpark.
    let (fa, fb) = (a.flow_clusters.len(), b.flow_clusters.len());
    assert!(
        fb <= fa.saturating_mul(3) + 5 && fa <= fb.saturating_mul(3) + 5,
        "flow counts diverge: truth {fa} vs matched {fb}"
    );
}
