//! Cross-crate property-based tests (proptest) on the core invariants the
//! paper's algorithms rely on.

use neat_repro::mobisim::{generate_dataset, SimConfig};
use neat_repro::neat::evaluation::pairwise_scores;
use neat_repro::neat::phase1::form_base_clusters;
use neat_repro::neat::phase2::form_flow_clusters;
use neat_repro::neat::phase3::refine_flow_clusters;
use neat_repro::neat::NeatConfig;
use neat_repro::rnet::netgen::{generate_grid_network, GridNetworkConfig};
use neat_repro::rnet::path::TravelMode;
use neat_repro::rnet::{NodeId, ShortestPathEngine};
use proptest::prelude::*;
use std::collections::HashMap;

fn small_net(seed: u64) -> neat_repro::rnet::RoadNetwork {
    let mut cfg = GridNetworkConfig::small_test(8, 8);
    cfg.segment_ratio = 1.5;
    generate_grid_network(&cfg, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ELB soundness (Section III-C3): the Euclidean distance never
    /// exceeds the network distance, for any node pair on any generated
    /// network.
    #[test]
    fn prop_euclidean_lower_bound(seed in 0u64..50, a in 0usize..64, b in 0usize..64) {
        let net = small_net(seed);
        let (a, b) = (NodeId::new(a % net.node_count()), NodeId::new(b % net.node_count()));
        let mut sp = ShortestPathEngine::new(&net);
        if let Some(dn) = sp.distance(&net, a, b, TravelMode::Undirected) {
            let de = net.euclidean_distance(a, b);
            prop_assert!(de <= dn + 1e-6, "ELB violated: dE={de} dN={dn}");
        }
    }

    /// Shortest-path metric properties on the undirected network:
    /// symmetry and the triangle inequality.
    #[test]
    fn prop_network_distance_is_a_metric(seed in 0u64..20,
                                         a in 0usize..64, b in 0usize..64, c in 0usize..64) {
        let net = small_net(seed);
        let n = net.node_count();
        let (a, b, c) = (NodeId::new(a % n), NodeId::new(b % n), NodeId::new(c % n));
        let mut sp = ShortestPathEngine::new(&net);
        let d = |sp: &mut ShortestPathEngine, x, y| sp.distance(&net, x, y, TravelMode::Undirected);
        let (ab, ba) = (d(&mut sp, a, b), d(&mut sp, b, a));
        prop_assert_eq!(ab.is_some(), ba.is_some());
        if let (Some(ab), Some(ba)) = (ab, ba) {
            prop_assert!((ab - ba).abs() < 1e-6, "asymmetric: {ab} vs {ba}");
        }
        if let (Some(ab), Some(bc), Some(ac)) =
            (d(&mut sp, a, b), d(&mut sp, b, c), d(&mut sp, a, c)) {
            prop_assert!(ac <= ab + bc + 1e-6, "triangle violated");
        }
    }

    /// Shortest-path routes are valid routes whose segment lengths sum to
    /// the reported distance.
    #[test]
    fn prop_routes_are_consistent(seed in 0u64..20, a in 0usize..64, b in 0usize..64) {
        let net = small_net(seed);
        let n = net.node_count();
        let (a, b) = (NodeId::new(a % n), NodeId::new(b % n));
        let mut sp = ShortestPathEngine::new(&net);
        if let Some(route) = sp.route(&net, a, b, TravelMode::Undirected) {
            prop_assert!(net.is_route(&route.segments));
            let sum: f64 = route
                .segments
                .iter()
                .map(|&s| net.segment(s).unwrap().length)
                .sum();
            prop_assert!((sum - route.length).abs() < 1e-6);
            prop_assert_eq!(route.nodes.first(), Some(&a));
            prop_assert_eq!(route.nodes.last(), Some(&b));
        }
    }

    /// Phase 1 invariants hold on arbitrary simulated traffic: fragments
    /// partition points; every t-fragment lands in exactly one base
    /// cluster; netflow is bounded by both cardinalities.
    #[test]
    fn prop_phase1_invariants(seed in 0u64..12, objects in 5usize..40) {
        let net = small_net(seed);
        let data = generate_dataset(&net, &SimConfig {
            num_objects: objects,
            ..SimConfig::default()
        }, seed.wrapping_add(1), "prop");
        let out = form_base_clusters(&net, &data, true).unwrap();
        let total: usize = out.base_clusters.iter().map(|c| c.density()).sum();
        prop_assert_eq!(total, out.fragment_count);
        for (i, x) in out.base_clusters.iter().enumerate() {
            for y in out.base_clusters.iter().skip(i + 1) {
                let f = x.netflow(y);
                prop_assert!(f <= x.trajectory_cardinality().min(y.trajectory_cardinality()));
                prop_assert_ne!(x.segment(), y.segment());
            }
        }
    }

    /// Phase 2 invariants: every base cluster lands in exactly one flow
    /// (counting discarded flows), flows are routes, and participating
    /// trajectories are the union of the members'.
    #[test]
    fn prop_phase2_invariants(seed in 0u64..12, objects in 5usize..40, min_card in 1usize..6) {
        let net = small_net(seed);
        let data = generate_dataset(&net, &SimConfig {
            num_objects: objects,
            ..SimConfig::default()
        }, seed.wrapping_add(1), "prop");
        let p1 = form_base_clusters(&net, &data, true).unwrap();
        let n_base = p1.base_clusters.len();
        let config = NeatConfig { min_card, ..NeatConfig::default() };
        let p2 = form_flow_clusters(&net, p1.base_clusters, &config).unwrap();
        let placed: usize = p2.flow_clusters.iter().map(|f| f.members().len()).sum();
        prop_assert!(placed <= n_base);
        for f in &p2.flow_clusters {
            prop_assert!(net.is_route(&f.route()));
            prop_assert!(f.trajectory_cardinality() >= min_card);
            let union: std::collections::BTreeSet<_> = f
                .members()
                .iter()
                .flat_map(|m| m.participating_trajectories().iter().copied())
                .collect();
            prop_assert_eq!(&union, f.participating_trajectories());
        }
    }

    /// Evaluation-metric sanity on random labelings: bounded scores,
    /// permutation invariance, and perfection on self-comparison.
    #[test]
    fn prop_pairwise_scores_are_sane(
        labels in proptest::collection::vec((0usize..5, 0usize..5), 2..60),
        offset in 1usize..99,
    ) {
        let truth: HashMap<u64, usize> =
            labels.iter().enumerate().map(|(i, &(t, _))| (i as u64, t)).collect();
        let pred: HashMap<u64, usize> =
            labels.iter().enumerate().map(|(i, &(_, p))| (i as u64, p)).collect();
        let s = pairwise_scores(&truth, &pred);
        prop_assert!((0.0..=1.0).contains(&s.precision));
        prop_assert!((0.0..=1.0).contains(&s.recall));
        prop_assert!((0.0..=1.0).contains(&s.f1));
        prop_assert!((0.0..=1.0).contains(&s.rand_index));
        prop_assert!(s.adjusted_rand <= 1.0 + 1e-9);
        // Relabelling predicted clusters changes nothing.
        let renamed: HashMap<u64, usize> =
            pred.iter().map(|(&k, &v)| (k, v + offset)).collect();
        let s2 = pairwise_scores(&truth, &renamed);
        prop_assert!((s.f1 - s2.f1).abs() < 1e-12);
        prop_assert!((s.adjusted_rand - s2.adjusted_rand).abs() < 1e-12);
        // Self-comparison is perfect.
        let selfs = pairwise_scores(&truth, &truth);
        prop_assert!((selfs.rand_index - 1.0).abs() < 1e-12);
    }

    /// Phase 3 invariants: output clusters partition the input flows and
    /// every flow appears exactly once, for any epsilon.
    #[test]
    fn prop_phase3_partitions_flows(seed in 0u64..12, objects in 10usize..40,
                                    eps in 10.0f64..2000.0) {
        let net = small_net(seed);
        let data = generate_dataset(&net, &SimConfig {
            num_objects: objects,
            ..SimConfig::default()
        }, seed.wrapping_add(1), "prop");
        let p1 = form_base_clusters(&net, &data, true).unwrap();
        let config = NeatConfig { min_card: 1, epsilon: eps, ..NeatConfig::default() };
        let p2 = form_flow_clusters(&net, p1.base_clusters, &config).unwrap();
        let n_flows = p2.flow_clusters.len();
        let p3 = refine_flow_clusters(&net, p2.flow_clusters, &config).unwrap();
        let total: usize = p3.clusters.iter().map(|c| c.flows().len()).sum();
        prop_assert_eq!(total, n_flows);
    }
}
