//! Cross-crate integration tests: simulator → NEAT pipeline invariants.

use neat_repro::mobisim::{generate_dataset, SimConfig};
use neat_repro::neat::{Mode, Neat, NeatConfig, Weights};
use neat_repro::rnet::netgen::{generate_grid_network, GridNetworkConfig};
use neat_repro::rnet::RoadNetwork;
use neat_repro::traj::Dataset;
use std::collections::BTreeSet;

fn setup(objects: usize, seed: u64) -> (RoadNetwork, Dataset) {
    let net = generate_grid_network(&GridNetworkConfig::small_test(12, 12), seed);
    let data = generate_dataset(
        &net,
        &SimConfig {
            num_objects: objects,
            ..SimConfig::default()
        },
        seed.wrapping_add(1),
        "integration",
    );
    (net, data)
}

fn config(min_card: usize) -> NeatConfig {
    NeatConfig {
        min_card,
        epsilon: 500.0,
        ..NeatConfig::default()
    }
}

#[test]
fn base_clusters_partition_fragments() {
    let (net, data) = setup(40, 1);
    let r = Neat::new(&net, config(1)).run(&data, Mode::Base).unwrap();
    // Every fragment is in exactly one base cluster; per-cluster segment
    // ids are homogeneous.
    let total: usize = r.base_clusters.iter().map(|c| c.density()).sum();
    assert_eq!(total, r.fragment_count);
    for c in &r.base_clusters {
        for f in c.fragments() {
            assert_eq!(f.segment, c.segment());
        }
    }
    // Density ordering.
    for w in r.base_clusters.windows(2) {
        assert!(w[0].density() >= w[1].density());
    }
}

#[test]
fn flows_are_routes_and_respect_min_card() {
    let (net, data) = setup(60, 2);
    let min_card = 4;
    let r = Neat::new(&net, config(min_card))
        .run(&data, Mode::Flow)
        .unwrap();
    assert!(!r.flow_clusters.is_empty());
    for f in &r.flow_clusters {
        assert!(net.is_route(&f.route()), "flow route must be a route");
        assert!(f.trajectory_cardinality() >= min_card);
        // Node chain is consistent with the member segments.
        assert_eq!(f.node_chain().len(), f.members().len() + 1);
        for (i, m) in f.members().iter().enumerate() {
            let seg = net.segment(m.segment()).unwrap();
            let (a, b) = (f.node_chain()[i], f.node_chain()[i + 1]);
            assert!(seg.has_endpoint(a) && seg.has_endpoint(b));
        }
    }
}

#[test]
fn flows_do_not_share_base_clusters() {
    let (net, data) = setup(60, 3);
    let r = Neat::new(&net, config(1)).run(&data, Mode::Flow).unwrap();
    let mut seen = BTreeSet::new();
    for f in &r.flow_clusters {
        for m in f.members() {
            assert!(
                seen.insert(m.segment()),
                "segment {} appears in two flows",
                m.segment()
            );
        }
    }
}

#[test]
fn opt_clusters_partition_flows() {
    let (net, data) = setup(60, 4);
    let r = Neat::new(&net, config(2)).run(&data, Mode::Opt).unwrap();
    let flow_count: usize = r.clusters.iter().map(|c| c.flows().len()).sum();
    assert_eq!(flow_count, r.flow_clusters.len());
    assert!(r.clusters.len() <= r.flow_clusters.len().max(1));
}

#[test]
fn pipeline_is_deterministic() {
    let (net, data) = setup(50, 5);
    let neat = Neat::new(&net, config(2));
    let a = neat.run(&data, Mode::Opt).unwrap();
    let b = neat.run(&data, Mode::Opt).unwrap();
    assert_eq!(a.base_cluster_count, b.base_cluster_count);
    assert_eq!(a.flow_clusters, b.flow_clusters);
    assert_eq!(a.clusters, b.clusters);
}

#[test]
fn modes_agree_on_shared_phases() {
    let (net, data) = setup(50, 6);
    let neat = Neat::new(&net, config(2));
    let base = neat.run(&data, Mode::Base).unwrap();
    let flow = neat.run(&data, Mode::Flow).unwrap();
    let opt = neat.run(&data, Mode::Opt).unwrap();
    assert_eq!(base.base_cluster_count, flow.base_cluster_count);
    assert_eq!(flow.base_cluster_count, opt.base_cluster_count);
    assert_eq!(base.fragment_count, opt.fragment_count);
    assert_eq!(flow.flow_clusters, opt.flow_clusters);
}

#[test]
fn min_card_monotonically_reduces_flows() {
    let (net, data) = setup(80, 7);
    let mut prev = usize::MAX;
    for min_card in [1usize, 3, 6, 12] {
        let r = Neat::new(&net, config(min_card))
            .run(&data, Mode::Flow)
            .unwrap();
        assert!(r.flow_clusters.len() <= prev);
        prev = r.flow_clusters.len();
    }
}

#[test]
fn larger_epsilon_merges_more() {
    let (net, data) = setup(80, 8);
    let mut prev = usize::MAX;
    for eps in [50.0, 300.0, 1000.0, 1e9] {
        let mut c = config(2);
        c.epsilon = eps;
        let r = Neat::new(&net, c).run(&data, Mode::Opt).unwrap();
        assert!(
            r.clusters.len() <= prev,
            "eps {eps} produced more clusters than smaller eps"
        );
        prev = r.clusters.len();
    }
    // With an effectively infinite epsilon on a connected network,
    // everything merges into one cluster.
    assert_eq!(prev, 1);
}

#[test]
fn weight_presets_all_produce_valid_flows() {
    let (net, data) = setup(50, 9);
    for w in [
        Weights::balanced(),
        Weights::flow_only(),
        Weights::density_only(),
        Weights::speed_only(),
        Weights::traffic_monitoring(),
    ] {
        let mut c = config(1);
        c.weights = w;
        let r = Neat::new(&net, c).run(&data, Mode::Flow).unwrap();
        for f in &r.flow_clusters {
            assert!(net.is_route(&f.route()));
        }
    }
}

#[test]
fn beta_thresholds_preserve_invariants() {
    let (net, data) = setup(50, 10);
    for beta in [1.0, 2.0, 10.0, f64::INFINITY] {
        let mut c = config(1);
        c.beta = beta;
        let r = Neat::new(&net, c).run(&data, Mode::Flow).unwrap();
        // All base clusters still consumed exactly once.
        let mut seen = BTreeSet::new();
        for f in &r.flow_clusters {
            for m in f.members() {
                assert!(seen.insert(m.segment()));
            }
        }
    }
}

#[test]
fn elb_and_dijkstra_agree_on_final_clustering() {
    let (net, data) = setup(60, 11);
    let mut elb_cfg = config(2);
    elb_cfg.use_elb = true;
    let mut dij_cfg = config(2);
    dij_cfg.use_elb = false;
    dij_cfg.sp_strategy = neat_repro::neat::SpStrategy::Dijkstra;
    let a = Neat::new(&net, elb_cfg).run(&data, Mode::Opt).unwrap();
    let b = Neat::new(&net, dij_cfg).run(&data, Mode::Opt).unwrap();
    let sizes = |r: &neat_repro::neat::NeatResult| {
        let mut v: Vec<usize> = r.clusters.iter().map(|c| c.flows().len()).collect();
        v.sort();
        v
    };
    assert_eq!(sizes(&a), sizes(&b));
}

#[test]
fn full_route_distance_produces_a_valid_partition() {
    // The FullRoute measure changes which flows merge (its max spans
    // every junction, but its min terms also get more candidates), so no
    // ordering of cluster counts is guaranteed — only that both settings
    // share Phase-2 output and partition the flows.
    let (net, data) = setup(70, 13);
    let mut ep = config(2);
    ep.epsilon = 800.0;
    let mut fr = ep;
    fr.route_distance = neat_repro::neat::RouteDistance::FullRoute;
    let a = Neat::new(&net, ep).run(&data, Mode::Opt).unwrap();
    let b = Neat::new(&net, fr).run(&data, Mode::Opt).unwrap();
    assert_eq!(a.flow_clusters.len(), b.flow_clusters.len());
    for r in [&a, &b] {
        let placed: usize = r.clusters.iter().map(|c| c.flows().len()).sum();
        assert_eq!(placed, r.flow_clusters.len());
    }
}

#[test]
fn parallel_threads_preserve_pipeline_output() {
    let (net, data) = setup(60, 14);
    let seq = Neat::new(&net, config(2)).run(&data, Mode::Opt).unwrap();
    let mut par_cfg = config(2);
    par_cfg.threads = 4;
    let par = Neat::new(&net, par_cfg).run(&data, Mode::Opt).unwrap();
    assert_eq!(seq.flow_clusters, par.flow_clusters);
    assert_eq!(seq.clusters, par.clusters);
}

#[test]
fn dataset_io_roundtrip_preserves_clustering() {
    let (net, data) = setup(30, 12);
    let mut buf = Vec::new();
    neat_repro::traj::io::write_dataset(&data, &mut buf).unwrap();
    let reloaded = neat_repro::traj::io::read_dataset("reload", buf.as_slice()).unwrap();
    let neat = Neat::new(&net, config(2));
    let a = neat.run(&data, Mode::Opt).unwrap();
    let b = neat.run(&reloaded, Mode::Opt).unwrap();
    assert_eq!(a.flow_clusters.len(), b.flow_clusters.len());
    assert_eq!(a.clusters.len(), b.clusters.len());
}
