//! Crash-point chaos harness for the durable checkpoint/resume pipeline.
//!
//! The headline robustness test of the durability subsystem: a seeded
//! incremental clustering run is executed against a fault-injecting
//! filesystem ([`FaultFs`]) that kills or corrupts exactly one mutating
//! disk operation. Every operation index is tried with every fault kind;
//! after each simulated crash the run is "restarted" from the surviving
//! bytes and must reproduce the clusters of an uninterrupted run — byte
//! for byte, compared via `Debug` fingerprints.
//!
//! Invariants asserted per crash point:
//!
//! * **Fatal faults** (`Lost`, `Torn`) — the driver errors (or, when the
//!   fault strikes the best-effort retention phase of the final
//!   checkpoint, completes with reference-identical clusters), the
//!   restart resumes and finishes with a fingerprint identical to the
//!   reference.
//! * **Recoverable faults** (`NoSpace`, `RenameFail`) — the driver sees
//!   the error (or rides through it when it hits best-effort retention),
//!   the on-disk state stays consistent, and a restart again matches the
//!   reference exactly.
//! * **Silent corruption** (`BitFlip`) — the live run is unaffected; the
//!   restart either recovers to the reference (older snapshot + journal)
//!   or fails with a structured corruption error. It must never succeed
//!   with *different* clusters.
//!
//! On any violation the failing crash-point id and a hex dump of the
//! surviving filesystem are written to `target/chaos-artifacts/` so the
//! exact disk image can be inspected offline.

use neat_repro::durability::{Fs, MemFs};
use neat_repro::mobisim::faults::{DiskFault, FaultFs};
use neat_repro::mobisim::{generate_dataset, SimConfig};
use neat_repro::neat::{
    CheckpointError, CheckpointStore, ErrorPolicy, IncrementalNeat, NeatConfig,
};
use neat_repro::rnet::netgen::{generate_grid_network, GridNetworkConfig};
use neat_repro::rnet::RoadNetwork;
use neat_repro::traj::Dataset;
use std::fmt::Write as _;
use std::path::PathBuf;

const CKPT_DIR: &str = "/chaos/ckpt";
const BATCHES: usize = 3;

fn fixture() -> (RoadNetwork, Vec<Dataset>) {
    let net = generate_grid_network(&GridNetworkConfig::small_test(4, 4), 7);
    let config = SimConfig {
        num_objects: 18,
        num_hotspots: 2,
        num_destinations: 2,
        sample_period_s: 4.0,
        ..SimConfig::default()
    };
    let data = generate_dataset(&net, &config, 7, "chaos");
    let windows = data.split_windows(BATCHES);
    (net, windows)
}

fn neat_config() -> NeatConfig {
    NeatConfig {
        min_card: 3,
        epsilon: 600.0,
        ..NeatConfig::default()
    }
}

/// `Debug` fingerprint of the complete observable clustering state.
fn fingerprint(session: &IncrementalNeat<'_>) -> Result<String, String> {
    let clusters = session.current_clusters().map_err(|e| e.to_string())?;
    Ok(format!(
        "batches={}\nflows={:#?}\nclusters={:#?}\nresilience={:#?}",
        session.batches(),
        session.flow_clusters(),
        clusters,
        session.resilience()
    ))
}

/// One full driver run over `fs`: resume if a checkpoint exists (fresh
/// otherwise), re-feed every batch the checkpoint has not acknowledged,
/// snapshot after each batch, and fingerprint the final clusters.
fn drive<F: Fs>(fs: F, net: &RoadNetwork, windows: &[Dataset]) -> Result<String, String> {
    let store = CheckpointStore::open(fs, CKPT_DIR).map_err(|e| e.to_string())?;
    let mut session = match IncrementalNeat::resume(net, neat_config(), &store) {
        Ok((session, _report)) => session,
        Err(CheckpointError::NoCheckpoint { .. }) => IncrementalNeat::new(net, neat_config()),
        Err(e) => return Err(format!("resume: {e}")),
    };
    for window in windows.iter().skip(session.batches()) {
        session
            .ingest_logged(window, ErrorPolicy::Strict, &store)
            .map_err(|e| format!("ingest: {e}"))?;
        session
            .save_checkpoint(&store)
            .map_err(|e| format!("checkpoint: {e}"))?;
    }
    fingerprint(&session)
}

/// Straight-through run with no store at all — the ground truth.
fn reference_fingerprint(net: &RoadNetwork, windows: &[Dataset]) -> String {
    let mut session = IncrementalNeat::new(net, neat_config());
    for window in windows {
        session
            .ingest_with_policy(window, ErrorPolicy::Strict)
            .expect("clean ingest");
    }
    fingerprint(&session).expect("clean fingerprint")
}

/// Writes the failing crash point and a hex dump of the surviving disk
/// to `target/chaos-artifacts/` and panics with `msg`.
fn fail_with_artifact(id: &str, disk: &MemFs, msg: &str) -> ! {
    let dir = PathBuf::from("target/chaos-artifacts");
    let _ = std::fs::create_dir_all(&dir);
    let mut report = format!("crash point: {id}\nfailure: {msg}\n\nsurviving disk:\n");
    for (path, bytes) in disk.dump() {
        let _ = writeln!(report, "--- {} ({} bytes)", path.display(), bytes.len());
        for chunk in bytes.chunks(16) {
            let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
            let _ = writeln!(report, "    {}", hex.join(" "));
        }
    }
    let path = dir.join(format!(
        "{}.txt",
        id.replace(['{', '}', ' ', ':', ','], "_")
    ));
    let _ = std::fs::write(&path, &report);
    panic!(
        "chaos harness failed at {id}: {msg} (artifact: {})",
        path.display()
    );
}

#[test]
fn every_crash_point_recovers_to_identical_clusters() {
    let (net, windows) = fixture();
    let reference = reference_fingerprint(&net, &windows);

    // An unfaulted checkpointed run must already match the straight-through
    // run, and tells us how many mutating disk operations there are.
    let probe = FaultFs::unarmed(MemFs::new());
    let clean = drive(probe.clone(), &net, &windows).expect("unfaulted run");
    assert_eq!(clean, reference, "checkpointing must not change results");
    let total_ops = probe.mutating_ops();
    assert!(
        total_ops >= (BATCHES * 2) as u64,
        "expected at least one journal append and one snapshot write per batch, got {total_ops}"
    );

    let faults = [
        DiskFault::Lost,
        DiskFault::Torn { keep: 0 },
        DiskFault::Torn { keep: 7 },
        DiskFault::BitFlip {
            offset: 3,
            mask: 0x01,
        },
        DiskFault::BitFlip {
            offset: 13,
            mask: 0x40,
        },
        DiskFault::NoSpace,
        DiskFault::RenameFail,
    ];
    let mut crash_points = 0u64;
    for op in 0..total_ops {
        for fault in faults {
            crash_points += 1;
            let id = format!("op{op}-{fault:?}");
            let fs = FaultFs::armed(MemFs::new(), op, fault);
            let first = drive(fs.clone(), &net, &windows);
            assert!(
                fs.fault_fired(),
                "crash point {id}: probe said op {op} exists but the fault never fired"
            );
            let silent = matches!(fault, DiskFault::BitFlip { .. });
            match &first {
                Ok(fp) if fp == &reference => {}
                Ok(fp) => fail_with_artifact(
                    &id,
                    &fs.storage(),
                    &format!("live run diverged:\n{fp}\nvs reference:\n{reference}"),
                ),
                // A detected error is legitimate for every fault kind: the
                // crash faults kill the handle, the recoverable faults
                // surface an I/O error, and a bit flip may be *detected*
                // later (e.g. while pruning past a corrupted journal).
                Err(_) => {}
            }

            // "Restart the process": reopen the surviving bytes.
            let survivor = fs.storage();
            match drive(survivor.clone(), &net, &windows) {
                Ok(fp) if fp == reference => {}
                Ok(fp) => fail_with_artifact(
                    &id,
                    &survivor,
                    &format!(
                        "restart produced different clusters:\n{fp}\nvs reference:\n{reference}"
                    ),
                ),
                Err(e) if silent => {
                    // Silent media corruption may be unrecoverable, but it
                    // must be *detected* (structured error), never folded
                    // into wrong output. Reaching this arm is that case.
                    let _ = e;
                }
                Err(e) => fail_with_artifact(
                    &id,
                    &survivor,
                    &format!("restart failed after a non-silent fault: {e}"),
                ),
            }
        }
    }
    assert!(
        crash_points >= 7 * (BATCHES as u64) * 2,
        "matrix unexpectedly small: {crash_points} crash points"
    );
}

/// A crash can also strike while *resuming* (the recovery path itself
/// writes snapshots once it starts ingesting again). Re-run the matrix
/// with the fault armed beyond the first run's operations so it fires
/// during the post-restart run, then restart once more.
#[test]
fn crashes_during_recovery_are_also_recoverable() {
    let (net, windows) = fixture();
    let reference = reference_fingerprint(&net, &windows);

    // Crash the first run at a fixed early point (mid second batch).
    let probe = FaultFs::unarmed(MemFs::new());
    drive(probe.clone(), &net, &windows).expect("unfaulted run");
    let total_ops = probe.mutating_ops();
    let first_crash = total_ops / 2;

    let fs = FaultFs::armed(MemFs::new(), first_crash, DiskFault::Lost);
    assert!(drive(fs.clone(), &net, &windows).is_err(), "first crash");

    // Probe how many ops the *recovery* run performs.
    let recovery_probe = FaultFs::unarmed(fs.storage());
    drive(recovery_probe.clone(), &net, &windows).expect("recovery probe");
    let recovery_ops = recovery_probe.mutating_ops();
    // The probe mutated the shared disk; rebuild the crashed disk fresh.
    for op in 0..recovery_ops {
        let fs = FaultFs::armed(MemFs::new(), first_crash, DiskFault::Lost);
        let _ = drive(fs.clone(), &net, &windows);
        let recovery = FaultFs::armed(fs.storage(), op, DiskFault::Torn { keep: 3 });
        let second = drive(recovery.clone(), &net, &windows);
        if !recovery.fault_fired() {
            // This recovery run performed fewer ops than the probe
            // (it resumed from a later snapshot); the run must simply
            // have succeeded.
            assert_eq!(second.expect("no fault fired"), reference);
            continue;
        }
        match &second {
            Err(_) => {}
            // Retention (snapshot pruning + journal compaction) is
            // best-effort: a crash there is swallowed by
            // `save_checkpoint`, so a fault striking the *final*
            // batch's retention phase lets the run complete — but only
            // ever with the reference clusters.
            Ok(fp) if fp == &reference => {}
            Ok(fp) => fail_with_artifact(
                &format!("recovery-op{op}"),
                &recovery.storage(),
                &format!("faulted recovery diverged:\n{fp}\nvs:\n{reference}"),
            ),
        }
        match drive(recovery.storage(), &net, &windows) {
            Ok(fp) if fp == reference => {}
            Ok(fp) => fail_with_artifact(
                &format!("recovery-op{op}"),
                &recovery.storage(),
                &format!("double-crash recovery diverged:\n{fp}\nvs:\n{reference}"),
            ),
            Err(e) => fail_with_artifact(
                &format!("recovery-op{op}"),
                &recovery.storage(),
                &format!("double-crash recovery failed: {e}"),
            ),
        }
    }
}
