//! Online-clustering replay: a recorded dataset is split into time
//! windows and streamed through [`IncrementalNeat`], exercising the
//! `Dataset::split_windows` + incremental ingestion path end to end.

use neat_repro::mobisim::{generate_dataset, SimConfig};
use neat_repro::neat::{IncrementalNeat, Mode, Neat, NeatConfig};
use neat_repro::rnet::netgen::{generate_grid_network, GridNetworkConfig};

fn setup() -> (neat_repro::rnet::RoadNetwork, neat_repro::traj::Dataset) {
    let net = generate_grid_network(&GridNetworkConfig::small_test(14, 14), 31);
    let data = generate_dataset(
        &net,
        &SimConfig {
            num_objects: 80,
            start_window_s: 900.0,
            ..SimConfig::default()
        },
        32,
        "replay",
    );
    (net, data)
}

fn config() -> NeatConfig {
    NeatConfig {
        min_card: 3,
        epsilon: 500.0,
        ..NeatConfig::default()
    }
}

#[test]
fn windows_partition_points_in_time() {
    let (_, data) = setup();
    let windows = data.split_windows(5);
    assert_eq!(windows.len(), 5);
    // Window boundaries are monotone and trajectories only hold samples
    // inside their window.
    let mut prev_hi = f64::NEG_INFINITY;
    for w in &windows {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for tr in w.trajectories() {
            lo = lo.min(tr.first().time);
            hi = hi.max(tr.last().time);
        }
        if w.is_empty() {
            continue;
        }
        assert!(lo >= prev_hi - 1e-6, "windows overlap: {lo} < {prev_hi}");
        prev_hi = hi;
    }
}

#[test]
fn replay_through_incremental_clusterer() {
    let (net, data) = setup();
    let mut online = IncrementalNeat::new(&net, config());
    let mut last = Vec::new();
    for window in data.split_windows(4) {
        if window.is_empty() {
            continue;
        }
        last = online.ingest(&window).unwrap();
    }
    assert!(online.batches() >= 3);
    assert!(!last.is_empty(), "replay should produce clusters");
    // The retained flows partition into the final clusters.
    let placed: usize = last.iter().map(|c| c.flows().len()).sum();
    assert_eq!(placed, online.flow_clusters().len());
}

#[test]
fn replay_covers_similar_roads_to_oneshot() {
    let (net, data) = setup();
    let mut online = IncrementalNeat::new(&net, config());
    for window in data.split_windows(4) {
        if !window.is_empty() {
            online.ingest(&window).unwrap();
        }
    }
    let oneshot = Neat::new(&net, config()).run(&data, Mode::Flow).unwrap();
    let covered = |flows: &[neat_repro::neat::FlowCluster]| {
        flows
            .iter()
            .flat_map(|f| f.route())
            .collect::<std::collections::BTreeSet<_>>()
    };
    let online_set = covered(online.flow_clusters());
    let oneshot_set = covered(&oneshot.flow_clusters);
    // Streaming splits trips across windows, so coverage differs, but the
    // backbone roads must agree: most one-shot flow segments reappear.
    let overlap = oneshot_set.intersection(&online_set).count();
    assert!(
        overlap * 2 >= oneshot_set.len(),
        "online coverage too different: {overlap}/{}",
        oneshot_set.len()
    );
}
