//! Fuzz-style robustness tests for the text readers: arbitrary input must
//! never panic — it either parses or returns a structured error — and
//! valid files round-trip exactly.

use neat_repro::rnet::io::read_network;
use neat_repro::traj::io::read_dataset;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes (as lossy text lines) never panic the dataset
    /// reader.
    #[test]
    fn dataset_reader_never_panics(input in "[ -~\n,]{0,400}") {
        let _ = read_dataset("fuzz", input.as_bytes());
    }

    /// Arbitrary CSV-shaped garbage never panics the dataset reader.
    #[test]
    fn dataset_reader_handles_csv_shapes(
        rows in proptest::collection::vec(
            (0u64..5, 0usize..9, -1e6..1e6f64, -1e6..1e6f64, -1e3..1e3f64),
            0..40,
        )
    ) {
        let text: String = rows
            .iter()
            .map(|(id, sid, x, y, t)| format!("{id},{sid},{x},{y},{t}\n"))
            .collect();
        // May be Ok or Err (times can go backwards within an id), but
        // never panics; on success the points are preserved.
        if let Ok(d) = read_dataset("fuzz", text.as_bytes()) {
            prop_assert!(d.total_points() <= rows.len());
        }
    }

    /// Arbitrary text never panics the network reader.
    #[test]
    fn network_reader_never_panics(input in "[ -~\n,]{0,400}") {
        let _ = read_network(input.as_bytes());
    }

    /// Structured node/segment garbage never panics the network reader.
    #[test]
    fn network_reader_handles_record_shapes(
        nodes in proptest::collection::vec((-1e6..1e6f64, -1e6..1e6f64), 0..20),
        segs in proptest::collection::vec((0usize..25, 0usize..25, 0.0..1e4f64, -5.0..50.0f64, 0u8..3), 0..30),
    ) {
        let mut text = String::new();
        for (i, (x, y)) in nodes.iter().enumerate() {
            text.push_str(&format!("node,{i},{x},{y}\n"));
        }
        for (i, (a, b, len, speed, oneway)) in segs.iter().enumerate() {
            text.push_str(&format!("segment,{i},{a},{b},{len},{speed},{oneway}\n"));
        }
        if let Ok(net) = read_network(text.as_bytes()) {
            prop_assert_eq!(net.node_count(), nodes.len());
        }
    }

    /// Valid generated datasets always round-trip bit-exact through the
    /// writer/reader pair (beyond the unit test's single fixed case).
    #[test]
    fn dataset_roundtrip_random(seed in 0u64..30, objects in 2usize..12) {
        let net = neat_repro::rnet::netgen::generate_grid_network(
            &neat_repro::rnet::netgen::GridNetworkConfig::small_test(6, 6),
            seed,
        );
        let data = neat_repro::mobisim::generate_dataset(
            &net,
            &neat_repro::mobisim::SimConfig {
                num_objects: objects,
                ..neat_repro::mobisim::SimConfig::default()
            },
            seed.wrapping_add(1),
            "rt",
        );
        let mut buf = Vec::new();
        neat_repro::traj::io::write_dataset(&data, &mut buf).unwrap();
        let back = read_dataset("rt", buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), data.len());
        for (a, b) in data.trajectories().iter().zip(back.trajectories()) {
            prop_assert_eq!(a.id(), b.id());
            prop_assert_eq!(a.len(), b.len());
            for (pa, pb) in a.points().iter().zip(b.points()) {
                prop_assert_eq!(pa.segment, pb.segment);
                prop_assert!((pa.position.x - pb.position.x).abs() < 1e-12);
                prop_assert!((pa.time - pb.time).abs() < 1e-12);
            }
        }
    }
}
