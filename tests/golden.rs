//! Golden regression tests: a tiny fixed network and hand-written dataset
//! with exact expected clustering output. Any behavioural change to the
//! pipeline shows up here as a precise diff, not a vague statistic.

use neat_repro::neat::{Mode, Neat, NeatConfig, Weights};
use neat_repro::rnet::{Point, RoadLocation, RoadNetwork, RoadNetworkBuilder, SegmentId};
use neat_repro::traj::{Dataset, Trajectory, TrajectoryId};

/// The Figure-2-style example network: a main avenue (s0..s3 west→east),
/// a northern branch (s4, s5) and a southern spur (s6).
///
/// ```text
///             n5 --s5-- n6
///             |
///             s4
///             |
/// n0 -s0- n1 -s1- n2 -s2- n3 -s3- n4
///                 |
///                 s6
///                 |
///                 n7
/// ```
fn golden_network() -> RoadNetwork {
    let mut b = RoadNetworkBuilder::new();
    let n0 = b.add_node(Point::new(0.0, 0.0));
    let n1 = b.add_node(Point::new(100.0, 0.0));
    let n2 = b.add_node(Point::new(200.0, 0.0));
    let n3 = b.add_node(Point::new(300.0, 0.0));
    let n4 = b.add_node(Point::new(400.0, 0.0));
    let n5 = b.add_node(Point::new(100.0, 100.0));
    let n6 = b.add_node(Point::new(200.0, 100.0));
    let n7 = b.add_node(Point::new(200.0, -100.0));
    b.add_segment(n0, n1, 13.9).unwrap(); // s0
    b.add_segment(n1, n2, 13.9).unwrap(); // s1
    b.add_segment(n2, n3, 13.9).unwrap(); // s2
    b.add_segment(n3, n4, 13.9).unwrap(); // s3
    b.add_segment(n1, n5, 13.9).unwrap(); // s4
    b.add_segment(n5, n6, 13.9).unwrap(); // s5
    b.add_segment(n2, n7, 13.9).unwrap(); // s6
    b.build().unwrap()
}

/// Traffic: 4 objects ride the full avenue, 2 turn onto the north branch,
/// 1 takes the southern spur.
fn golden_dataset() -> Dataset {
    let mk = |id: u64, sids: &[usize]| {
        let pts = sids
            .iter()
            .enumerate()
            .flat_map(|(k, &s)| {
                // Two samples per visited segment, mid-segment-ish.
                let (x, y) = match s {
                    0 => (50.0, 0.0),
                    1 => (150.0, 0.0),
                    2 => (250.0, 0.0),
                    3 => (350.0, 0.0),
                    4 => (100.0, 50.0),
                    5 => (150.0, 100.0),
                    _ => (200.0, -50.0),
                };
                [
                    RoadLocation::new(SegmentId::new(s), Point::new(x - 5.0, y), k as f64 * 20.0),
                    RoadLocation::new(
                        SegmentId::new(s),
                        Point::new(x + 5.0, y),
                        k as f64 * 20.0 + 8.0,
                    ),
                ]
            })
            .collect();
        Trajectory::new(TrajectoryId::new(id), pts).unwrap()
    };
    let mut d = Dataset::new("golden");
    for id in 0..4 {
        d.push(mk(id, &[0, 1, 2, 3])); // avenue riders
    }
    for id in 10..12 {
        d.push(mk(id, &[0, 4, 5])); // north-branch riders
    }
    d.push(mk(20, &[1, 6])); // southern spur rider
    d
}

fn config() -> NeatConfig {
    NeatConfig {
        weights: Weights::flow_only(),
        min_card: 1,
        epsilon: 150.0,
        ..NeatConfig::default()
    }
}

#[test]
fn golden_phase1() {
    let net = golden_network();
    let r = Neat::new(&net, config())
        .run(&golden_dataset(), Mode::Base)
        .unwrap();
    // Densities: s0: 4+2=6, s1: 4+1=5, s2: 4, s3: 4, s4: 2, s5: 2, s6: 1.
    let got: Vec<(usize, usize)> = r
        .base_clusters
        .iter()
        .map(|c| (c.segment().index(), c.density()))
        .collect();
    assert_eq!(
        got,
        vec![(0, 6), (1, 5), (2, 4), (3, 4), (4, 2), (5, 2), (6, 1)]
    );
}

#[test]
fn golden_phase2() {
    let net = golden_network();
    let r = Neat::new(&net, config())
        .run(&golden_dataset(), Mode::Flow)
        .unwrap();
    // Dense-core s0 grows along maxFlow: s0→s1 (f=4) →s2→s3; the branch
    // riders then form s4→s5; the spur rider forms s6.
    let routes: Vec<Vec<usize>> = r
        .flow_clusters
        .iter()
        .map(|f| f.route().iter().map(|s| s.index()).collect())
        .collect();
    assert_eq!(routes, vec![vec![0, 1, 2, 3], vec![4, 5], vec![6]]);
    let cards: Vec<usize> = r
        .flow_clusters
        .iter()
        .map(|f| f.trajectory_cardinality())
        .collect();
    assert_eq!(cards, vec![7, 2, 1]);
}

#[test]
fn golden_phase3() {
    let net = golden_network();
    // Flow endpoints: avenue (n0,n4); branch (n1,n6); spur (n2,n7).
    // Modified Hausdorff distances: avenue↔branch = 300 m (n4's nearest
    // branch endpoint is n1, three segments away), branch↔spur = 300 m
    // (n6→n2 runs n6-n5-n1-n2). So ε just below 300 keeps all three
    // flows separate…
    let r = Neat::new(&net, config())
        .run(&golden_dataset(), Mode::Opt)
        .unwrap();
    assert_eq!(r.flow_clusters.len(), 3);
    let sizes: Vec<usize> = r.clusters.iter().map(|c| c.flows().len()).collect();
    assert_eq!(sizes, vec![1, 1, 1]);
    // …and ε = 300 density-connects everything into one cluster.
    let mut wide = config();
    wide.epsilon = 300.0;
    let r = Neat::new(&net, wide)
        .run(&golden_dataset(), Mode::Opt)
        .unwrap();
    let sizes: Vec<usize> = r.clusters.iter().map(|c| c.flows().len()).collect();
    assert_eq!(sizes, vec![3]);
}

#[test]
fn golden_direction_analysis() {
    let net = golden_network();
    let r = Neat::new(&net, config())
        .run(&golden_dataset(), Mode::Base)
        .unwrap();
    // All traffic flows west→east on s0 (a=n0, b=n1): 6 forward.
    let s0 = r
        .base_clusters
        .iter()
        .find(|c| c.segment() == SegmentId::new(0))
        .unwrap();
    let split = neat_repro::neat::analysis::direction_split(&net, s0);
    assert_eq!(split.forward, 6);
    assert_eq!(split.backward, 0);
    assert_eq!(split.forward_fraction(), 1.0);
}
