//! Thread-count invariance matrix: the contract of the deterministic
//! executor (`neat-exec`). Running any pipeline version with
//! `threads ∈ {2, 8}` must produce *byte-identical* output to the
//! sequential run — clean runs, cancelled runs, budget-exhausted runs,
//! and the persisted checkpoint/journal bytes alike.
//!
//! Interrupted runs are the hard case: workers race speculatively, but
//! op/settle charges are committed against the real budget in item
//! order, so the interrupt cut point — and with it the delivered
//! partial result and degradation report — must not depend on the
//! thread count.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use neat_repro::durability::MemFs;
use neat_repro::mobisim::{generate_dataset, SimConfig};
use neat_repro::neat::{
    CheckpointStore, ErrorPolicy, IncrementalNeat, Mode, Neat, NeatConfig, NeatResult, Outcome,
};
use neat_repro::rnet::netgen::{generate_grid_network, GridNetworkConfig, MapPreset};
use neat_repro::rnet::RoadNetwork;
use neat_repro::runctl::{CancelToken, Control, OverrunMode, RunBudget};
use neat_repro::traj::Dataset;
use std::sync::OnceLock;

const MODES: [Mode; 3] = [Mode::Base, Mode::Flow, Mode::Opt];
const THREADS: [usize; 2] = [2, 8];

/// The `crash_chaos`/`budget_chaos` fixture: 4×4 grid, 18 objects.
fn chaos_fixture() -> &'static (RoadNetwork, Dataset) {
    static FIXTURE: OnceLock<(RoadNetwork, Dataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let net = generate_grid_network(&GridNetworkConfig::small_test(4, 4), 7);
        let config = SimConfig {
            num_objects: 18,
            num_hotspots: 2,
            num_destinations: 2,
            sample_period_s: 4.0,
            ..SimConfig::default()
        };
        let data = generate_dataset(&net, &config, 7, "chaos");
        (net, data)
    })
}

fn neat_config(threads: usize) -> NeatConfig {
    NeatConfig {
        min_card: 3,
        epsilon: 600.0,
        threads,
        ..NeatConfig::default()
    }
}

/// `Debug` fingerprint of everything observable except wall-clock
/// timings (the only field allowed to differ between identical runs).
fn result_fingerprint(r: &NeatResult) -> String {
    format!(
        "mode={:?}\nbase={:#?}\nbase_count={}\nfragments={}\nflows={:#?}\ndiscarded={}\n\
         clusters={:#?}\nstats={:#?}\nresilience={:#?}",
        r.mode,
        r.base_clusters,
        r.base_cluster_count,
        r.fragment_count,
        r.flow_clusters,
        r.discarded_flows,
        r.clusters,
        r.phase3_stats,
        r.resilience,
    )
}

fn outcome_fingerprint(out: &Outcome) -> String {
    format!(
        "{}\ncompleteness={:#?}\ndegradation={:#?}\ninterrupt={:?}",
        result_fingerprint(&out.result),
        out.completeness,
        out.degradation,
        out.interrupt,
    )
}

/// Clean (uninterrupted) runs: every mode, every thread count, on the
/// chaos fixture.
#[test]
fn thread_matrix_is_byte_identical_on_the_chaos_fixture() {
    let (net, data) = chaos_fixture();
    for mode in MODES {
        let reference = Neat::new(net, neat_config(1))
            .run(data, mode)
            .expect("sequential run");
        let want = result_fingerprint(&reference);
        for threads in THREADS {
            let got = Neat::new(net, neat_config(threads))
                .run(data, mode)
                .expect("parallel run");
            assert_eq!(
                result_fingerprint(&got),
                want,
                "{} diverged at threads={threads}",
                mode.name()
            );
        }
    }
}

/// How the interrupt matrix arms a run at check point `at`.
#[derive(Clone, Copy)]
enum Arming {
    /// External cancellation via a fused token: trips on the `at+1`-th
    /// poll. Fuse polls are consumed in item order by the executor's
    /// commit protocol, so the trip point is thread-invariant.
    Cancel,
    /// Op-budget exhaustion (`max_ops = at`) under the given overrun
    /// policy.
    OpBudget(OverrunMode),
}

impl Arming {
    fn control(self, at: u64) -> Control {
        match self {
            Arming::Cancel => Control::new(RunBudget::unlimited(), CancelToken::armed_after(at)),
            Arming::OpBudget(overrun) => {
                Control::new(RunBudget::unlimited().with_max_ops(at), CancelToken::new())
                    .with_overrun(overrun)
            }
        }
    }

    fn label(self) -> &'static str {
        match self {
            Arming::Cancel => "cancel",
            Arming::OpBudget(OverrunMode::Degrade) => "ops-degrade",
            Arming::OpBudget(OverrunMode::Partial) => "ops-partial",
        }
    }
}

/// Interrupted runs: the cut point, partial result, and degradation
/// report must all be thread-invariant. Covers cancellation and both
/// op-budget overrun policies at a spread of arming points.
#[test]
fn interrupted_runs_are_byte_identical_across_thread_counts() {
    let (net, data) = chaos_fixture();
    // Total check points of a clean opt run, for scaling the arming
    // points into the interesting range.
    let probe = Control::unlimited();
    Neat::new(net, neat_config(1))
        .run_controlled(data, Mode::Opt, ErrorPolicy::Strict, &probe)
        .expect("probe run");
    let total = probe.ops();
    let points: Vec<u64> = [0, 1, 2, 3, 5, 8]
        .into_iter()
        .chain([total / 4, total / 2, (3 * total) / 4, total - 1, total + 2])
        .collect();

    for arming in [
        Arming::Cancel,
        Arming::OpBudget(OverrunMode::Degrade),
        Arming::OpBudget(OverrunMode::Partial),
    ] {
        for &at in &points {
            let run = |threads: usize| {
                let ctl = arming.control(at);
                let out = Neat::new(net, neat_config(threads))
                    .run_controlled(data, Mode::Opt, ErrorPolicy::Strict, &ctl)
                    .expect("armed run");
                outcome_fingerprint(&out)
            };
            let want = run(1);
            for threads in THREADS {
                assert_eq!(
                    run(threads),
                    want,
                    "{}-at{at} diverged at threads={threads}",
                    arming.label()
                );
            }
        }
    }
}

/// The persisted state is thread-invariant too: checkpoint snapshots
/// and journal segments written by a threaded incremental session are
/// byte-for-byte the files a sequential session writes.
#[test]
fn checkpoint_and_journal_bytes_are_thread_invariant() {
    let net = generate_grid_network(&GridNetworkConfig::small_test(5, 5), 42);
    let sim = SimConfig {
        num_objects: 30,
        num_hotspots: 2,
        num_destinations: 3,
        sample_period_s: 3.0,
        ..SimConfig::default()
    };
    let windows = generate_dataset(&net, &sim, 42, "par-det").split_windows(4);

    let persist = |threads: usize| -> Vec<(std::path::PathBuf, Vec<u8>)> {
        let fs = MemFs::new();
        let store = CheckpointStore::open(fs.clone(), "/det/par").expect("open store");
        let mut s = IncrementalNeat::new(&net, neat_config(threads));
        for w in &windows {
            s.ingest_logged(w, ErrorPolicy::Strict, &store)
                .expect("ingest");
        }
        s.save_checkpoint(&store).expect("checkpoint");
        let mut dump = fs.dump();
        dump.sort();
        dump
    };

    let want = persist(1);
    assert!(!want.is_empty(), "checkpoint store stayed empty");
    for threads in THREADS {
        let got = persist(threads);
        assert_eq!(
            got.len(),
            want.len(),
            "file set differs at threads={threads}"
        );
        for ((wp, wb), (gp, gb)) in want.iter().zip(&got) {
            assert_eq!(wp, gp, "path set differs at threads={threads}");
            assert_eq!(
                wb,
                gb,
                "bytes of {} differ at threads={threads}",
                wp.display()
            );
        }
    }
}

/// Release-only: the same clean-run invariance on the seeded San-Jose
/// style network of Table I (≈11k nodes) — run by CI via `-- --ignored`.
#[test]
#[ignore = "heavy: run in release via the CI bench-smoke job"]
fn thread_matrix_is_byte_identical_on_the_san_jose_preset() {
    let net = MapPreset::SanJose.generate(7);
    let sim = SimConfig {
        num_objects: 8,
        num_hotspots: 2,
        num_destinations: 2,
        sample_period_s: 4.0,
        ..SimConfig::default()
    };
    let data = generate_dataset(&net, &sim, 7, "sj");
    let reference = Neat::new(&net, neat_config(1))
        .run(&data, Mode::Opt)
        .expect("sequential run");
    let want = result_fingerprint(&reference);
    for threads in THREADS {
        let got = Neat::new(&net, neat_config(threads))
            .run(&data, Mode::Opt)
            .expect("parallel run");
        assert_eq!(
            result_fingerprint(&got),
            want,
            "opt-NEAT diverged on SJ at threads={threads}"
        );
    }
}
