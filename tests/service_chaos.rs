//! Kill-restart chaos harness for the `neat-svc` supervised service.
//!
//! The service is a deterministic tick-driven state machine, so every
//! interleaving of work and death is enumerable:
//!
//! * **panic matrix** — a fault hook panics at each state-machine
//!   [`Edge`]; the in-process supervisor must restart from checkpoint +
//!   journal and finish byte-identically;
//! * **process-kill matrix** — same edges with a zero restart budget,
//!   so the service dies; a *new* service over the surviving storage
//!   must finish byte-identically;
//! * **cancel matrix** — a hook cancels the token at each edge; the
//!   drain stops gracefully and a fresh run finishes the job;
//! * **disk-fault matrix** — a fatal [`DiskFault::Lost`] at every
//!   single mutating filesystem operation of the whole run; the
//!   restarted process must recover byte-identically with no batch
//!   applied twice.
//!
//! Plus the regression pinned by the rustdoc on
//! `IncrementalNeat::ingest_logged`: a crash inside the divergence
//! window (applied in memory, journal append failed) recovers with the
//! batch applied exactly once.

use neat_repro::durability::{Fs, MemFs};
use neat_repro::mobisim::faults::{DiskFault, FaultFs};
use neat_repro::neat::NeatConfig;
use neat_repro::rnet::netgen::chain_network;
use neat_repro::rnet::{Point, RoadLocation, RoadNetwork, SegmentId};
use neat_repro::runctl::CancelToken;
use neat_repro::svc::{
    spool, DrainOutcome, Edge, FaultHook, Service, ServiceStatus, SvcConfig, TickOutcome,
};
use neat_repro::traj::{Dataset, Trajectory, TrajectoryId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const N_BATCHES: u64 = 4;

fn net() -> RoadNetwork {
    chain_network(6, 100.0, 13.9)
}

fn cfg() -> SvcConfig {
    let mut c = SvcConfig::new("/spool", "/state", "/quarantine");
    c.neat = NeatConfig {
        min_card: 1,
        ..NeatConfig::default()
    };
    c.checkpoint_every_batches = 2;
    c
}

fn batch(seed: u64) -> Dataset {
    let mut d = Dataset::new("b");
    for t in 0..2u64 {
        let off = ((seed * 2 + t) % 40) as f64;
        d.push(
            Trajectory::new(
                TrajectoryId::new(seed * 10 + t),
                vec![
                    RoadLocation::new(SegmentId::new(0), Point::new(10.0 + off, 0.0), 0.0),
                    RoadLocation::new(SegmentId::new(1), Point::new(150.0, 0.0), 30.0),
                    RoadLocation::new(SegmentId::new(2), Point::new(250.0 + off, 0.0), 60.0),
                ],
            )
            .unwrap(),
        );
    }
    d
}

fn seed_spool(fs: &MemFs) {
    fs.create_dir_all(Path::new("/spool")).unwrap();
    for i in 0..N_BATCHES {
        spool::submit(
            fs,
            Path::new("/spool"),
            &format!("b-{i:03}.batch"),
            &batch(i),
        )
        .unwrap();
    }
}

/// Fingerprint of an uninterrupted run over the same batches.
fn reference_fingerprint(network: &RoadNetwork) -> String {
    let fs = MemFs::new();
    seed_spool(&fs);
    let mut svc = Service::open(network, cfg(), fs.clone()).unwrap();
    assert_eq!(svc.run_drain(256), DrainOutcome::Drained);
    assert_eq!(svc.status(), ServiceStatus::Running);
    assert!(spool::scan(&fs, Path::new("/quarantine"))
        .unwrap()
        .is_empty());
    svc.state_fingerprint()
}

/// Panics the first `times` visits of `edge`.
struct PanicAt {
    edge: Edge,
    left: AtomicU64,
}

impl PanicAt {
    fn once(edge: Edge) -> Arc<Self> {
        Arc::new(PanicAt {
            edge,
            left: AtomicU64::new(1),
        })
    }
}

impl FaultHook for PanicAt {
    fn at(&self, edge: Edge) {
        if edge == self.edge
            && self
                .left
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
        {
            panic!("injected panic at edge {}", edge.name());
        }
    }
}

/// Cancels the shared token the first time it sees `edge`.
struct CancelAt {
    edge: Edge,
    token: CancelToken,
}

impl FaultHook for CancelAt {
    fn at(&self, edge: Edge) {
        if edge == self.edge {
            self.token.cancel();
        }
    }
}

/// Opens the service, treating an injected panic during boot recovery
/// (the [`Edge::Recovered`] hook fires inside `open_with`) as
/// death-at-boot: the process is simply started again over the same
/// storage.
fn open_or_reboot<'n, F: neat_repro::durability::Fs + Clone>(
    network: &'n RoadNetwork,
    config: SvcConfig,
    fs: F,
    hook: Arc<dyn FaultHook>,
    cancel: CancelToken,
) -> Service<'n, F> {
    for _ in 0..4 {
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            Service::open_with(
                network,
                config.clone(),
                fs.clone(),
                Arc::clone(&hook),
                None,
                cancel.clone(),
            )
        }));
        match attempt {
            Ok(Ok(svc)) => return svc,
            Ok(Err(e)) => panic!("service open failed: {e}"),
            Err(_) => continue, // died at boot; start the process again
        }
    }
    panic!("service never survived boot");
}

#[test]
fn panic_at_every_edge_supervisor_recovers_identically() {
    let network = net();
    let reference = reference_fingerprint(&network);
    for edge in Edge::ALL {
        let fs = MemFs::new();
        seed_spool(&fs);
        let mut svc = open_or_reboot(
            &network,
            cfg(),
            fs.clone(),
            PanicAt::once(edge),
            CancelToken::new(),
        );
        assert_eq!(
            svc.run_drain(256),
            DrainOutcome::Drained,
            "edge {}",
            edge.name()
        );
        let h = svc.health();
        assert_eq!(
            svc.state_fingerprint(),
            reference,
            "state diverged after panic at {} (health: {})",
            edge.name(),
            h.digest()
        );
        assert!(h.restarts <= 1, "edge {}: {}", edge.name(), h.digest());
        assert_eq!(h.poisoned, 0, "edge {}: {}", edge.name(), h.digest());
        assert!(
            spool::scan(&fs, Path::new("/spool")).unwrap().is_empty(),
            "spool not drained after panic at {}",
            edge.name()
        );
        assert!(
            spool::scan(&fs, Path::new("/quarantine"))
                .unwrap()
                .is_empty(),
            "quarantine not empty after panic at {}",
            edge.name()
        );
    }
}

#[test]
fn process_kill_at_every_edge_restart_recovers_identically() {
    let network = net();
    let reference = reference_fingerprint(&network);
    for edge in Edge::ALL {
        let fs = MemFs::new();
        seed_spool(&fs);
        // Zero restart budget: the first injected panic is fatal to
        // this "process".
        let mut dying_cfg = cfg();
        dying_cfg.max_restarts = 0;
        let mut svc = open_or_reboot(
            &network,
            dying_cfg,
            fs.clone(),
            PanicAt::once(edge),
            CancelToken::new(),
        );
        let first_life = svc.run_drain(256);
        assert!(
            first_life == DrainOutcome::Failed || first_life == DrainOutcome::Drained,
            "edge {}: unexpected {first_life:?}",
            edge.name()
        );
        drop(svc);

        // Restart: a brand-new service over the surviving bytes.
        let mut svc2 = Service::open(&network, cfg(), fs.clone()).unwrap();
        assert_eq!(
            svc2.run_drain(256),
            DrainOutcome::Drained,
            "edge {}",
            edge.name()
        );
        assert_eq!(
            svc2.state_fingerprint(),
            reference,
            "state diverged after kill at {} (health: {})",
            edge.name(),
            svc2.health().digest()
        );
        assert_eq!(
            svc2.session().batches() as u64,
            N_BATCHES,
            "batch lost or double-applied after kill at {}",
            edge.name()
        );
        assert!(
            spool::scan(&fs, Path::new("/quarantine"))
                .unwrap()
                .is_empty(),
            "edge {}",
            edge.name()
        );
    }
}

#[test]
fn cancel_at_every_edge_then_fresh_run_finishes_identically() {
    let network = net();
    let reference = reference_fingerprint(&network);
    for edge in Edge::ALL {
        let fs = MemFs::new();
        seed_spool(&fs);
        let token = CancelToken::new();
        let hook = Arc::new(CancelAt {
            edge,
            token: token.clone(),
        });
        let mut svc = open_or_reboot(&network, cfg(), fs.clone(), hook, token);
        let outcome = svc.run_drain(256);
        assert_eq!(outcome, DrainOutcome::Cancelled, "edge {}", edge.name());
        assert_ne!(
            svc.status(),
            ServiceStatus::Failed,
            "cancel must not fail the service (edge {})",
            edge.name()
        );
        drop(svc);

        // The next run (fresh token) picks up whatever was left.
        let mut svc2 = Service::open(&network, cfg(), fs.clone()).unwrap();
        assert_eq!(
            svc2.run_drain(256),
            DrainOutcome::Drained,
            "edge {}",
            edge.name()
        );
        assert_eq!(
            svc2.state_fingerprint(),
            reference,
            "state diverged after cancel at {}",
            edge.name()
        );
        assert_eq!(
            svc2.session().batches() as u64,
            N_BATCHES,
            "edge {}",
            edge.name()
        );
    }
}

/// Counts the mutating filesystem operations of an uninterrupted run.
fn probe_mutating_ops(network: &RoadNetwork) -> u64 {
    let mem = MemFs::new();
    seed_spool(&mem);
    let fs = FaultFs::unarmed(mem);
    let mut svc = Service::open(network, cfg(), fs.clone()).unwrap();
    assert_eq!(svc.run_drain(256), DrainOutcome::Drained);
    fs.mutating_ops()
}

#[test]
fn disk_fault_at_every_mutating_op_recovers_identically() {
    let network = net();
    let reference = reference_fingerprint(&network);
    let total_ops = probe_mutating_ops(&network);
    assert!(
        total_ops > 4,
        "probe looks broken: {total_ops} mutating ops"
    );

    for k in 0..total_ops {
        let mem = MemFs::new();
        seed_spool(&mem);
        let fs = FaultFs::armed(mem.clone(), k, DiskFault::Lost);

        // First life: run until the fault kills the process. Both
        // failure shapes are legal — death during open (the fault hit a
        // boot-time write) or a drain ending in `Failed` once the
        // restart budget meets a dead disk.
        if let Ok(mut svc) = Service::open(&network, cfg(), fs.clone()) {
            let _ = svc.run_drain(512);
        }
        assert!(fs.fault_fired(), "op {k}: fault never fired");

        // Restart over the surviving bytes.
        let mut svc2 = Service::open(&network, cfg(), mem.clone()).unwrap();
        assert_eq!(
            svc2.run_drain(256),
            DrainOutcome::Drained,
            "op {k}: restarted service did not drain"
        );
        assert_eq!(
            svc2.state_fingerprint(),
            reference,
            "op {k}: state diverged after disk fault (health: {})",
            svc2.health().digest()
        );
        assert_eq!(
            svc2.session().batches() as u64,
            N_BATCHES,
            "op {k}: batch lost or double-applied"
        );
        assert!(
            spool::scan(&mem, Path::new("/quarantine"))
                .unwrap()
                .is_empty(),
            "op {k}: disk fault must not poison batches"
        );
    }
}

/// The regression pinned by the `ingest_logged` rustdoc: the crash
/// window between a successful in-memory apply and its journal append.
///
/// The first mutating filesystem operation of a drain over clean
/// batches is the journal append of batch one (spool scans and loads
/// are reads), so arming a fatal fault there kills the "process" with
/// the batch applied in memory but absent from the journal. The
/// restarted service must re-ingest it from the spool — exactly once —
/// and converge on the uninterrupted run's state.
#[test]
fn journal_append_crash_window_recovers_exactly_once() {
    let network = net();
    let reference = reference_fingerprint(&network);

    // Locate the first journal append: run a probe until exactly one
    // batch is applied; the last two mutating ops are its journal
    // append and its spool-file removal.
    let probe_mem = MemFs::new();
    seed_spool(&probe_mem);
    let probe = FaultFs::unarmed(probe_mem);
    let mut svc = Service::open(&network, cfg(), probe.clone()).unwrap();
    while svc.health().applied < 1 {
        svc.tick();
    }
    let append_idx = probe.mutating_ops() - 2;
    drop(svc);

    let mem = MemFs::new();
    seed_spool(&mem);
    let fs = FaultFs::armed(mem.clone(), append_idx, DiskFault::Lost);
    let mut dying_cfg = cfg();
    dying_cfg.max_restarts = 0;
    let mut svc = Service::open(&network, dying_cfg, fs.clone()).unwrap();
    let outcome = svc.run_drain(256);
    assert_eq!(
        outcome,
        DrainOutcome::Failed,
        "the lost append must be fatal"
    );
    let h = svc.health();
    assert_eq!(
        h.journal_repairs,
        1,
        "the failed append must be answered with a repair attempt: {}",
        h.digest()
    );
    // The divergence window is open: memory has the batch...
    assert_eq!(svc.session().batches(), 1);
    drop(svc);
    // ...but the surviving journal does not, and the spool still holds
    // the batch file.
    assert!(
        spool::scan(&mem, Path::new("/spool"))
            .unwrap()
            .contains(&"b-000.batch".to_string()),
        "unacknowledged batch must survive in the spool"
    );

    let mut svc2 = Service::open(&network, cfg(), mem.clone()).unwrap();
    assert_eq!(
        svc2.query().batches,
        0,
        "recovered state must not contain the unjournaled batch"
    );
    assert_eq!(svc2.run_drain(256), DrainOutcome::Drained);
    assert_eq!(svc2.state_fingerprint(), reference);
    assert_eq!(
        svc2.session().batches() as u64,
        N_BATCHES,
        "exactly-once violated"
    );
    assert_eq!(svc2.health().duplicates_skipped, 0);
}

/// Kill between the journal append and the spool acknowledgement: the
/// restarted service must recognise the leftover spool file by its
/// journaled ID and skip it instead of applying it twice.
#[test]
fn crash_between_journal_append_and_ack_skips_duplicate() {
    let network = net();
    let reference = reference_fingerprint(&network);

    let probe_mem = MemFs::new();
    seed_spool(&probe_mem);
    let probe = FaultFs::unarmed(probe_mem);
    let mut svc = Service::open(&network, cfg(), probe.clone()).unwrap();
    while svc.health().applied < 1 {
        svc.tick();
    }
    let remove_idx = probe.mutating_ops() - 1;
    drop(svc);

    let mem = MemFs::new();
    seed_spool(&mem);
    let fs = FaultFs::armed(mem.clone(), remove_idx, DiskFault::Lost);
    let mut dying_cfg = cfg();
    dying_cfg.max_restarts = 0;
    let mut svc = Service::open(&network, dying_cfg, fs.clone()).unwrap();
    let _ = svc.run_drain(256);
    assert!(fs.crashed());
    drop(svc);

    let mut svc2 = Service::open(&network, cfg(), mem.clone()).unwrap();
    assert_eq!(svc2.run_drain(256), DrainOutcome::Drained);
    assert_eq!(
        svc2.health().duplicates_skipped,
        1,
        "the journaled-but-unacknowledged batch must be skipped: {}",
        svc2.health().digest()
    );
    assert_eq!(svc2.state_fingerprint(), reference);
    assert_eq!(
        svc2.session().batches() as u64,
        N_BATCHES,
        "exactly-once violated"
    );
}

/// Shed and poison batches both end up in quarantine — even when the
/// service is also being killed and restarted around them.
#[test]
fn shed_and_poison_batches_survive_kill_into_quarantine() {
    let network = net();
    let fs = MemFs::new();
    fs.create_dir_all(Path::new("/spool")).unwrap();
    // One malformed (poison) batch among good ones.
    for i in 0..3u64 {
        spool::submit(
            &fs,
            Path::new("/spool"),
            &format!("b-{i:03}.batch"),
            &batch(i),
        )
        .unwrap();
    }
    fs.write(
        Path::new("/spool/b-900.garbage"),
        b"definitely,not\na batch",
    )
    .unwrap();

    // Kill the worker once mid-stream, then let it finish.
    let mut svc = open_or_reboot(
        &network,
        cfg(),
        fs.clone(),
        PanicAt::once(Edge::Applied),
        CancelToken::new(),
    );
    assert_eq!(svc.run_drain(256), DrainOutcome::Drained);
    let h = svc.health();
    assert_eq!(h.poisoned, 1, "{}", h.digest());
    assert_eq!(h.applied, 3, "{}", h.digest());
    assert_eq!(svc.status(), ServiceStatus::Degraded);
    assert_eq!(
        spool::scan(&fs, Path::new("/quarantine")).unwrap(),
        vec!["b-900.garbage".to_string()]
    );
    let log = String::from_utf8(
        fs.read(&Path::new("/quarantine").join(spool::QUARANTINE_LOG))
            .unwrap(),
    )
    .unwrap();
    assert!(log.contains("b-900.garbage\tpoison"), "{log}");
}

/// The published query snapshot swaps atomically with monotonically
/// increasing epochs, across recoveries too.
#[test]
fn query_epochs_stay_monotonic_across_recovery() {
    let network = net();
    let fs = MemFs::new();
    seed_spool(&fs);
    let mut svc = open_or_reboot(
        &network,
        cfg(),
        fs.clone(),
        PanicAt::once(Edge::Published),
        CancelToken::new(),
    );
    let mut last = svc.query().epoch;
    loop {
        let t = svc.tick();
        let now = svc.query().epoch;
        assert!(now >= last, "epoch went backwards: {now} < {last}");
        last = now;
        if t == TickOutcome::Idle {
            break;
        }
    }
    assert_eq!(svc.query().batches as u64, N_BATCHES);
}
