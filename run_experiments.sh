#!/bin/bash
# Regenerates every table and figure of the paper at full scale.
set -e
cd "$(dirname "$0")"
BIN="cargo run --release -q -p neat-bench --bin"
echo "=== table1 ===";          $BIN table1
echo "=== table2 ===";          $BIN table2
echo "=== table3 ===";          $BIN table3
echo "=== fig3 ===";            $BIN fig3
echo "=== fig4 ===";            $BIN fig4
echo "=== traclus_sweep ===";   $BIN traclus_sweep
echo "=== fig5 ===";            $BIN fig5
echo "=== fig6 ===";            $BIN fig6
echo "=== fig7 ===";            $BIN fig7
echo "=== weights_ablation ==="; $BIN weights_ablation
echo "=== optics_baseline ===";  $BIN optics_baseline -- --scale 0.3
echo "=== accuracy ===";         $BIN accuracy
echo "=== mapmatch_eval ===";    $BIN mapmatch_eval
echo "=== gap_repair ===";       $BIN gap_repair
echo "=== hybrid_variant ===";  $BIN hybrid_variant -- --scale 0.5
echo "ALL EXPERIMENTS DONE"
